// comparesets — command-line front-end to the full pipeline.
//
//   comparesets stats   [--category C | --reviews F --metadata F]
//   comparesets select  [data flags] [--target ID] [--algorithm A] [--m N]
//   comparesets narrow  [data flags] [--target ID] [--k N] [--m N]
//   comparesets serve   [data flags] [--queries F] [--threads N]
//                       [--intra_threads N] [--shards N] [--window N]
//                       [--metrics] [--prometheus] [--deadline_ms D]
//                       [--max_in_flight N] [--retries R] [--trace_out F]
//                       [--transport local|rpc] [--shard_server PATH]
//                       [--connect A1,A2,..] [--ready_timeout S]
//                       [--min_tier exact|anytime|sampled] [--degrade]
//                       [--sample_threshold N] [--sample_size N]
//                       [--metrics_port P] [--ingest_log F]
//                       [--ingest_batch N] [--ingest_interval_ms MS]
//                       [--batch_priority interactive|batch]
//                       [--max_batch_queue N] [--slo_ms MS]
//
// Data source: either a synthetic category (--category Cellphone|Toy|
// Clothing, --products N, --seed S) or Amazon-layout JSONL files
// (--reviews, --metadata). `select` prints the comparative review sets;
// `narrow` additionally reduces the comparative list to the core k items
// via the exact TargetHkS solver. `serve` answers a batch of query lines
// through a ShardRouter over N range-partitioned shard engines
// (--shards 1, the default, is byte-for-byte the single warm engine).
//
// --transport rpc moves each shard into its own shard_server process:
// the CLI spawns one child per shard on private Unix sockets (or, with
// --connect, dials an already-running fleet), waits for every shard's
// readiness probe, routes the same queries through an RpcShardRouter,
// and asks each spawned child to shut down when done. Responses are
// byte-identical to --transport local — the transport-oracle CI job
// holds the two paths to the same output.
//
// --ingest_log tails a review WAL (service/ingest) on the local
// transport: committed records are drained into per-shard delta
// snapshots before the batch is answered (and, with
// --ingest_interval_ms > 0, polled in the background while it runs),
// so queries see reviews appended after the process started.

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/selector.h"
#include "data/export.h"
#include "net/socket.h"
#include "service/metrics_http.h"
#include "data/loader.h"
#include "data/statistics.h"
#include "data/synthetic.h"
#include "eval/alignment.h"
#include "graph/targethks_exact.h"
#include "net/client.h"
#include "opinion/vectors.h"
#include "service/engine.h"
#include "service/ingest/driver.h"
#include "service/partitioner.h"
#include "service/router.h"
#include "service/rpc_router.h"
#include "service/slo_controller.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace comparesets;

namespace {

void AddDataFlags(FlagParser* flags) {
  flags->AddString("category", "Cellphone",
                   "synthetic category (Cellphone|Toy|Clothing)");
  flags->AddInt("products", 240, "synthetic corpus size");
  flags->AddInt("seed", 42, "synthetic generator seed");
  flags->AddString("reviews", "", "Amazon-layout reviews JSONL path");
  flags->AddString("metadata", "", "Amazon-layout metadata JSONL path");
}

Result<Corpus> LoadData(const FlagParser& flags) {
  const std::string& reviews = flags.GetString("reviews");
  const std::string& metadata = flags.GetString("metadata");
  if (!reviews.empty() || !metadata.empty()) {
    if (reviews.empty() || metadata.empty()) {
      return Status::InvalidArgument(
          "--reviews and --metadata must be given together");
    }
    return LoadAmazonCorpusFromFiles("UserData", reviews, metadata);
  }
  COMPARESETS_ASSIGN_OR_RETURN(
      SyntheticConfig config,
      DefaultConfig(flags.GetString("category"),
                    static_cast<size_t>(flags.GetInt("products"))));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  return GenerateCorpus(config);
}

Result<ProblemInstance> PickInstance(const Corpus& corpus,
                                     const std::string& target_id) {
  std::vector<ProblemInstance> instances = corpus.BuildInstances();
  if (instances.empty()) {
    return Status::NotFound("corpus yields no problem instances");
  }
  if (target_id.empty()) return instances.front();
  for (ProblemInstance& instance : instances) {
    if (instance.target().id == target_id) return std::move(instance);
  }
  return Status::NotFound("no instance with target id '" + target_id + "'");
}

void PrintSelections(const ProblemInstance& instance,
                     const std::vector<Selection>& selections,
                     const std::vector<size_t>& items) {
  for (size_t v : items) {
    const Product& product = *instance.items[v];
    std::printf("\n%s %s — %s\n", v == 0 ? "[target]" : "[compare]",
                product.id.c_str(),
                product.title.empty() ? "(untitled)" : product.title.c_str());
    for (size_t review_index : selections[v]) {
      const Review& review = product.reviews[review_index];
      std::printf("  (%.0f*) %s\n", review.rating, review.text.c_str());
    }
  }
}

int RunStats(const FlagParser& flags) {
  auto corpus = LoadData(flags);
  corpus.status().CheckOK();
  std::printf("%s", ComputeStatistics(corpus.value()).ToString().c_str());
  return 0;
}

int RunExport(const FlagParser& flags) {
  auto corpus = LoadData(flags);
  corpus.status().CheckOK();
  const std::string& prefix = flags.GetString("prefix");
  ExportCorpusFiles(corpus.value(), prefix).CheckOK();
  std::printf("Wrote %s.reviews.jsonl, %s.metadata.jsonl, "
              "%s.annotations.jsonl (%zu products, %zu reviews)\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str(),
              corpus.value().num_products(), corpus.value().num_reviews());
  return 0;
}

int RunSelect(const FlagParser& flags, bool narrow) {
  auto corpus = LoadData(flags);
  corpus.status().CheckOK();
  auto instance = PickInstance(corpus.value(), flags.GetString("target"));
  instance.status().CheckOK();

  OpinionModel model = OpinionModel::Binary(corpus.value().num_aspects());
  InstanceVectors vectors = BuildInstanceVectors(model, instance.value());

  SelectorOptions options;
  options.m = static_cast<size_t>(flags.GetInt("m"));
  options.lambda = flags.GetDouble("lambda");
  options.mu = flags.GetDouble("mu");
  auto selector = MakeSelector(flags.GetString("algorithm"));
  selector.status().CheckOK();
  auto result = selector.value()->Select(vectors, options);
  result.status().CheckOK();

  std::printf("Target %s with %zu comparative products; %s selected up to "
              "%zu reviews per product (Eq. 5 objective %.4f).\n",
              instance.value().target().id.c_str(),
              instance.value().num_items() - 1,
              flags.GetString("algorithm").c_str(), options.m,
              result.value().objective);

  std::vector<size_t> items;
  if (narrow) {
    size_t k = std::min<size_t>(static_cast<size_t>(flags.GetInt("k")),
                                instance.value().num_items());
    SimilarityGraph graph =
        BuildSimilarityGraph(vectors, result.value().selections,
                             options.lambda, options.mu);
    ExactSolverOptions exact_options;
    exact_options.time_limit_seconds = flags.GetDouble("time_limit");
    auto core = SolveTargetHksExact(graph, k, exact_options);
    core.status().CheckOK();
    std::printf("Core list: %zu of %zu items, weight %.4f%s.\n", k,
                instance.value().num_items(), core.value().weight,
                core.value().proven_optimal ? " (proven optimal)" : "");
    items = core.value().vertices;
  } else {
    for (size_t v = 0; v < instance.value().num_items(); ++v) {
      items.push_back(v);
    }
  }
  PrintSelections(instance.value(), result.value().selections, items);

  AlignmentScores scores = MeasureAlignmentSubset(
      instance.value(), result.value().selections, items);
  std::printf("\nAlignment: target-vs-comparative R-L %.2f, among-items "
              "R-L %.2f (x100)\n",
              100.0 * scores.target_vs_comparative.rougeL.f1,
              100.0 * scores.among_items.rougeL.f1);
  return 0;
}

// The serve-wide degradation floor: --min_tier, loosened to at least
// kAnytime by the --degrade shorthand.
Result<QualityTier> ResolveTierFloor(const FlagParser& flags) {
  COMPARESETS_ASSIGN_OR_RETURN(QualityTier floor,
                               ParseQualityTier(flags.GetString("min_tier")));
  if (flags.GetBool("degrade")) {
    floor = LooserTier(floor, QualityTier::kAnytime);
  }
  return floor;
}

// One serve query per line: `target_id [algorithm] [m] [comp1,comp2,..]`.
// Blank lines and lines starting with '#' are skipped; fields after the
// target id default to the CLI-level --algorithm / --m flags and the
// corpus's also-bought instance.
Result<std::vector<SelectRequest>> ParseQueries(std::istream& in,
                                                const FlagParser& flags) {
  SelectorOptions defaults;
  defaults.m = static_cast<size_t>(flags.GetInt("m"));
  defaults.lambda = flags.GetDouble("lambda");
  defaults.mu = flags.GetDouble("mu");
  COMPARESETS_ASSIGN_OR_RETURN(defaults.min_tier, ResolveTierFloor(flags));
  defaults.sample_threshold =
      static_cast<size_t>(flags.GetInt("sample_threshold"));
  defaults.sample_size = static_cast<size_t>(flags.GetInt("sample_size"));

  std::vector<SelectRequest> requests;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = SplitWhitespace(trimmed);

    SelectRequest request;
    request.target_id = fields[0];
    request.selector = flags.GetString("algorithm");
    request.options = defaults;
    if (fields.size() > 1) request.selector = fields[1];
    if (fields.size() > 2) {
      int m = std::atoi(fields[2].c_str());
      if (m <= 0) {
        return Status::ParseError("query line " + std::to_string(line_number) +
                                  ": bad m '" + fields[2] + "'");
      }
      request.options.m = static_cast<size_t>(m);
    }
    if (fields.size() > 3) request.comparative_ids = Split(fields[3], ',');
    if (fields.size() > 4) {
      return Status::ParseError("query line " + std::to_string(line_number) +
                                ": too many fields");
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

// Reads serve queries (stdin or --queries) and stamps the CLI-level
// deadline onto each. Returns a shell exit code; 0 = ok.
int ReadServeRequests(const FlagParser& flags,
                      std::vector<SelectRequest>* requests) {
  const std::string& queries_path = flags.GetString("queries");
  if (queries_path.empty()) {
    auto parsed = ParseQueries(std::cin, flags);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    *requests = std::move(parsed).value();
  } else {
    std::ifstream file(queries_path);
    if (!file) {
      std::fprintf(stderr, "cannot open queries file '%s'\n",
                   queries_path.c_str());
      return 2;
    }
    auto parsed = ParseQueries(file, flags);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    *requests = std::move(parsed).value();
  }
  double deadline_seconds = flags.GetDouble("deadline_ms") / 1000.0;
  for (SelectRequest& request : *requests) {
    request.deadline_seconds = deadline_seconds;
  }
  return 0;
}

// Prints one line per response (the serve output contract — identical
// across transports) and the closing summary; returns the failure count.
size_t PrintServeResponses(const std::vector<SelectRequest>& requests,
                           const std::vector<Result<SelectResponse>>& responses,
                           size_t num_shards) {
  size_t failed = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].ok()) {
      ++failed;
      std::printf("[%zu] target=%s ERROR %s\n", i,
                  requests[i].target_id.c_str(),
                  responses[i].status().ToString().c_str());
      continue;
    }
    const SelectResponse& response = responses[i].value();
    size_t selected = 0;
    for (const Selection& s : response.selections) selected += s.size();
    std::printf(
        "[%zu] target=%s algorithm=%s m=%zu items=%zu reviews=%zu "
        "objective=%.4f tier=%s gap=%.4f align_RL=%.2f cache=%s "
        "solve_ms=%.2f\n",
        i, response.target_id.c_str(), requests[i].selector.c_str(),
        requests[i].options.m, response.item_ids.size(), selected,
        response.objective, QualityTierName(response.tier),
        response.objective_gap,
        100.0 * response.alignment.among_items.rougeL.f1,
        response.result_cache_hit ? "memo" : response.cache_hit ? "hit" : "miss",
        1000.0 * response.solve_seconds);
  }
  if (num_shards == 1) {
    std::printf("Answered %zu queries (%zu failed) from one engine.\n",
                responses.size(), failed);
  } else {
    std::printf("Answered %zu queries (%zu failed) across %zu shards.\n",
                responses.size(), failed, num_shards);
  }
  return failed;
}

// Copies the serve-relevant engine flags into EngineOptions (shared by
// the local router and the spawned shard_server command lines).
void FillEngineOptions(const FlagParser& flags, EngineOptions* engine_options) {
  engine_options->threads = static_cast<size_t>(flags.GetInt("threads"));
  engine_options->max_intra_request_threads =
      static_cast<size_t>(flags.GetInt("intra_threads"));
  engine_options->cache_capacity =
      static_cast<size_t>(flags.GetInt("cache_capacity"));
  engine_options->max_in_flight =
      static_cast<size_t>(flags.GetInt("max_in_flight"));
  engine_options->max_queue = static_cast<size_t>(flags.GetInt("max_queue"));
  engine_options->max_batch_queue =
      static_cast<size_t>(flags.GetInt("max_batch_queue"));
  engine_options->max_attempts = flags.GetInt("retries") + 1;
  engine_options->batch_kernel_window =
      static_cast<size_t>(flags.GetInt("window"));
  if (!ParseRequestPriority(flags.GetString("batch_priority"),
                            &engine_options->batch_priority)) {
    Status::InvalidArgument("--batch_priority must be interactive or batch")
        .CheckOK();
  }
  auto floor = ResolveTierFloor(flags);
  floor.status().CheckOK();
  engine_options->min_quality_tier = floor.value();
}

// One HTTP/1.0 scrape of our own metrics endpoint, over a real TCP
// client socket — proves the exporter end to end (bind, accept thread,
// request parse, response framing) before serve exits.
Result<std::string> ScrapeMetricsOnce(const std::string& address) {
  COMPARESETS_ASSIGN_OR_RETURN(Socket socket, Socket::Connect(address, 5.0));
  std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  COMPARESETS_RETURN_NOT_OK(
      socket.SendAll(request.data(), request.size(), 5.0));
  // Read to EOF (the server closes after one response).
  std::string body;
  char c = 0;
  while (socket.RecvAll(&c, 1, 5.0).ok()) body.push_back(c);
  return body;
}

// Forks one shard_server child. The child's stdout is rerouted to
// stderr so the CLI's stdout stays exactly the query-response stream.
pid_t SpawnShardServer(const std::string& binary, const FlagParser& flags,
                       int shards, int shard_index,
                       const std::string& address) {
  std::vector<std::string> args = {
      binary,
      "--listen=" + address,
      "--shards=" + std::to_string(shards),
      "--shard_index=" + std::to_string(shard_index),
      "--category=" + flags.GetString("category"),
      "--products=" + std::to_string(flags.GetInt("products")),
      "--seed=" + std::to_string(flags.GetInt("seed")),
      "--reviews=" + flags.GetString("reviews"),
      "--metadata=" + flags.GetString("metadata"),
      "--threads=" + std::to_string(flags.GetInt("threads")),
      "--intra_threads=" + std::to_string(flags.GetInt("intra_threads")),
      "--cache_capacity=" + std::to_string(flags.GetInt("cache_capacity")),
      "--window=" + std::to_string(flags.GetInt("window")),
      "--max_in_flight=" + std::to_string(flags.GetInt("max_in_flight")),
      "--max_queue=" + std::to_string(flags.GetInt("max_queue")),
      "--max_batch_queue=" + std::to_string(flags.GetInt("max_batch_queue")),
      "--batch_priority=" + flags.GetString("batch_priority"),
      "--slo_ms=" + std::to_string(flags.GetDouble("slo_ms")),
      "--retries=" + std::to_string(flags.GetInt("retries")),
  };
  {
    auto floor = ResolveTierFloor(flags);
    floor.status().CheckOK();
    args.push_back(std::string("--min_tier=") +
                   QualityTierName(floor.value()));
  }
  pid_t pid = fork();
  if (pid != 0) return pid;
  dup2(STDERR_FILENO, STDOUT_FILENO);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  execv(binary.c_str(), argv.data());
  std::fprintf(stderr, "cannot exec shard server '%s'\n", binary.c_str());
  _exit(127);
}

// Reaps spawned shard servers: polite shutdown frame first, SIGTERM for
// any child that does not comply, then waitpid on everyone.
void TearDownFleet(const std::vector<pid_t>& pids,
                   const std::vector<std::string>& addresses) {
  for (size_t i = 0; i < pids.size(); ++i) {
    Status stopped = RequestServerShutdown(addresses[i], 5.0);
    if (!stopped.ok()) {
      std::fprintf(stderr, "shard %zu shutdown handshake failed (%s); "
                   "sending SIGTERM\n",
                   i, stopped.ToString().c_str());
      kill(pids[i], SIGTERM);
    }
  }
  for (pid_t pid : pids) {
    int wait_status = 0;
    waitpid(pid, &wait_status, 0);
  }
}

int RunServeRpc(const FlagParser& flags, const std::string& program_dir) {
  // Refused up front, before any child is spawned or query answered:
  // the delta builder lives in the serving process, so accepting the
  // flag here would silently serve the stale base corpus — the exact
  // failure mode the WAL exists to prevent.
  if (!flags.GetString("ingest_log").empty()) {
    Status refused = Status::InvalidArgument(
        "--ingest_log is not available over --transport rpc (the delta "
        "builder lives in the serving process); run --transport local, "
        "or replay the WAL into the corpus files the shard servers load");
    std::fprintf(stderr, "%s\n", refused.ToString().c_str());
    return 2;
  }
  int shards_flag = flags.GetInt("shards");
  if (shards_flag < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  size_t num_shards = static_cast<size_t>(shards_flag);

  // The router side derives the partition bounds from the same data the
  // servers load — CorpusPartitioner is deterministic, so both sides of
  // the wire agree on the ranges without shipping the corpus.
  auto corpus = LoadData(flags);
  corpus.status().CheckOK();
  auto indexed = IndexedCorpus::Build(std::move(corpus).value());
  indexed.status().CheckOK();
  auto bounds = CorpusPartitioner::ComputeBounds(*indexed.value(), num_shards);
  bounds.status().CheckOK();

  std::vector<std::string> addresses;
  std::vector<pid_t> pids;
  const std::string& connect = flags.GetString("connect");
  if (!connect.empty()) {
    addresses = Split(connect, ',');
    if (addresses.size() != num_shards) {
      std::fprintf(stderr, "--connect lists %zu addresses for %zu shards\n",
                   addresses.size(), num_shards);
      return 2;
    }
  } else {
    std::string binary = flags.GetString("shard_server");
    if (binary.empty()) binary = program_dir + "shard_server";
    for (size_t s = 0; s < num_shards; ++s) {
      addresses.push_back("unix:/tmp/csrp-" + std::to_string(getpid()) + "-" +
                          std::to_string(s) + ".sock");
      pids.push_back(SpawnShardServer(binary, flags, shards_flag,
                                      static_cast<int>(s), addresses[s]));
    }
  }

  double ready_timeout = flags.GetDouble("ready_timeout");
  for (size_t s = 0; s < num_shards; ++s) {
    Status ready = WaitForServerReady(addresses[s], ready_timeout);
    if (!ready.ok()) {
      std::fprintf(stderr, "shard %zu at %s never became ready: %s\n", s,
                   addresses[s].c_str(), ready.ToString().c_str());
      if (!pids.empty()) TearDownFleet(pids, addresses);
      return 2;
    }
  }

  std::vector<std::unique_ptr<ShardBackend>> backends;
  backends.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    RpcBackendOptions backend_options;
    backend_options.replicas = {addresses[s]};
    backend_options.shard_id = s;
    auto backend = RpcShardBackend::Create(std::move(backend_options));
    backend.status().CheckOK();
    backends.push_back(std::move(backend).value());
  }
  RpcRouterOptions rpc_options;
  rpc_options.router_threads = static_cast<size_t>(flags.GetInt("threads"));
  auto router = RpcShardRouter::Create(bounds.value(), std::move(backends),
                                       rpc_options);
  router.status().CheckOK();

  if (num_shards > 1) {
    // Same per-shard header lines the local transport prints, fed from
    // the remote readiness probes.
    std::vector<Result<ShardHealth>> health = router.value()->ProbeAll();
    for (size_t s = 0; s < health.size(); ++s) {
      health[s].status().CheckOK();
      std::printf("shard %zu %s: %zu instances, %zu products\n", s,
                  health[s].value().range.ToString().c_str(),
                  static_cast<size_t>(health[s].value().num_instances),
                  static_cast<size_t>(health[s].value().num_products));
    }
  }

  std::vector<SelectRequest> requests;
  int read_rc = ReadServeRequests(flags, &requests);
  if (read_rc != 0) {
    if (!pids.empty()) TearDownFleet(pids, addresses);
    return read_rc;
  }
  if (requests.empty()) {
    std::printf("No queries.\n");
    if (!pids.empty()) TearDownFleet(pids, addresses);
    return 0;
  }

  std::vector<Result<SelectResponse>> responses =
      router.value()->SelectBatch(requests);
  size_t failed = PrintServeResponses(requests, responses, num_shards);

  if (flags.GetBool("metrics") || flags.GetBool("prometheus") ||
      flags.GetInt("metrics_port") >= 0 ||
      !flags.GetString("trace_out").empty()) {
    std::fprintf(stderr,
                 "--metrics/--prometheus/--metrics_port/--trace_out are not "
                 "available over --transport rpc (remote registries)\n");
  }
  if (!pids.empty()) TearDownFleet(pids, addresses);
  return failed == 0 ? 0 : 1;
}

int RunServe(const FlagParser& flags, const std::string& program_dir) {
  RequestPriority batch_priority = RequestPriority::kBatch;
  if (!ParseRequestPriority(flags.GetString("batch_priority"),
                            &batch_priority)) {
    std::fprintf(stderr, "--batch_priority must be interactive or batch\n");
    return 2;
  }
  const std::string& transport = flags.GetString("transport");
  if (transport == "rpc") return RunServeRpc(flags, program_dir);
  if (transport != "local") {
    std::fprintf(stderr, "--transport must be local or rpc\n");
    return 2;
  }

  auto corpus = LoadData(flags);
  corpus.status().CheckOK();
  // The ingestion driver's delta builder needs its own copy of the base
  // corpus (the identical one the router's snapshots are built from) —
  // take it before the move into the index build.
  const std::string& ingest_log = flags.GetString("ingest_log");
  Corpus ingest_base;
  if (!ingest_log.empty()) ingest_base = corpus.value();
  auto indexed = IndexedCorpus::Build(std::move(corpus).value());
  indexed.status().CheckOK();

  RouterOptions router_options;
  FillEngineOptions(flags, &router_options.engine);
  router_options.router_threads = router_options.engine.threads;

  int shards_flag = flags.GetInt("shards");
  if (shards_flag < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  auto router = ShardRouter::Create(indexed.value(),
                                    static_cast<size_t>(shards_flag),
                                    router_options);
  router.status().CheckOK();
  if (router.value()->num_shards() > 1) {
    for (const ShardStatus& status : router.value()->ShardStatuses()) {
      std::printf("shard %zu %s: %zu instances, %zu products\n",
                  status.shard_id, status.range.ToString().c_str(),
                  status.num_instances, status.num_products);
    }
  }

  // The Prometheus endpoint comes up before any query is answered, so
  // an external scraper can watch a long batch live; the endpoint is
  // self-scraped once after the batch as an end-to-end check.
  MetricsHttpServer metrics_http;
  int metrics_port = flags.GetInt("metrics_port");
  if (metrics_port >= 0) {
    ShardRouter* router_ptr = router.value().get();
    Status started = metrics_http.Start(
        metrics_port, [router_ptr] { return router_ptr->RenderPrometheus(); });
    started.CheckOK();
    std::printf("METRICS LISTENING %s\n", metrics_http.bound_address().c_str());
  }

  // The SLO control loop polls every shard engine's trace ring and
  // flips the degrade-floor / batch-budget levers when the rolling p99
  // crosses --slo_ms. It only observes and writes atomics, so it rides
  // alongside the batch without perturbing determinism.
  std::unique_ptr<SloController> slo;
  double slo_ms = flags.GetDouble("slo_ms");
  if (slo_ms > 0.0) {
    SloControllerOptions slo_options;
    slo_options.slo_seconds = slo_ms / 1000.0;
    std::vector<SelectionEngine*> engines;
    for (size_t s = 0; s < router.value()->num_shards(); ++s) {
      engines.push_back(router.value()->mutable_shard_engine(s));
    }
    slo = std::make_unique<SloController>(
        slo_options, router.value()->pipeline(), std::move(engines));
  }

  std::unique_ptr<IngestDriver> ingest;
  if (!ingest_log.empty()) {
    IngestDriverOptions ingest_options;
    ingest_options.wal_path = ingest_log;
    ingest_options.batch_size =
        static_cast<size_t>(flags.GetInt("ingest_batch"));
    ingest_options.interval_ms =
        static_cast<uint64_t>(flags.GetInt("ingest_interval_ms"));
    auto driver = IngestDriver::Create(std::move(ingest_base),
                                       router.value().get(), ingest_options);
    driver.status().CheckOK();
    ingest = std::move(driver).value();
  }

  std::vector<SelectRequest> requests;
  int read_rc = ReadServeRequests(flags, &requests);
  if (read_rc != 0) return read_rc;
  if (requests.empty()) {
    std::printf("No queries.\n");
    return 0;
  }

  if (ingest != nullptr) {
    // Synchronous pre-query drain: everything committed to the WAL
    // before this point is served to the batch. The background poller
    // (if enabled) only starts afterwards so the two never overlap.
    auto drained = ingest->DrainOnce();
    drained.status().CheckOK();
    std::printf("INGEST drained %zu records in %zu batches from %s\n",
                drained.value().records_applied, drained.value().batches,
                ingest_log.c_str());
    if (flags.GetInt("ingest_interval_ms") > 0) ingest->Start();
  }

  if (slo != nullptr) slo->Start();
  std::vector<Result<SelectResponse>> responses =
      router.value()->SelectBatch(requests);
  if (slo != nullptr) slo->Stop();
  size_t failed = PrintServeResponses(requests, responses,
                                      router.value()->num_shards());
  if (slo != nullptr) {
    SloSample final_sample = slo->TickOnce();
    std::printf(
        "SLO p99=%.2fms target=%.2fms sheds=%llu restores=%llu "
        "shedding=%s\n",
        1000.0 * final_sample.p99_seconds, slo_ms,
        static_cast<unsigned long long>(slo->sheds()),
        static_cast<unsigned long long>(slo->restores()),
        slo->shedding() ? "yes" : "no");
  }
  if (ingest != nullptr) {
    ingest->Stop();
    IngestDrainStats totals = ingest->TotalStats();
    std::printf(
        "INGEST total applied=%zu dropped=%zu batches=%zu "
        "shards_touched=%zu bytes=%llu\n",
        totals.records_applied, totals.records_dropped, totals.batches,
        totals.shards_touched,
        static_cast<unsigned long long>(totals.bytes_consumed));
  }
  if (metrics_port >= 0) {
    auto scraped = ScrapeMetricsOnce(metrics_http.bound_address());
    scraped.status().CheckOK();
    std::printf("\n%s", scraped.value().c_str());
    metrics_http.Stop();
  }
  if (flags.GetBool("metrics")) {
    std::printf("\n%s", router.value()->DumpMetrics().c_str());
  }
  if (flags.GetBool("prometheus")) {
    std::printf("\n%s", router.value()->RenderPrometheus().c_str());
  }
  const std::string& trace_out = flags.GetString("trace_out");
  if (!trace_out.empty()) {
    // One JSON object per request, oldest first ("-" = stdout); lines
    // carry shard_id + corpus_epoch for correlation with swaps.
    std::string jsonl = router.value()->DumpTraces();
    if (trace_out == "-") {
      std::printf("%s", jsonl.c_str());
    } else {
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot open trace file '%s'\n",
                     trace_out.c_str());
        return 2;
      }
      out << jsonl;
      std::printf("Wrote %zu request traces to %s.\n",
                  router.value()->Traces().size(), trace_out.c_str());
    }
  }
  return failed == 0 ? 0 : 1;
}

void PrintUsage(const char* program) {
  std::printf(
      "Usage: %s <stats|select|narrow|serve|export> [flags]\n"
      "  stats   print Table-2-style dataset statistics\n"
      "  select  comparative review-set selection for one target\n"
      "  narrow  select, then reduce to the core k items (TargetHkS)\n"
      "  serve   answer query lines (stdin or --queries) through a router\n"
      "          over --shards warm engines; line format:\n"
      "          target [algorithm] [m] [c1,c2,..]\n"
      "  export  write the corpus as Amazon-layout JSONL (--prefix)\n"
      "Run '%s select --help' for flags.\n",
      program, program);
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) {
    PrintUsage(argv[0]);
    return 2;
  }
  std::string command = argv[1];

  FlagParser flags;
  AddDataFlags(&flags);
  flags.AddString("target", "", "target product id (default: first instance)");
  flags.AddString("algorithm", "CompaReSetS+",
                  "Random|Crs|CompaReSetSGreedy|CompaReSetS|CompaReSetS+");
  flags.AddInt("m", 3, "max reviews per product");
  flags.AddInt("k", 3, "core-list size (narrow)");
  flags.AddDouble("lambda", 1.0, "opinion-vs-aspect trade-off");
  flags.AddDouble("mu", 0.1, "cross-item synchronization weight");
  flags.AddDouble("time_limit", 10.0, "exact solver budget (s)");
  flags.AddString("prefix", "corpus", "output path prefix (export)");
  flags.AddString("queries", "", "query file for serve (default: stdin)");
  flags.AddInt("threads", 0, "engine worker threads (0 = hardware)");
  flags.AddInt("intra_threads", 0,
               "lane cap for one request's internal fan-out"
               " (0 = whole pool, 1 = serial solve)");
  flags.AddInt("cache_capacity", 256, "engine vector-cache entries");
  flags.AddInt("window", 0,
               "batched-kernel window for serve batches"
               " (0 = off, N = stage Gram builds N requests at a time)");
  flags.AddInt("shards", 1,
               "target-id range shards behind the serve router"
               " (1 = single engine)");
  flags.AddBool("metrics", false, "dump engine metrics after serve");
  flags.AddBool("prometheus", false,
                "dump Prometheus text exposition after serve");
  flags.AddDouble("deadline_ms", 0.0,
                  "per-query deadline in milliseconds (0 = none)");
  flags.AddInt("max_in_flight", 0,
               "admission limit on concurrent solves (0 = unthrottled)");
  flags.AddInt("max_queue", 64, "admission queue slots beyond max_in_flight");
  flags.AddInt("max_batch_queue", 0,
               "admission queue slots for batch-priority requests"
               " (0 = same as --max_queue; batch sheds first)");
  flags.AddString("batch_priority", "batch",
                  "scheduling class for serve-batch sub-requests"
                  " (batch = lone Selects cut ahead, interactive ="
                  " legacy FIFO behaviour)");
  flags.AddDouble("slo_ms", 0.0,
                  "latency SLO for the shedding control loop: when the"
                  " rolling p99 exceeds this, quality floors loosen to"
                  " anytime and the batch admission budget drops to 0"
                  " until p99 recovers (0 = off, --transport local)");
  flags.AddInt("retries", 0, "retries per query on transient failures");
  flags.AddString("trace_out", "",
                  "write per-request JSONL traces here after serve"
                  " (\"-\" = stdout)");
  flags.AddString("transport", "local",
                  "serve transport: local (in-process shard engines) or"
                  " rpc (one shard_server process per shard)");
  flags.AddString("shard_server", "",
                  "shard_server binary for --transport rpc"
                  " (default: next to this binary)");
  flags.AddString("connect", "",
                  "comma-separated shard addresses to dial instead of"
                  " spawning servers (--transport rpc)");
  flags.AddDouble("ready_timeout", 60.0,
                  "seconds to wait for every rpc shard's readiness probe");
  flags.AddString("min_tier", "exact",
                  "lowest quality tier serve may answer with"
                  " (exact|anytime|sampled); anytime returns the greedy"
                  " incumbent on deadline expiry or overload");
  flags.AddBool("degrade", false,
                "shorthand: loosen --min_tier to at least anytime");
  flags.AddInt("sample_threshold", 0,
               "review-sample items with more reviews than this when the"
               " floor admits sampled (0 = never)");
  flags.AddInt("sample_size", 0, "reviews drawn per sampled item");
  flags.AddInt("metrics_port", -1,
               "serve /metrics over HTTP on 127.0.0.1:PORT during the"
               " batch (0 = ephemeral port, -1 = off)");
  flags.AddString("ingest_log", "",
                  "review WAL to tail into delta corpus snapshots before"
                  " (and during) the serve batch (--transport local only)");
  flags.AddInt("ingest_batch", 64,
               "WAL records folded into one delta batch");
  flags.AddInt("ingest_interval_ms", 0,
               "background WAL poll interval while the batch runs"
               " (0 = drain once before answering)");

  Status parsed = flags.Parse(argc - 1, argv + 1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  // Directory holding this binary — where --transport rpc looks for
  // shard_server unless --shard_server overrides it.
  std::string program_dir = "./";
  std::string program_path = argv[0];
  size_t last_slash = program_path.find_last_of('/');
  if (last_slash != std::string::npos) {
    program_dir = program_path.substr(0, last_slash + 1);
  }

  if (command == "stats") return RunStats(flags);
  if (command == "select") return RunSelect(flags, /*narrow=*/false);
  if (command == "narrow") return RunSelect(flags, /*narrow=*/true);
  if (command == "serve") return RunServe(flags, program_dir);
  if (command == "export") return RunExport(flags);
  PrintUsage(argv[0]);
  return 2;
}
