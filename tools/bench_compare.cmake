# Non-gating bench regression radar.
#
#   cmake -DBASELINE_DIR=results -DCANDIDATE_DIR=bench-results \
#         [-DTHRESHOLD_PCT=30] -P tools/bench_compare.cmake
#
# For every *.json present in BOTH directories, walks the candidate
# document and compares each timing leaf (a number whose key ends in
# "_ms" or contains "seconds") against the committed baseline at the
# same JSON path. A candidate more than THRESHOLD_PCT percent slower
# prints a WARNING naming the file, path, and both values.
#
# Deliberately NEVER fails: shared CI runners are too noisy for timings
# to gate a build (the byte-identity properties that DO gate live in
# the test suite). This script exists so a real regression shows up in
# the job log next to the uploaded artifacts, not so it blocks merges.

cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED BASELINE_DIR OR NOT DEFINED CANDIDATE_DIR)
  message(FATAL_ERROR
      "usage: cmake -DBASELINE_DIR=<dir> -DCANDIDATE_DIR=<dir> "
      "[-DTHRESHOLD_PCT=30] -P tools/bench_compare.cmake")
endif()
if(NOT DEFINED THRESHOLD_PCT)
  set(THRESHOLD_PCT 30)
endif()

set(COMPARED_COUNT 0)
set(REGRESSION_COUNT 0)

# Parses a non-negative decimal/scientific JSON number into an integer
# scaled by 1e6 (CMake's math() is integer-only, so ratios are computed
# in fixed point). Values too small to register at that scale become 0
# and are skipped by the caller.
function(fixed_point out_var value)
  if(value MATCHES "^([0-9]*)\\.?([0-9]*)[eE]([+-]?[0-9]+)$")
    set(int_part "${CMAKE_MATCH_1}")
    set(frac_part "${CMAKE_MATCH_2}")
    set(exponent "${CMAKE_MATCH_3}")
  elseif(value MATCHES "^([0-9]*)\\.?([0-9]*)$")
    set(int_part "${CMAKE_MATCH_1}")
    set(frac_part "${CMAKE_MATCH_2}")
    set(exponent 0)
  else()
    set(${out_var} 0 PARENT_SCOPE)
    return()
  endif()
  # digits = int_part followed by frac_part, with the decimal point
  # moved right by (exponent + 6) places.
  string(LENGTH "${frac_part}" frac_len)
  set(digits "${int_part}${frac_part}")
  math(EXPR point "${exponent} + 6 - ${frac_len}")
  if(point GREATER 0)
    foreach(i RANGE 1 ${point})
      string(APPEND digits "0")
    endforeach()
  elseif(point LESS 0)
    string(LENGTH "${digits}" digits_len)
    math(EXPR keep_len "${digits_len} + ${point}")
    if(keep_len LESS_EQUAL 0)
      set(digits 0)
    else()
      string(SUBSTRING "${digits}" 0 ${keep_len} digits)
    endif()
  endif()
  string(REGEX REPLACE "^0+([0-9])" "\\1" digits "${digits}")
  if(digits STREQUAL "")
    set(digits 0)
  endif()
  set(${out_var} "${digits}" PARENT_SCOPE)
endfunction()

# Compares one timing leaf; emits a WARNING on a >THRESHOLD_PCT
# slowdown. A baseline missing this path is skipped silently — a bench
# growing new fields must not spam the log.
function(compare_leaf file path candidate_value)
  string(JSON baseline_value ERROR_VARIABLE get_error
      GET "${BASELINE_JSON}" ${ARGN})
  if(get_error)
    return()
  endif()
  fixed_point(candidate_fp "${candidate_value}")
  fixed_point(baseline_fp "${baseline_value}")
  if(baseline_fp EQUAL 0 OR candidate_fp EQUAL 0)
    return()
  endif()
  math(EXPR next_count "${COMPARED_COUNT} + 1")
  set(COMPARED_COUNT "${next_count}" PARENT_SCOPE)
  math(EXPR limit "(${baseline_fp} * (100 + ${THRESHOLD_PCT})) / 100")
  if(candidate_fp GREATER limit)
    math(EXPR slow_pct
        "((${candidate_fp} - ${baseline_fp}) * 100) / ${baseline_fp}")
    message(WARNING
        "bench regression: ${file} ${path} is ${slow_pct}% slower "
        "(baseline ${baseline_value}, candidate ${candidate_value})")
    math(EXPR next_regressions "${REGRESSION_COUNT} + 1")
    set(REGRESSION_COUNT "${next_regressions}" PARENT_SCOPE)
  endif()
endfunction()

# Recursive walk of the candidate document; ${ARGN} is the member path.
function(walk_node file)
  string(JSON node_type ERROR_VARIABLE type_error
      TYPE "${CANDIDATE_JSON}" ${ARGN})
  if(type_error)
    return()
  endif()
  if(node_type STREQUAL "OBJECT" OR node_type STREQUAL "ARRAY")
    string(JSON length LENGTH "${CANDIDATE_JSON}" ${ARGN})
    if(length EQUAL 0)
      return()
    endif()
    math(EXPR last "${length} - 1")
    foreach(index RANGE 0 ${last})
      if(node_type STREQUAL "OBJECT")
        string(JSON member MEMBER "${CANDIDATE_JSON}" ${ARGN} ${index})
        walk_node("${file}" ${ARGN} "${member}")
      else()
        walk_node("${file}" ${ARGN} "${index}")
      endif()
    endforeach()
    set(COMPARED_COUNT "${COMPARED_COUNT}" PARENT_SCOPE)
    set(REGRESSION_COUNT "${REGRESSION_COUNT}" PARENT_SCOPE)
  elseif(node_type STREQUAL "NUMBER")
    list(LENGTH ARGN path_len)
    if(path_len EQUAL 0)
      return()
    endif()
    math(EXPR key_index "${path_len} - 1")
    list(GET ARGN ${key_index} key)
    if(key MATCHES "_ms$" OR key MATCHES "seconds")
      string(JSON candidate_value GET "${CANDIDATE_JSON}" ${ARGN})
      string(JOIN "." path_display ${ARGN})
      compare_leaf("${file}" "${path_display}" "${candidate_value}" ${ARGN})
      set(COMPARED_COUNT "${COMPARED_COUNT}" PARENT_SCOPE)
      set(REGRESSION_COUNT "${REGRESSION_COUNT}" PARENT_SCOPE)
    endif()
  endif()
endfunction()

file(GLOB candidate_files "${CANDIDATE_DIR}/*.json")
set(FILES_COMPARED 0)
foreach(candidate_path ${candidate_files})
  get_filename_component(name "${candidate_path}" NAME)
  set(baseline_path "${BASELINE_DIR}/${name}")
  if(NOT EXISTS "${baseline_path}")
    message(STATUS "bench_compare: no committed baseline for ${name}; skipping")
    continue()
  endif()
  file(READ "${candidate_path}" CANDIDATE_JSON)
  file(READ "${baseline_path}" BASELINE_JSON)
  math(EXPR FILES_COMPARED "${FILES_COMPARED} + 1")
  walk_node("${name}")
endforeach()

message(STATUS
    "bench_compare: ${FILES_COMPARED} file(s), ${COMPARED_COUNT} timing "
    "field(s) compared, ${REGRESSION_COUNT} above the +${THRESHOLD_PCT}% "
    "threshold (warnings above, non-gating)")
