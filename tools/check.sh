#!/usr/bin/env sh
# Full verification sweep: configure -> build -> ctest under both the
# Release and the Sanitize (ASan + UBSan) configurations. The sanitize
# pass runs the whole suite — including the thread-pool and
# SelectionEngine tests — so data races' memory fallout and UB in the
# concurrent paths fail loudly.
#
#   tools/check.sh            # both configurations
#   tools/check.sh release    # just one
#   tools/check.sh sanitize
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

run_config() {
  name="$1"; dir="$2"; shift 2
  echo "== [$name] configure"
  cmake -B "$dir" -S . "$@"
  echo "== [$name] build"
  cmake --build "$dir" -j "$JOBS"
  echo "== [$name] ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

want="${1:-all}"

if [ "$want" = "all" ] || [ "$want" = "release" ]; then
  run_config release build -DCMAKE_BUILD_TYPE=Release
fi
if [ "$want" = "all" ] || [ "$want" = "sanitize" ]; then
  run_config sanitize build-sanitize \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCOMPARESETS_SANITIZE=ON
fi
echo "== check.sh: all requested configurations green"
