#!/usr/bin/env sh
# Full verification sweep: configure -> build -> ctest under both the
# Release and the Sanitize (ASan + UBSan) configurations. The sanitize
# pass runs the whole suite — including the thread-pool and
# SelectionEngine tests, plus the streaming-ingestion suites
# (service_ingest_wal_test's crash-recovery property sweeps and
# service_ingest_delta_test's delta-vs-rebuild oracle) — so data
# races' memory fallout and UB in the concurrent paths fail loudly.
# It runs ctest twice: once with COMPARESETS_KERNEL=scalar and once
# with =auto (the best SIMD target the CPU supports), so the
# kernel-dispatch bit-identity contract is re-proven under both
# targets on every sweep.
#
#   tools/check.sh            # all configurations + both integration legs
#   tools/check.sh release    # just one
#   tools/check.sh sanitize
#   tools/check.sh tsan       # ThreadSanitizer, concurrency-heavy suites
#   tools/check.sh integration            # RPC serving stack, Release
#   tools/check.sh integration-sanitize   # same under ASan+UBSan
#
# The tsan phase builds with -fsanitize=thread and runs only the suites
# that exercise the work-stealing scheduler, the admission pipeline, and
# the SLO controller — a data race in the deque hand-off or the lever
# flips fails loudly there; the full suite under TSan would mostly
# re-run single-threaded solver math at 10x slowdown for no signal.
#
# The integration phase builds shard_server + the CLI, spawns a real
# 4-shard fleet of shard_server processes on Unix sockets, proves
# `serve --transport rpc` byte-identical to `--transport local` against
# that externally-launched fleet, then runs the `integration`-labeled
# ctests (which manage their own servers). The fleet is torn down by an
# EXIT trap, so a failing leg never leaks processes or socket files.
# The regular ctest legs run with -LE integration.
#
# JOBS=N overrides the build/test parallelism (default: nproc).
# Each phase failure names the configuration and phase that failed and
# exits with a distinct code: 2 configure, 3 build, 4 tests, 64 usage.
set -u

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_config() {
  name="$1"; dir="$2"; kernels="$3"; shift 3
  echo "== [$name] configure"
  if ! cmake -B "$dir" -S . "$@"; then
    echo "== check.sh: [$name] configure FAILED" >&2
    exit 2
  fi
  echo "== [$name] build"
  if ! cmake --build "$dir" -j "$JOBS"; then
    echo "== check.sh: [$name] build FAILED" >&2
    exit 3
  fi
  for kernel in $kernels; do
    echo "== [$name] ctest (COMPARESETS_KERNEL=$kernel)"
    if ! COMPARESETS_KERNEL="$kernel" \
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
            -LE integration; then
      echo "== check.sh: [$name] tests FAILED (COMPARESETS_KERNEL=$kernel)" >&2
      exit 4
    fi
  done
}

run_tsan() {
  name="$1"; dir="$2"; shift 2
  echo "== [$name] configure"
  if ! cmake -B "$dir" -S . "$@"; then
    echo "== check.sh: [$name] configure FAILED" >&2
    exit 2
  fi
  echo "== [$name] build"
  if ! cmake --build "$dir" -j "$JOBS"; then
    echo "== check.sh: [$name] build FAILED" >&2
    exit 3
  fi
  echo "== [$name] ctest (concurrency suites)"
  if ! ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
      -R 'util_thread_pool_test|core_parallel_determinism_test|service_engine_test|service_intra_parallel_test|service_router_test|service_router_determinism_test|service_slo_test'; then
    echo "== check.sh: [$name] tests FAILED" >&2
    exit 4
  fi
}

# The spawned shard fleet's state, shared with the EXIT trap. POSIX sh
# has no arrays: PIDs live in one space-separated string.
FLEET_PIDS=""
FLEET_DIR=""

teardown_fleet() {
  for pid in $FLEET_PIDS; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in $FLEET_PIDS; do
    wait "$pid" 2>/dev/null || true
  done
  FLEET_PIDS=""
  if [ -n "$FLEET_DIR" ]; then
    rm -rf "$FLEET_DIR"
    FLEET_DIR=""
  fi
}

run_integration() {
  name="$1"; dir="$2"; shift 2
  echo "== [$name] configure"
  if ! cmake -B "$dir" -S . "$@"; then
    echo "== check.sh: [$name] configure FAILED" >&2
    exit 2
  fi
  echo "== [$name] build"
  if ! cmake --build "$dir" -j "$JOBS"; then
    echo "== check.sh: [$name] build FAILED" >&2
    exit 3
  fi

  FLEET_DIR="${TMPDIR:-/tmp}/comparesets-integration-$$"
  mkdir -p "$FLEET_DIR"
  trap teardown_fleet EXIT INT TERM

  shards=4
  products=60
  echo "== [$name] spawning $shards shard_server processes"
  addrs=""
  i=0
  while [ "$i" -lt "$shards" ]; do
    addr="unix:$FLEET_DIR/shard$i.sock"
    "$dir/tools/shard_server" --listen="$addr" --shards="$shards" \
        --shard_index="$i" --products="$products" --threads=1 \
        > "$FLEET_DIR/shard$i.log" 2>&1 &
    FLEET_PIDS="$FLEET_PIDS $!"
    if [ -z "$addrs" ]; then addrs="$addr"; else addrs="$addrs,$addr"; fi
    i=$((i + 1))
  done

  # Byte-identity against the EXTERNAL fleet: serve the same queries
  # over both transports and diff everything but the timing token.
  # (`--connect` makes the CLI use the spawned servers instead of
  # forking its own; it also waits for their readiness probes.)
  printf '%s\n' \
      "cellphone-P00000" \
      "cellphone-P00010 CompaReSetS 2" \
      "cellphone-P00025 CompaReSetSGreedy" \
      "cellphone-P00000" \
      > "$FLEET_DIR/queries.txt"
  echo "== [$name] transport oracle: serve --transport local vs rpc"
  if ! "$dir/tools/comparesets" serve --products="$products" --threads=1 \
      --shards="$shards" --queries="$FLEET_DIR/queries.txt" \
      --transport=local > "$FLEET_DIR/local.out"; then
    echo "== check.sh: [$name] local-transport serve FAILED" >&2
    exit 4
  fi
  if ! "$dir/tools/comparesets" serve --products="$products" --threads=1 \
      --shards="$shards" --queries="$FLEET_DIR/queries.txt" \
      --transport=rpc --connect="$addrs" --ready_timeout=120 \
      > "$FLEET_DIR/rpc.out" 2> "$FLEET_DIR/rpc.err"; then
    echo "== check.sh: [$name] rpc-transport serve FAILED" >&2
    cat "$FLEET_DIR/rpc.err" >&2
    exit 4
  fi
  sed 's/solve_ms=[0-9.]*//' "$FLEET_DIR/local.out" > "$FLEET_DIR/local.norm"
  sed 's/solve_ms=[0-9.]*//' "$FLEET_DIR/rpc.out" > "$FLEET_DIR/rpc.norm"
  if ! cmp -s "$FLEET_DIR/local.norm" "$FLEET_DIR/rpc.norm"; then
    echo "== check.sh: [$name] TRANSPORT ORACLE FAILED (rpc != local)" >&2
    diff "$FLEET_DIR/local.norm" "$FLEET_DIR/rpc.norm" >&2 || true
    exit 4
  fi
  echo "== [$name] transport oracle: byte-identical"

  echo "== [$name] ctest -L integration"
  if ! ctest --test-dir "$dir" --output-on-failure -L integration; then
    echo "== check.sh: [$name] integration tests FAILED" >&2
    exit 4
  fi

  teardown_fleet
  trap - EXIT INT TERM
}

want="${1:-all}"
case "$want" in
  all|release|sanitize|tsan|integration|integration-sanitize) ;;
  *)
    echo "usage: tools/check.sh" \
        "[all|release|sanitize|tsan|integration|integration-sanitize]" >&2
    exit 64
    ;;
esac

if [ "$want" = "all" ] || [ "$want" = "release" ]; then
  run_config release build auto -DCMAKE_BUILD_TYPE=Release
fi
if [ "$want" = "all" ] || [ "$want" = "sanitize" ]; then
  run_config sanitize build-sanitize "scalar auto" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCOMPARESETS_SANITIZE=ON
fi
if [ "$want" = "all" ] || [ "$want" = "tsan" ]; then
  run_tsan tsan build-tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCOMPARESETS_TSAN=ON
fi
if [ "$want" = "all" ] || [ "$want" = "integration" ]; then
  run_integration integration build -DCMAKE_BUILD_TYPE=Release
fi
if [ "$want" = "all" ] || [ "$want" = "integration-sanitize" ]; then
  run_integration integration-sanitize build-sanitize \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCOMPARESETS_SANITIZE=ON
fi
echo "== check.sh: all requested configurations green"
