#!/usr/bin/env sh
# Full verification sweep: configure -> build -> ctest under both the
# Release and the Sanitize (ASan + UBSan) configurations. The sanitize
# pass runs the whole suite — including the thread-pool and
# SelectionEngine tests — so data races' memory fallout and UB in the
# concurrent paths fail loudly. It runs ctest twice: once with
# COMPARESETS_KERNEL=scalar and once with =auto (the best SIMD target
# the CPU supports), so the kernel-dispatch bit-identity contract is
# re-proven under both targets on every sweep.
#
#   tools/check.sh            # both configurations
#   tools/check.sh release    # just one
#   tools/check.sh sanitize
#
# JOBS=N overrides the build/test parallelism (default: nproc).
# Each phase failure names the configuration and phase that failed and
# exits with a distinct code: 2 configure, 3 build, 4 tests, 64 usage.
set -u

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_config() {
  name="$1"; dir="$2"; kernels="$3"; shift 3
  echo "== [$name] configure"
  if ! cmake -B "$dir" -S . "$@"; then
    echo "== check.sh: [$name] configure FAILED" >&2
    exit 2
  fi
  echo "== [$name] build"
  if ! cmake --build "$dir" -j "$JOBS"; then
    echo "== check.sh: [$name] build FAILED" >&2
    exit 3
  fi
  for kernel in $kernels; do
    echo "== [$name] ctest (COMPARESETS_KERNEL=$kernel)"
    if ! COMPARESETS_KERNEL="$kernel" \
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS"; then
      echo "== check.sh: [$name] tests FAILED (COMPARESETS_KERNEL=$kernel)" >&2
      exit 4
    fi
  done
}

want="${1:-all}"
case "$want" in
  all|release|sanitize) ;;
  *)
    echo "usage: tools/check.sh [all|release|sanitize]" >&2
    exit 64
    ;;
esac

if [ "$want" = "all" ] || [ "$want" = "release" ]; then
  run_config release build auto -DCMAKE_BUILD_TYPE=Release
fi
if [ "$want" = "all" ] || [ "$want" = "sanitize" ]; then
  run_config sanitize build-sanitize "scalar auto" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCOMPARESETS_SANITIZE=ON
fi
echo "== check.sh: all requested configurations green"
