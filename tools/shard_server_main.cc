// shard_server — hosts ONE shard's SelectionEngine behind the wire
// protocol (net/server.h).
//
//   shard_server --listen unix:/tmp/shard0.sock --shards 4
//                --shard_index 0 [data flags] [engine flags]
//
// The shard's slice is NOT shipped over the wire: the server loads the
// same corpus the router describes (same data flags) and re-derives the
// partition with the same deterministic CorpusPartitioner, so every
// process independently computes identical bounds and identical shard
// snapshots. That determinism is what lets the transport oracle demand
// byte-identical responses from a multi-process topology.
//
// Status lines go to stderr; stdout carries exactly one machine-
// readable "LISTENING <address>" line (scripts use it to learn an
// ephemeral TCP port). The server runs until a kShutdownRequest
// arrives (comparesets serve sends one per child on teardown) or the
// process is signalled.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/loader.h"
#include "data/synthetic.h"
#include "net/server.h"
#include "service/backend.h"
#include "service/partitioner.h"
#include "service/slo_controller.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace comparesets;

namespace {

Result<Corpus> LoadData(const FlagParser& flags) {
  const std::string& reviews = flags.GetString("reviews");
  const std::string& metadata = flags.GetString("metadata");
  if (!reviews.empty() || !metadata.empty()) {
    if (reviews.empty() || metadata.empty()) {
      return Status::InvalidArgument(
          "--reviews and --metadata must be given together");
    }
    return LoadAmazonCorpusFromFiles("UserData", reviews, metadata);
  }
  COMPARESETS_ASSIGN_OR_RETURN(
      SyntheticConfig config,
      DefaultConfig(flags.GetString("category"),
                    static_cast<size_t>(flags.GetInt("products"))));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  return GenerateCorpus(config);
}

int Run(const FlagParser& flags) {
  const std::string& listen = flags.GetString("listen");
  if (listen.empty()) {
    std::fprintf(stderr, "--listen is required (unix:PATH or tcp:HOST:PORT)\n");
    return 2;
  }
  int shards = flags.GetInt("shards");
  int shard_index = flags.GetInt("shard_index");
  if (shards < 1 || shard_index < 0 || shard_index >= shards) {
    std::fprintf(stderr, "need 0 <= --shard_index < --shards (got %d/%d)\n",
                 shard_index, shards);
    return 2;
  }

  auto corpus = LoadData(flags);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 2;
  }
  auto indexed = IndexedCorpus::Build(std::move(corpus).value());
  if (!indexed.ok()) {
    std::fprintf(stderr, "%s\n", indexed.status().ToString().c_str());
    return 2;
  }

  // Same partitioner call the router makes: bounds (and therefore the
  // shard snapshot) match the routing side bit-for-bit.
  auto bounds = CorpusPartitioner::ComputeBounds(
      *indexed.value(), static_cast<size_t>(shards));
  if (!bounds.ok()) {
    std::fprintf(stderr, "%s\n", bounds.status().ToString().c_str());
    return 2;
  }
  std::shared_ptr<const IndexedCorpus> shard_corpus;
  if (shards == 1) {
    shard_corpus = indexed.value();
  } else {
    auto extracted = CorpusPartitioner::ExtractShard(
        *indexed.value(), bounds.value(), static_cast<size_t>(shard_index));
    if (!extracted.ok()) {
      std::fprintf(stderr, "%s\n", extracted.status().ToString().c_str());
      return 2;
    }
    shard_corpus = std::move(extracted).value();
  }

  EngineOptions engine_options;
  engine_options.threads = static_cast<size_t>(flags.GetInt("threads"));
  engine_options.max_intra_request_threads =
      static_cast<size_t>(flags.GetInt("intra_threads"));
  engine_options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache_capacity"));
  engine_options.max_in_flight =
      static_cast<size_t>(flags.GetInt("max_in_flight"));
  engine_options.max_queue = static_cast<size_t>(flags.GetInt("max_queue"));
  engine_options.max_batch_queue =
      static_cast<size_t>(flags.GetInt("max_batch_queue"));
  if (!ParseRequestPriority(flags.GetString("batch_priority"),
                            &engine_options.batch_priority)) {
    std::fprintf(stderr, "--batch_priority must be interactive or batch\n");
    return 2;
  }
  engine_options.max_attempts = flags.GetInt("retries") + 1;
  engine_options.batch_kernel_window =
      static_cast<size_t>(flags.GetInt("window"));
  engine_options.shard_id = static_cast<size_t>(shard_index);
  auto floor = ParseQualityTier(flags.GetString("min_tier"));
  if (!floor.ok()) {
    std::fprintf(stderr, "%s\n", floor.status().ToString().c_str());
    return 2;
  }
  engine_options.min_quality_tier = floor.value();

  ShardKeyRange range;
  range.begin = bounds.value()[static_cast<size_t>(shard_index)];
  if (static_cast<size_t>(shard_index) + 1 < bounds.value().size()) {
    range.end = bounds.value()[static_cast<size_t>(shard_index) + 1];
  }
  auto engine = std::make_shared<SelectionEngine>(std::move(shard_corpus),
                                                  std::move(engine_options));

  // Each shard process runs its own SLO control loop over its own
  // engine: the trace ring, degrade floor, and batch budget all live
  // here, so the router side never needs to reach across the wire.
  std::unique_ptr<SloController> slo;
  double slo_ms = flags.GetDouble("slo_ms");
  if (slo_ms > 0.0) {
    SloControllerOptions slo_options;
    slo_options.slo_seconds = slo_ms / 1000.0;
    slo = std::make_unique<SloController>(slo_options, engine->pipeline(),
                                          std::vector<SelectionEngine*>{
                                              engine.get()});
  }

  auto backend = std::make_unique<LocalShardBackend>(engine, range);

  ShardServerOptions server_options;
  server_options.address = listen;
  auto server = ShardServer::Start(std::move(backend), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 2;
  }
  std::fprintf(stderr, "shard %d/%d %s serving on %s\n", shard_index, shards,
               range.ToString().c_str(),
               server.value()->bound_address().c_str());
  std::printf("LISTENING %s\n", server.value()->bound_address().c_str());
  std::fflush(stdout);

  if (slo != nullptr) slo->Start();
  server.value()->WaitForShutdown();
  if (slo != nullptr) {
    slo->Stop();
    std::fprintf(stderr, "shard %d/%d SLO sheds=%llu restores=%llu\n",
                 shard_index, shards,
                 static_cast<unsigned long long>(slo->sheds()),
                 static_cast<unsigned long long>(slo->restores()));
  }
  std::fprintf(stderr, "shard %d/%d shut down cleanly\n", shard_index, shards);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser flags;
  flags.AddString("listen", "", "address to serve on (unix:PATH|tcp:HOST:PORT)");
  flags.AddInt("shards", 1, "total shards in the topology");
  flags.AddInt("shard_index", 0, "which shard this server hosts");
  flags.AddString("category", "Cellphone",
                  "synthetic category (Cellphone|Toy|Clothing)");
  flags.AddInt("products", 240, "synthetic corpus size");
  flags.AddInt("seed", 42, "synthetic generator seed");
  flags.AddString("reviews", "", "Amazon-layout reviews JSONL path");
  flags.AddString("metadata", "", "Amazon-layout metadata JSONL path");
  flags.AddInt("threads", 0, "engine worker threads (0 = hardware)");
  flags.AddInt("intra_threads", 0,
               "lane cap for one request's internal fan-out"
               " (0 = whole pool, 1 = serial solve)");
  flags.AddInt("cache_capacity", 256, "engine vector-cache entries");
  flags.AddInt("window", 0,
               "batched-kernel window for sub-batches (0 = off)");
  flags.AddInt("max_in_flight", 0,
               "admission limit on concurrent solves (0 = unthrottled)");
  flags.AddInt("max_queue", 64, "admission queue slots beyond max_in_flight");
  flags.AddInt("max_batch_queue", 0,
               "admission queue slots for batch-priority requests"
               " (0 = same as --max_queue)");
  flags.AddString("batch_priority", "batch",
                  "scheduling class for sub-batch requests"
                  " (batch|interactive)");
  flags.AddDouble("slo_ms", 0.0,
                  "latency SLO for this shard's shedding control loop"
                  " (0 = off)");
  flags.AddInt("retries", 0, "retries per query on transient failures");
  flags.AddString("min_tier", "exact",
                  "engine-wide degradation floor"
                  " (exact|anytime|sampled)");

  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;
  return Run(flags);
}
