# Sanity check that tools/check.sh stays POSIX-sh clean, without
# depending on shellcheck (not baked into the toolchain image). Run as:
#
#   cmake -P tools/posix_sh_lint.cmake
#
# Two layers: a syntax pass through `sh -n`, and a scan for the common
# bashisms that `sh -n` accepts on systems where /bin/sh is bash.
cmake_minimum_required(VERSION 3.16)

set(script "${CMAKE_CURRENT_LIST_DIR}/check.sh")
file(READ "${script}" contents)
set(errors "")

if(NOT contents MATCHES "^#!/usr/bin/env sh\n")
  string(APPEND errors "  shebang must be '#!/usr/bin/env sh'\n")
endif()

# Bashisms that slip through when /bin/sh happens to be bash. Each entry
# is "<regex>@@<human explanation>" ('@@' cannot appear in the regexes).
set(bashism_checks
    "\\[\\[@@'[[ ]]' test — use '[ ]'"
    "&>@@'&>' redirection — use '> file 2>&1'"
    "function [a-zA-Z_]+@@'function name' — use 'name() {'"
    "(^|\n)[ \t]*local @@'local' is not POSIX"
    "\\$\\{[A-Za-z_]+\\[@@arrays are not POSIX"
    "(^|\n)[ \t]*source @@'source' — use '.'"
    "=~@@'=~' regex match is not POSIX"
    "\\$'@@$'...' quoting is not POSIX")
foreach(check IN LISTS bashism_checks)
  string(FIND "${check}" "@@" split_at)
  string(SUBSTRING "${check}" 0 ${split_at} pattern)
  math(EXPR rest "${split_at} + 2")
  string(SUBSTRING "${check}" ${rest} -1 why)
  if(contents MATCHES "${pattern}")
    string(APPEND errors "  ${why}\n")
  endif()
endforeach()

find_program(POSIX_SH sh)
if(POSIX_SH)
  execute_process(
    COMMAND "${POSIX_SH}" -n "${script}"
    RESULT_VARIABLE syntax_rc
    ERROR_VARIABLE syntax_err)
  if(NOT syntax_rc EQUAL 0)
    string(APPEND errors "  sh -n rejected the script:\n${syntax_err}")
  endif()
else()
  message(STATUS "posix_sh_lint: no 'sh' on PATH; skipping syntax pass")
endif()

if(errors)
  message(FATAL_ERROR "tools/check.sh is not POSIX-sh clean:\n${errors}")
endif()
message(STATUS "posix_sh_lint: tools/check.sh is POSIX-sh clean")
