# Fails on broken relative links in the repo's markdown. Run as:
#
#   cmake -P tools/md_link_check.cmake
#
# Every `[text](target)` (and image `![alt](target)`) in a tracked *.md
# file is resolved against that file's directory; a target that is not
# an existing file or directory fails the check. External schemes
# (http://, https://, mailto:) and pure in-page anchors (#section) are
# skipped; a `path#anchor` link is checked for the file part only.
# Build trees and vendored sources are excluded so only authored docs
# gate CI (the `docs` job and the `docs_link_check` ctest both run
# this script).
cmake_minimum_required(VERSION 3.16)

get_filename_component(repo_root "${CMAKE_CURRENT_LIST_DIR}/.." ABSOLUTE)
file(GLOB_RECURSE md_files RELATIVE "${repo_root}" "${repo_root}/*.md")

set(errors "")
set(files_checked 0)
set(links_checked 0)

foreach(md_file IN LISTS md_files)
  # Skip anything under a build tree or .git — only authored markdown.
  if(md_file MATCHES "(^|/)(build[^/]*|\\.git|_deps)/")
    continue()
  endif()
  math(EXPR files_checked "${files_checked} + 1")
  get_filename_component(md_dir "${repo_root}/${md_file}" DIRECTORY)
  file(READ "${repo_root}/${md_file}" contents)

  # Matches like "](a.md)" contain unbalanced brackets, which defeats
  # CMake list splitting of MATCHALL output — so scan iteratively:
  # match the first link, process it, chop past it, repeat.
  set(rest "${contents}")
  while(TRUE)
    string(REGEX MATCH "\\]\\(([^)\n]+)\\)" link "${rest}")
    if(link STREQUAL "")
      break()
    endif()
    set(target "${CMAKE_MATCH_1}")
    string(FIND "${rest}" "${link}" link_pos)
    string(LENGTH "${link}" link_len)
    math(EXPR chop_at "${link_pos} + ${link_len}")
    string(SUBSTRING "${rest}" ${chop_at} -1 rest)
    # Drop an optional link "title" suffix.
    string(REGEX REPLACE "[ \t]+\"[^\"]*\"$" "" target "${target}")
    if(target MATCHES "^[a-zA-Z][a-zA-Z0-9+.-]*:")
      continue()  # http://, https://, mailto:, ... — external.
    endif()
    if(target MATCHES "^#")
      continue()  # In-page anchor.
    endif()
    string(REGEX REPLACE "#[^#]*$" "" target "${target}")
    if(target STREQUAL "")
      continue()
    endif()
    math(EXPR links_checked "${links_checked} + 1")
    if(target MATCHES "^/")
      set(resolved "${repo_root}${target}")
    else()
      set(resolved "${md_dir}/${target}")
    endif()
    if(NOT EXISTS "${resolved}")
      string(APPEND errors "  ${md_file}: broken link -> ${target}\n")
    endif()
  endwhile()
endforeach()

if(errors)
  message(FATAL_ERROR "md_link_check: broken relative links:\n${errors}")
endif()
message(STATUS
    "md_link_check: ${links_checked} relative links OK across "
    "${files_checked} markdown files")
