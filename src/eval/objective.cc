#include "eval/objective.h"

#include "util/logging.h"

namespace comparesets {

double ItemCost(const InstanceVectors& vectors, size_t item,
                const Selection& selection, double lambda) {
  Vector pi = vectors.OpinionOf(item, selection);
  Vector phi = vectors.AspectOf(item, selection);
  return SquaredDistance(vectors.tau[item], pi) +
         lambda * lambda * SquaredDistance(vectors.gamma, phi);
}

SelectionVectors BuildSelectionVectors(
    const InstanceVectors& vectors, const std::vector<Selection>& selections) {
  COMPARESETS_CHECK(selections.size() == vectors.num_items())
      << "selection count mismatch";
  SelectionVectors out;
  out.pi.reserve(selections.size());
  out.phi.reserve(selections.size());
  for (size_t i = 0; i < selections.size(); ++i) {
    out.pi.push_back(vectors.OpinionOf(i, selections[i]));
    out.phi.push_back(vectors.AspectOf(i, selections[i]));
  }
  return out;
}

double CompareSetsObjective(const InstanceVectors& vectors,
                            const std::vector<Selection>& selections,
                            double lambda) {
  SelectionVectors sv = BuildSelectionVectors(vectors, selections);
  double total = 0.0;
  for (size_t i = 0; i < selections.size(); ++i) {
    total += SquaredDistance(vectors.tau[i], sv.pi[i]) +
             lambda * lambda * SquaredDistance(vectors.gamma, sv.phi[i]);
  }
  return total;
}

double CompareSetsPlusObjective(const InstanceVectors& vectors,
                                const std::vector<Selection>& selections,
                                double lambda, double mu) {
  SelectionVectors sv = BuildSelectionVectors(vectors, selections);
  double total = 0.0;
  for (size_t i = 0; i < selections.size(); ++i) {
    total += SquaredDistance(vectors.tau[i], sv.pi[i]) +
             lambda * lambda * SquaredDistance(vectors.gamma, sv.phi[i]);
  }
  for (size_t i = 0; i < selections.size(); ++i) {
    for (size_t j = i + 1; j < selections.size(); ++j) {
      total += mu * mu * SquaredDistance(sv.phi[i], sv.phi[j]);
    }
  }
  return total;
}

double ItemPairDistance(const InstanceVectors& vectors,
                        const std::vector<Selection>& selections, size_t i,
                        size_t j, double lambda, double mu) {
  COMPARESETS_CHECK(i != j) << "pair distance needs distinct items";
  Vector pi_i = vectors.OpinionOf(i, selections[i]);
  Vector pi_j = vectors.OpinionOf(j, selections[j]);
  Vector phi_i = vectors.AspectOf(i, selections[i]);
  Vector phi_j = vectors.AspectOf(j, selections[j]);
  double lambda2 = lambda * lambda;
  return SquaredDistance(vectors.tau[i], pi_i) +
         SquaredDistance(vectors.tau[j], pi_j) +
         lambda2 * SquaredDistance(vectors.gamma, phi_i) +
         lambda2 * SquaredDistance(vectors.gamma, phi_j) +
         mu * mu * SquaredDistance(phi_i, phi_j);
}

}  // namespace comparesets
