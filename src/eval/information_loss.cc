#include "eval/information_loss.h"

#include "util/logging.h"

namespace comparesets {

InformationLoss MeasureInformationLoss(
    const InstanceVectors& vectors, const std::vector<Selection>& selections) {
  COMPARESETS_CHECK(selections.size() == vectors.num_items())
      << "selection count mismatch";
  InformationLoss out;
  double delta_sum = 0.0;
  double cosine_sum = 0.0;
  for (size_t i = 0; i < selections.size(); ++i) {
    Vector pi = vectors.OpinionOf(i, selections[i]);
    double delta = SquaredDistance(vectors.tau[i], pi);
    double cosine = CosineSimilarity(vectors.tau[i], pi);
    if (i == 0) {
      out.delta_target = delta;
      out.cosine_target = cosine;
    }
    delta_sum += delta;
    cosine_sum += cosine;
  }
  out.delta_all_items = delta_sum / static_cast<double>(selections.size());
  out.cosine_all_items = cosine_sum / static_cast<double>(selections.size());
  return out;
}

}  // namespace comparesets
