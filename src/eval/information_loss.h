// Information-loss measurement (§4.6.1, Figure 11): how much of the full
// review set's opinion distribution the selected subset preserves —
// squared distance Δ(τ_i, π(S_i)) (Fig. 11a, lower is better) and cosine
// similarity cos(τ_i, π(S_i)) (Fig. 11b, Eq. 9, higher is better),
// reported for the target item alone and averaged over all items.

#pragma once

#include <vector>

#include "opinion/vectors.h"

namespace comparesets {

struct InformationLoss {
  double delta_target = 0.0;  ///< Δ(τ_1, π(S_1)).
  double cosine_target = 0.0;
  double delta_all_items = 0.0;  ///< Mean over all items.
  double cosine_all_items = 0.0;
};

InformationLoss MeasureInformationLoss(const InstanceVectors& vectors,
                                       const std::vector<Selection>& selections);

}  // namespace comparesets
