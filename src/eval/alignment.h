// Review-alignment measurement (§4.1.3): average pairwise ROUGE between
// selected reviews of different items —
//   * "Target vs Comparative": pairs (r ∈ S_1, r' ∈ S_j), j ≥ 2
//     (Tables 3a / 6a);
//   * "Among items": pairs from any two distinct items (Tables 3b / 6b).
// Reported as mean F1 per pair; 0 when no pair exists.

#pragma once

#include <vector>

#include "data/corpus.h"
#include "opinion/vectors.h"
#include "text/rouge.h"

namespace comparesets {

struct AlignmentScores {
  RougeTriple target_vs_comparative;  ///< Mean pairwise F1 triple.
  RougeTriple among_items;
  size_t target_pairs = 0;  ///< #pairs behind target_vs_comparative.
  size_t among_pairs = 0;   ///< #pairs behind among_items.
};

/// Measures alignment over all items of the instance.
AlignmentScores MeasureAlignment(const ProblemInstance& instance,
                                 const std::vector<Selection>& selections);

/// Measures alignment restricted to a subset of item indices (the core
/// list; must contain item 0 for the target view to be meaningful).
AlignmentScores MeasureAlignmentSubset(const ProblemInstance& instance,
                                       const std::vector<Selection>& selections,
                                       const std::vector<size_t>& items);

}  // namespace comparesets
