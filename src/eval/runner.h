// Experiment runner: the shared harness the benchmark binaries use to
// regenerate the paper's tables — generate (or load) a corpus, enumerate
// problem instances, run selectors, and aggregate alignment metrics with
// per-instance detail retained for significance testing.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/selector.h"
#include "data/corpus.h"
#include "data/synthetic.h"
#include "eval/alignment.h"
#include "opinion/vectors.h"
#include "service/indexed_corpus.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace comparesets {

struct RunnerConfig {
  std::string category = "Cellphone";
  /// Synthetic corpus size; benches default to a laptop-scale slice of
  /// the paper's datasets (--products to change).
  size_t num_products = 240;
  /// Cap on evaluated problem instances (0 = all).
  size_t max_instances = 120;
  /// Cap on comparative items per instance (0 = no cap). The paper's
  /// runtime figure sweeps this.
  size_t max_comparative_items = 0;
  OpinionDefinition opinion = OpinionDefinition::kBinary;
  uint64_t seed = 42;
};

/// A prepared workload: an immutable IndexedCorpus snapshot + the
/// evaluated slice of its instances + prebuilt per-instance vectors.
/// Instances reference corpus storage, which the workload keeps alive
/// through its shared snapshot; the snapshot itself can be handed to a
/// service::SelectionEngine via indexed_corpus().
class Workload {
 public:
  /// Builds a synthetic workload per config (Table 2 defaults applied,
  /// then overridden by config fields).
  static Result<Workload> BuildSynthetic(const RunnerConfig& config);

  /// Wraps an already-loaded corpus.
  static Result<Workload> FromCorpus(Corpus corpus,
                                     const RunnerConfig& config);

  const Corpus& corpus() const { return indexed_->corpus(); }
  /// The shared catalog snapshot backing this workload (never null on a
  /// successfully built workload).
  const std::shared_ptr<const IndexedCorpus>& indexed_corpus() const {
    return indexed_;
  }
  const std::vector<ProblemInstance>& instances() const { return instances_; }
  const std::vector<InstanceVectors>& vectors() const { return vectors_; }
  size_t num_instances() const { return instances_.size(); }

 private:
  Workload() = default;
  Status Prepare(Corpus corpus, const RunnerConfig& config);

  std::shared_ptr<const IndexedCorpus> indexed_;
  std::vector<ProblemInstance> instances_;
  std::vector<InstanceVectors> vectors_;
};

/// Per-selector aggregate over a workload.
struct SelectorRun {
  std::string selector_name;
  /// One result per instance (selections retained for downstream core-
  /// list experiments).
  std::vector<SelectionResult> results;
  /// One alignment measurement per instance.
  std::vector<AlignmentScores> alignment;
  /// Wall-clock seconds over all instances (selection only).
  double total_seconds = 0.0;

  /// Mean pairwise F1 triples over instances (instances with zero pairs
  /// are skipped, as an empty selection pair carries no signal).
  RougeTriple MeanTarget() const;
  RougeTriple MeanAmong() const;
  /// Per-instance ROUGE-L F1 series (target view / among view) for
  /// paired significance tests.
  std::vector<double> TargetRougeLSeries() const;
  std::vector<double> AmongRougeLSeries() const;
};

/// Runs one selector over every instance of the workload. A thin
/// adapter over SelectionEngine::SolveInstances (serial mode) that adds
/// alignment measurement and aggregation. `control` (optional) threads
/// a shared deadline/cancellation into every instance solve; on expiry
/// or cancellation the run fails with kDeadlineExceeded / kCancelled.
Result<SelectorRun> RunSelector(const ReviewSelector& selector,
                                const Workload& workload,
                                const SelectorOptions& options,
                                const ExecControl* control = nullptr);

/// Multi-threaded variant. Problem instances are fully independent (the
/// paper notes per-target instances "can be done in parallel", §4.1.1),
/// so instances are distributed over a `threads`-wide pool (0 =
/// hardware concurrency). Results are bit-identical to RunSelector, in
/// instance order; total_seconds sums per-instance solve time (the
/// serial-cost measure), not wall clock.
Result<SelectorRun> RunSelectorParallel(const ReviewSelector& selector,
                                        const Workload& workload,
                                        const SelectorOptions& options,
                                        size_t threads = 0,
                                        const ExecControl* control = nullptr);

}  // namespace comparesets
