#include "eval/alignment.h"

#include <numeric>

#include "util/logging.h"

namespace comparesets {

namespace {

RougeTriple MeanF1(const std::vector<RougeTriple>& scores) {
  RougeTriple mean;
  if (scores.empty()) return mean;
  for (const RougeTriple& s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  return mean;
}

/// Symmetrized pair score: averaging F1(a→b) and F1(b→a). F1 of ROUGE-1/L
/// is already symmetric; ROUGE-2 likewise; the average keeps this robust
/// to any asymmetric variant added later.
RougeTriple PairScore(const RougeDocument& a, const RougeDocument& b) {
  RougeTriple forward = a.ScoreAgainst(b);
  RougeTriple backward = b.ScoreAgainst(a);
  forward += backward;
  forward /= 2.0;
  return forward;
}

}  // namespace

AlignmentScores MeasureAlignmentSubset(const ProblemInstance& instance,
                                       const std::vector<Selection>& selections,
                                       const std::vector<size_t>& items) {
  COMPARESETS_CHECK(selections.size() == instance.num_items())
      << "selection count mismatch";

  // Pre-tokenize every selected review once.
  std::vector<std::vector<RougeDocument>> docs(items.size());
  for (size_t t = 0; t < items.size(); ++t) {
    size_t item = items[t];
    COMPARESETS_CHECK(item < instance.num_items()) << "item out of range";
    const Product& product = *instance.items[item];
    for (size_t review_index : selections[item]) {
      COMPARESETS_CHECK(review_index < product.reviews.size())
          << "review index out of range";
      docs[t].emplace_back(product.reviews[review_index].text);
    }
  }

  std::vector<RougeTriple> target_scores;
  std::vector<RougeTriple> among_scores;
  for (size_t a = 0; a < items.size(); ++a) {
    for (size_t b = a + 1; b < items.size(); ++b) {
      for (const RougeDocument& da : docs[a]) {
        for (const RougeDocument& db : docs[b]) {
          RougeTriple score = PairScore(da, db);
          among_scores.push_back(score);
          if (items[a] == 0 || items[b] == 0) {
            target_scores.push_back(score);
          }
        }
      }
    }
  }

  AlignmentScores out;
  out.target_vs_comparative = MeanF1(target_scores);
  out.among_items = MeanF1(among_scores);
  out.target_pairs = target_scores.size();
  out.among_pairs = among_scores.size();
  return out;
}

AlignmentScores MeasureAlignment(const ProblemInstance& instance,
                                 const std::vector<Selection>& selections) {
  std::vector<size_t> all(instance.num_items());
  std::iota(all.begin(), all.end(), 0);
  return MeasureAlignmentSubset(instance, selections, all);
}

}  // namespace comparesets
