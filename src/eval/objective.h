// Objective functions of the paper, evaluated exactly on candidate
// selections (the solvers optimize relaxations; these are the ground
// truth they are scored by).
//
//   Eq. 3 item cost:        Δ(τi, π(Si)) + λ² Δ(Γ, φ(Si))
//   Eq. 1 CompaReSetS:      Σi [Eq. 3]
//   Eq. 5 CompaReSetS+:     Eq. 1 + μ² Σ_{i<j} Δ(φ(Si), φ(Sj))
//   §3.1 item distance:     d_ij used to weight the TargetHkS graph.

#pragma once

#include <vector>

#include "opinion/vectors.h"

namespace comparesets {

/// Eq. 3 — the per-item CompaReSetS cost.
double ItemCost(const InstanceVectors& vectors, size_t item,
                const Selection& selection, double lambda);

/// Eq. 1 — the CompaReSetS objective over all items.
double CompareSetsObjective(const InstanceVectors& vectors,
                            const std::vector<Selection>& selections,
                            double lambda);

/// Eq. 5 — the synchronized CompaReSetS+ objective.
double CompareSetsPlusObjective(const InstanceVectors& vectors,
                                const std::vector<Selection>& selections,
                                double lambda, double mu);

/// §3.1 — the pairwise item distance after selection:
///   d_ij = Δ(τi, π(Si)) + Δ(τj, π(Sj))
///        + λ² Δ(Γ, φ(Si)) + λ² Δ(Γ, φ(Sj)) + μ² Δ(φ(Si), φ(Sj)).
double ItemPairDistance(const InstanceVectors& vectors,
                        const std::vector<Selection>& selections, size_t i,
                        size_t j, double lambda, double mu);

/// Precomputed per-item π(Si)/φ(Si) for repeated objective evaluation.
struct SelectionVectors {
  std::vector<Vector> pi;
  std::vector<Vector> phi;
};

SelectionVectors BuildSelectionVectors(const InstanceVectors& vectors,
                                       const std::vector<Selection>& selections);

}  // namespace comparesets
