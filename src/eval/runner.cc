#include "eval/runner.h"

#include <atomic>
#include <mutex>
#include <thread>

#include "util/logging.h"
#include "util/timer.h"

namespace comparesets {

Result<Workload> Workload::BuildSynthetic(const RunnerConfig& config) {
  COMPARESETS_ASSIGN_OR_RETURN(
      SyntheticConfig synth,
      DefaultConfig(config.category, config.num_products));
  synth.seed = config.seed;
  COMPARESETS_ASSIGN_OR_RETURN(Corpus corpus, GenerateCorpus(synth));
  return FromCorpus(std::move(corpus), config);
}

Result<Workload> Workload::FromCorpus(Corpus corpus,
                                      const RunnerConfig& config) {
  Workload workload;
  workload.corpus_ = std::move(corpus);
  COMPARESETS_RETURN_NOT_OK(workload.Prepare(config));
  return workload;
}

Status Workload::Prepare(const RunnerConfig& config) {
  InstanceOptions instance_options;
  instance_options.max_comparative_items = config.max_comparative_items;
  instances_ = corpus_.BuildInstances(instance_options);
  if (instances_.empty()) {
    return Status::InvalidArgument(
        "corpus yields no problem instances (too few linked products?)");
  }
  if (config.max_instances > 0 && instances_.size() > config.max_instances) {
    instances_.resize(config.max_instances);
  }

  if (config.opinion == OpinionDefinition::kLearnedPreference) {
    // Learned-preference vectors need an external table; build those
    // workloads directly via BuildInstanceVectors with
    // OpinionModel::LearnedPreference (see bench/ablation_learned).
    return Status::InvalidArgument(
        "learned-preference workloads require an explicit review table");
  }
  OpinionModel model(config.opinion, corpus_.num_aspects());
  vectors_.reserve(instances_.size());
  for (const ProblemInstance& instance : instances_) {
    vectors_.push_back(BuildInstanceVectors(model, instance));
  }
  return Status::OK();
}

namespace {

RougeTriple MeanOver(const std::vector<AlignmentScores>& alignment,
                     bool target_view) {
  RougeTriple mean;
  size_t counted = 0;
  for (const AlignmentScores& scores : alignment) {
    size_t pairs = target_view ? scores.target_pairs : scores.among_pairs;
    if (pairs == 0) continue;
    mean += target_view ? scores.target_vs_comparative : scores.among_items;
    ++counted;
  }
  if (counted > 0) mean /= static_cast<double>(counted);
  return mean;
}

std::vector<double> SeriesOver(const std::vector<AlignmentScores>& alignment,
                               bool target_view) {
  std::vector<double> out;
  out.reserve(alignment.size());
  for (const AlignmentScores& scores : alignment) {
    out.push_back(target_view ? scores.target_vs_comparative.rougeL.f1
                              : scores.among_items.rougeL.f1);
  }
  return out;
}

}  // namespace

RougeTriple SelectorRun::MeanTarget() const { return MeanOver(alignment, true); }
RougeTriple SelectorRun::MeanAmong() const { return MeanOver(alignment, false); }
std::vector<double> SelectorRun::TargetRougeLSeries() const {
  return SeriesOver(alignment, true);
}
std::vector<double> SelectorRun::AmongRougeLSeries() const {
  return SeriesOver(alignment, false);
}

Result<SelectorRun> RunSelector(const ReviewSelector& selector,
                                const Workload& workload,
                                const SelectorOptions& options) {
  SelectorRun run;
  run.selector_name = selector.name();
  run.results.reserve(workload.num_instances());
  run.alignment.reserve(workload.num_instances());

  for (size_t i = 0; i < workload.num_instances(); ++i) {
    const InstanceVectors& vectors = workload.vectors()[i];
    Timer timer;
    COMPARESETS_ASSIGN_OR_RETURN(SelectionResult result,
                                 selector.Select(vectors, options));
    run.total_seconds += timer.ElapsedSeconds();
    run.alignment.push_back(
        MeasureAlignment(workload.instances()[i], result.selections));
    run.results.push_back(std::move(result));
  }
  return run;
}

Result<SelectorRun> RunSelectorParallel(const ReviewSelector& selector,
                                        const Workload& workload,
                                        const SelectorOptions& options,
                                        size_t threads) {
  size_t n = workload.num_instances();
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads <= 1) return RunSelector(selector, workload, options);

  SelectorRun run;
  run.selector_name = selector.name();
  run.results.resize(n);
  run.alignment.resize(n);
  std::vector<double> seconds(n, 0.0);

  std::atomic<size_t> next{0};
  std::mutex error_mutex;
  Status first_error = Status::OK();

  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= n) return;
      Timer timer;
      auto result = selector.Select(workload.vectors()[i], options);
      seconds[i] = timer.ElapsedSeconds();
      if (!result.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = result.status();
        return;
      }
      run.alignment[i] = MeasureAlignment(workload.instances()[i],
                                          result.value().selections);
      run.results[i] = std::move(result).value();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();

  if (!first_error.ok()) return first_error;
  for (double s : seconds) run.total_seconds += s;
  return run;
}

}  // namespace comparesets
