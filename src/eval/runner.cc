#include "eval/runner.h"

#include <utility>

#include "service/engine.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace comparesets {

Result<Workload> Workload::BuildSynthetic(const RunnerConfig& config) {
  COMPARESETS_ASSIGN_OR_RETURN(
      SyntheticConfig synth,
      DefaultConfig(config.category, config.num_products));
  synth.seed = config.seed;
  COMPARESETS_ASSIGN_OR_RETURN(Corpus corpus, GenerateCorpus(synth));
  return FromCorpus(std::move(corpus), config);
}

Result<Workload> Workload::FromCorpus(Corpus corpus,
                                      const RunnerConfig& config) {
  Workload workload;
  COMPARESETS_RETURN_NOT_OK(workload.Prepare(std::move(corpus), config));
  return workload;
}

Status Workload::Prepare(Corpus corpus, const RunnerConfig& config) {
  InstanceOptions instance_options;
  instance_options.max_comparative_items = config.max_comparative_items;
  COMPARESETS_ASSIGN_OR_RETURN(
      indexed_, IndexedCorpus::Build(std::move(corpus), instance_options));

  // The evaluated slice: instance copies are cheap (item pointers into
  // the snapshot, which indexed_ keeps alive).
  instances_ = indexed_->instances();
  if (config.max_instances > 0 && instances_.size() > config.max_instances) {
    instances_.resize(config.max_instances);
  }

  if (config.opinion == OpinionDefinition::kLearnedPreference) {
    // Learned-preference vectors need an external table; build those
    // workloads directly via BuildInstanceVectors with
    // OpinionModel::LearnedPreference (see bench/ablation_learned).
    return Status::InvalidArgument(
        "learned-preference workloads require an explicit review table");
  }
  OpinionModel model(config.opinion, indexed_->num_aspects());
  vectors_.reserve(instances_.size());
  for (const ProblemInstance& instance : instances_) {
    vectors_.push_back(BuildInstanceVectors(model, instance));
  }
  return Status::OK();
}

namespace {

RougeTriple MeanOver(const std::vector<AlignmentScores>& alignment,
                     bool target_view) {
  RougeTriple mean;
  size_t counted = 0;
  for (const AlignmentScores& scores : alignment) {
    size_t pairs = target_view ? scores.target_pairs : scores.among_pairs;
    if (pairs == 0) continue;
    mean += target_view ? scores.target_vs_comparative : scores.among_items;
    ++counted;
  }
  if (counted > 0) mean /= static_cast<double>(counted);
  return mean;
}

std::vector<double> SeriesOver(const std::vector<AlignmentScores>& alignment,
                               bool target_view) {
  std::vector<double> out;
  out.reserve(alignment.size());
  for (const AlignmentScores& scores : alignment) {
    out.push_back(target_view ? scores.target_vs_comparative.rougeL.f1
                              : scores.among_items.rougeL.f1);
  }
  return out;
}

/// Folds per-instance solves + alignment into the aggregate run.
SelectorRun AssembleRun(const ReviewSelector& selector,
                        const Workload& workload,
                        std::vector<InstanceSolve> solves) {
  SelectorRun run;
  run.selector_name = selector.name();
  run.results.reserve(solves.size());
  run.alignment.reserve(solves.size());
  for (size_t i = 0; i < solves.size(); ++i) {
    run.total_seconds += solves[i].seconds;
    run.alignment.push_back(MeasureAlignment(workload.instances()[i],
                                             solves[i].result.selections));
    run.results.push_back(std::move(solves[i].result));
  }
  return run;
}

}  // namespace

RougeTriple SelectorRun::MeanTarget() const { return MeanOver(alignment, true); }
RougeTriple SelectorRun::MeanAmong() const { return MeanOver(alignment, false); }
std::vector<double> SelectorRun::TargetRougeLSeries() const {
  return SeriesOver(alignment, true);
}
std::vector<double> SelectorRun::AmongRougeLSeries() const {
  return SeriesOver(alignment, false);
}

Result<SelectorRun> RunSelector(const ReviewSelector& selector,
                                const Workload& workload,
                                const SelectorOptions& options,
                                const ExecControl* control) {
  COMPARESETS_ASSIGN_OR_RETURN(
      std::vector<InstanceSolve> solves,
      SelectionEngine::SolveInstances(selector, workload.vectors(), options,
                                      /*pool=*/nullptr, control));
  return AssembleRun(selector, workload, std::move(solves));
}

Result<SelectorRun> RunSelectorParallel(const ReviewSelector& selector,
                                        const Workload& workload,
                                        const SelectorOptions& options,
                                        size_t threads,
                                        const ExecControl* control) {
  size_t n = workload.num_instances();
  threads = ThreadPool::ResolveThreads(threads, n);
  if (threads <= 1) return RunSelector(selector, workload, options, control);

  ThreadPool pool(threads);
  COMPARESETS_ASSIGN_OR_RETURN(
      std::vector<InstanceSolve> solves,
      SelectionEngine::SolveInstances(selector, workload.vectors(), options,
                                      &pool, control));
  return AssembleRun(selector, workload, std::move(solves));
}

}  // namespace comparesets
