// Exact TargetHkS solver (paper §3.2, TargetHkS_ILP).
//
// The paper solves the quadratic 0/1 program (Eq. 7) with Gurobi under a
// 60-second cap. We replace the commercial solver with a depth-first
// branch-and-bound whose admissible upper bound lets it prove optimality
// on the paper's instance sizes (n ≈ 10–40, k ≤ 10); the same time-limit
// protocol is kept so the "#Optimal Solution" percentages of Table 5 are
// reproducible. When the deadline fires, the incumbent is returned with
// proven_optimal = false.

#pragma once

#include "graph/similarity_graph.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace comparesets {

struct ExactSolverOptions {
  /// Wall-clock budget; <= 0 means unlimited (always proves optimality).
  double time_limit_seconds = 60.0;
  /// Optional per-request execution control (the serving path's
  /// deadline + cancellation), checked at the same cadence as the
  /// solver's own time limit. Request-deadline expiry behaves like the
  /// time limit — the incumbent is returned with proven_optimal =
  /// false (the anytime contract) — while cancellation abandons the
  /// solve with kCancelled: a caller that went away wants no answer.
  const ExecControl* control = nullptr;
};

/// Solves max Σ_{i<j∈ρ} w_ij s.t. |ρ| = k, 0 ∈ ρ. Requires 1 <= k <= n.
Result<CoreList> SolveTargetHksExact(const SimilarityGraph& graph, size_t k,
                                     const ExactSolverOptions& options = {});

/// Reference brute-force enumeration (for tests; exponential).
Result<CoreList> SolveTargetHksBruteForce(const SimilarityGraph& graph,
                                          size_t k);

}  // namespace comparesets
