#include "graph/targethks_exact.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/timer.h"

namespace comparesets {

namespace {

Status ValidateArguments(const SimilarityGraph& graph, size_t k) {
  if (graph.num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  if (k < 1 || k > graph.num_vertices()) {
    return Status::InvalidArgument(
        "k must be in [1, n]; got k=" + std::to_string(k) +
        ", n=" + std::to_string(graph.num_vertices()));
  }
  return Status::OK();
}

/// DFS branch-and-bound state over a fixed candidate ordering.
class BranchAndBound {
 public:
  BranchAndBound(const SimilarityGraph& graph, size_t k, double time_limit,
                 const ExecControl* control)
      : graph_(graph), k_(k), deadline_(time_limit), control_(control) {
    // Candidates are the non-target vertices, ordered by descending
    // (edge to target + total degree weight): strong vertices first makes
    // the incumbent good early and the bound tight.
    size_t n = graph.num_vertices();
    order_.reserve(n - 1);
    for (size_t v = 1; v < n; ++v) order_.push_back(v);
    std::vector<double> score(n, 0.0);
    for (size_t v = 1; v < n; ++v) {
      double degree = 0.0;
      for (size_t u = 0; u < n; ++u) {
        if (u != v) degree += graph.weight(v, u);
      }
      score[v] = graph.weight(0, v) + degree;
    }
    std::stable_sort(order_.begin(), order_.end(),
                     [&](size_t a, size_t b) { return score[a] > score[b]; });
  }

  Result<CoreList> Run() {
    chosen_ = {0};
    // Seed the incumbent greedily so pruning bites from the start: this
    // IS the anytime floor — from here on every abort path still holds
    // a feasible k-subset, refined monotonically by the search.
    SeedIncumbent();
    aborted_ = false;
    cancelled_ = false;
    Dfs(0, 0.0);
    if (cancelled_) {
      return Status::Cancelled("targethks branch-and-bound cancelled");
    }
    best_.proven_optimal = !aborted_;
    std::sort(best_.vertices.begin(), best_.vertices.end());
    return best_;
  }

 private:
  void SeedIncumbent() {
    std::vector<size_t> greedy = {0};
    std::vector<bool> used(graph_.num_vertices(), false);
    used[0] = true;
    double weight = 0.0;
    while (greedy.size() < k_) {
      double best_gain = -1.0;
      size_t best_v = graph_.num_vertices();
      for (size_t v : order_) {
        if (used[v]) continue;
        double gain = graph_.WeightToSubset(v, greedy);
        if (gain > best_gain) {
          best_gain = gain;
          best_v = v;
        }
      }
      if (best_v == graph_.num_vertices()) break;
      used[best_v] = true;
      weight += best_gain;
      greedy.push_back(best_v);
    }
    best_.vertices = greedy;
    best_.weight = weight;
  }

  /// Admissible upper bound on the best completion: current weight plus,
  /// for the `slots` best remaining candidates, their edge weight into
  /// the chosen set plus half their largest possible cross edges among
  /// remaining candidates (each cross edge contributes 0.5 to both of
  /// its endpoints, so no edge is counted more than once in total).
  double UpperBound(size_t first_candidate, double current_weight) const {
    size_t slots = k_ - chosen_.size();
    if (slots == 0) return current_weight;
    std::vector<double> potentials;
    potentials.reserve(order_.size() - first_candidate);
    for (size_t idx = first_candidate; idx < order_.size(); ++idx) {
      size_t v = order_[idx];
      double to_chosen = graph_.WeightToSubset(v, chosen_);
      // Largest (slots - 1) edges from v to other remaining candidates.
      std::vector<double> cross;
      cross.reserve(order_.size() - first_candidate - 1);
      for (size_t jdx = first_candidate; jdx < order_.size(); ++jdx) {
        if (jdx == idx) continue;
        cross.push_back(graph_.weight(v, order_[jdx]));
      }
      size_t take = std::min(cross.size(), slots - 1);
      std::partial_sort(cross.begin(), cross.begin() + take, cross.end(),
                        std::greater<double>());
      double cross_sum = 0.0;
      for (size_t t = 0; t < take; ++t) cross_sum += cross[t];
      potentials.push_back(to_chosen + 0.5 * cross_sum);
    }
    size_t take = std::min(potentials.size(), slots);
    std::partial_sort(potentials.begin(), potentials.begin() + take,
                      potentials.end(), std::greater<double>());
    double bound = current_weight;
    for (size_t t = 0; t < take; ++t) bound += potentials[t];
    return bound;
  }

  void Dfs(size_t first_candidate, double current_weight) {
    if (aborted_) return;
    if (chosen_.size() == k_) {
      if (current_weight > best_.weight + 1e-12 ||
          best_.vertices.size() != k_) {
        best_.weight = current_weight;
        best_.vertices = chosen_;
      }
      return;
    }
    // Not enough candidates left to fill the subset.
    size_t remaining = order_.size() - first_candidate;
    if (remaining < k_ - chosen_.size()) return;

    if ((++node_count_ & 0xFF) == 0) {
      if (control_ != nullptr && control_->cancel != nullptr &&
          control_->cancel->cancelled()) {
        cancelled_ = true;
        aborted_ = true;
        return;
      }
      // The request deadline degrades exactly like the solver's own
      // time limit: stop refining, keep the incumbent.
      if (deadline_.Expired() ||
          (control_ != nullptr && control_->deadline != nullptr &&
           control_->deadline->Expired())) {
        aborted_ = true;
        return;
      }
    }
    if (UpperBound(first_candidate, current_weight) <= best_.weight + 1e-12 &&
        best_.vertices.size() == k_) {
      return;
    }

    size_t v = order_[first_candidate];
    // Branch 1: include v.
    double gain = graph_.WeightToSubset(v, chosen_);
    chosen_.push_back(v);
    Dfs(first_candidate + 1, current_weight + gain);
    chosen_.pop_back();
    // Branch 2: exclude v.
    Dfs(first_candidate + 1, current_weight);
  }

  const SimilarityGraph& graph_;
  size_t k_;
  Deadline deadline_;
  const ExecControl* control_;
  std::vector<size_t> order_;
  std::vector<size_t> chosen_;
  CoreList best_;
  bool aborted_ = false;
  bool cancelled_ = false;
  uint64_t node_count_ = 0;
};

}  // namespace

Result<CoreList> SolveTargetHksExact(const SimilarityGraph& graph, size_t k,
                                     const ExactSolverOptions& options) {
  COMPARESETS_RETURN_NOT_OK(ValidateArguments(graph, k));
  if (k == 1) {
    return CoreList{{0}, 0.0, true};
  }
  if (k == graph.num_vertices()) {
    std::vector<size_t> all(graph.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    double weight = graph.SubsetWeight(all);
    return CoreList{std::move(all), weight, true};
  }
  BranchAndBound solver(graph, k, options.time_limit_seconds,
                        options.control);
  return solver.Run();
}

Result<CoreList> SolveTargetHksBruteForce(const SimilarityGraph& graph,
                                          size_t k) {
  COMPARESETS_RETURN_NOT_OK(ValidateArguments(graph, k));
  size_t n = graph.num_vertices();
  COMPARESETS_CHECK(n <= 25) << "brute force limited to small graphs";

  CoreList best;
  best.weight = -1.0;
  // Enumerate all (k-1)-subsets of {1..n-1} via bitmask over n-1 bits.
  uint32_t limit = 1u << (n - 1);
  for (uint32_t mask = 0; mask < limit; ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) != k - 1) continue;
    std::vector<size_t> subset = {0};
    for (size_t v = 1; v < n; ++v) {
      if (mask & (1u << (v - 1))) subset.push_back(v);
    }
    double weight = graph.SubsetWeight(subset);
    if (weight > best.weight) {
      best.weight = weight;
      best.vertices = std::move(subset);
    }
  }
  best.proven_optimal = true;
  return best;
}

}  // namespace comparesets
