// TargetHkS_Greedy (paper Algorithm 2): start from the target vertex,
// then repeatedly add the vertex maximizing the total weight of the
// grown subset until k vertices are chosen. O(k·n·k) time.

#pragma once

#include "graph/similarity_graph.h"
#include "util/status.h"

namespace comparesets {

Result<CoreList> SolveTargetHksGreedy(const SimilarityGraph& graph, size_t k);

}  // namespace comparesets
