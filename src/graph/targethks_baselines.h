// Core-list baselines:
//   * Random-k (§4.3.1): target + k−1 uniformly random items;
//   * Top-k similarity (§4.3.2): target + the k−1 items with the largest
//     edge weight to the target;
//   * Asahiro peel (related work [1], extension): repeatedly delete the
//     minimum-weighted-degree non-target vertex until k remain.

#pragma once

#include <cstdint>

#include "graph/similarity_graph.h"
#include "util/status.h"

namespace comparesets {

Result<CoreList> SolveTargetHksRandom(const SimilarityGraph& graph, size_t k,
                                      uint64_t seed);

Result<CoreList> SolveTopKSimilarity(const SimilarityGraph& graph, size_t k);

Result<CoreList> SolveTargetHksPeel(const SimilarityGraph& graph, size_t k);

}  // namespace comparesets
