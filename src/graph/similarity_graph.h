// Item similarity graph for the core-list task (paper §3.1).
//
// After CompaReSetS+ selection, every item pair gets a distance d_ij
// (eval/objective.h) which is converted into a similarity weight
//   w_ij = max_{i'≠j'} d_{i'j'} − d_ij
// on a complete graph whose vertex 0 is the target item.

#pragma once

#include <cstddef>
#include <vector>

#include "eval/objective.h"
#include "opinion/vectors.h"
#include "util/cancellation.h"
#include "util/parallel.h"
#include "util/status.h"

namespace comparesets {

/// Symmetric complete weighted graph with n >= 1 vertices. Weights are
/// non-negative by construction (the max-distance shift).
class SimilarityGraph {
 public:
  explicit SimilarityGraph(size_t num_vertices)
      : n_(num_vertices), weights_(num_vertices * num_vertices, 0.0) {}

  size_t num_vertices() const { return n_; }

  double weight(size_t i, size_t j) const { return weights_[i * n_ + j]; }
  void set_weight(size_t i, size_t j, double w) {
    weights_[i * n_ + j] = w;
    weights_[j * n_ + i] = w;
  }

  /// Total edge weight of a vertex subset (Σ_{i<j ∈ subset} w_ij) —
  /// the TargetHkS objective (Eq. 6).
  double SubsetWeight(const std::vector<size_t>& subset) const;

  /// Sum of weights from `vertex` to every vertex in `subset`.
  double WeightToSubset(size_t vertex, const std::vector<size_t>& subset) const;

 private:
  size_t n_;
  std::vector<double> weights_;
};

/// Builds the §3.1 graph from an instance's selections (d_ij shifted by
/// the max pairwise distance). With fewer than two items the graph is
/// trivially returned with zero weights.
///
/// The O(n²) pairwise distances fan out row-by-row over `parallel`
/// (rows write disjoint slices; the max-shift reduction is a serial
/// index-ordered pass, so the graph is bit-identical to a serial
/// build). `control` is checked at each row boundary; expiry returns
/// kCancelled / kDeadlineExceeded.
Result<SimilarityGraph> BuildSimilarityGraph(
    const InstanceVectors& vectors, const std::vector<Selection>& selections,
    double lambda, double mu, const ParallelContext& parallel,
    const ExecControl* control);

/// Serial, uncontrolled build (cannot fail).
SimilarityGraph BuildSimilarityGraph(const InstanceVectors& vectors,
                                     const std::vector<Selection>& selections,
                                     double lambda, double mu);

/// A solved core list: chosen vertices (always containing vertex 0) and
/// the objective value.
struct CoreList {
  std::vector<size_t> vertices;  ///< Sorted ascending; vertices[0] == 0.
  double weight = 0.0;           ///< Eq. 6 value.
  bool proven_optimal = false;   ///< Exact solvers set this on proof.
};

}  // namespace comparesets
