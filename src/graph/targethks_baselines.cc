#include "graph/targethks_baselines.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace comparesets {

namespace {
Status Validate(const SimilarityGraph& graph, size_t k) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  if (k < 1 || k > graph.num_vertices()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  return Status::OK();
}
}  // namespace

Result<CoreList> SolveTargetHksRandom(const SimilarityGraph& graph, size_t k,
                                      uint64_t seed) {
  COMPARESETS_RETURN_NOT_OK(Validate(graph, k));
  Rng rng(seed, graph.num_vertices());
  CoreList out;
  out.vertices = {0};
  // Sample k-1 of the n-1 non-target vertices (the target is always in
  // the solution set, as in the paper's Random baseline).
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(graph.num_vertices() - 1, k - 1);
  for (size_t p : picks) out.vertices.push_back(p + 1);
  std::sort(out.vertices.begin(), out.vertices.end());
  out.weight = graph.SubsetWeight(out.vertices);
  return out;
}

Result<CoreList> SolveTopKSimilarity(const SimilarityGraph& graph, size_t k) {
  COMPARESETS_RETURN_NOT_OK(Validate(graph, k));
  size_t n = graph.num_vertices();
  std::vector<size_t> others(n - 1);
  std::iota(others.begin(), others.end(), 1);
  std::stable_sort(others.begin(), others.end(), [&](size_t a, size_t b) {
    return graph.weight(0, a) > graph.weight(0, b);
  });
  CoreList out;
  out.vertices = {0};
  for (size_t i = 0; i + 1 < k; ++i) out.vertices.push_back(others[i]);
  std::sort(out.vertices.begin(), out.vertices.end());
  out.weight = graph.SubsetWeight(out.vertices);
  return out;
}

Result<CoreList> SolveTargetHksPeel(const SimilarityGraph& graph, size_t k) {
  COMPARESETS_RETURN_NOT_OK(Validate(graph, k));
  size_t n = graph.num_vertices();
  std::vector<bool> alive(n, true);
  size_t alive_count = n;

  // Weighted degree within the surviving subgraph, updated on deletion.
  std::vector<double> degree(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) degree[i] += graph.weight(i, j);
    }
  }

  while (alive_count > k) {
    double worst = 0.0;
    size_t victim = n;
    for (size_t v = 1; v < n; ++v) {  // Never peel the target (vertex 0).
      if (!alive[v]) continue;
      if (victim == n || degree[v] < worst) {
        worst = degree[v];
        victim = v;
      }
    }
    alive[victim] = false;
    --alive_count;
    for (size_t u = 0; u < n; ++u) {
      if (alive[u] && u != victim) degree[u] -= graph.weight(u, victim);
    }
  }

  CoreList out;
  for (size_t v = 0; v < n; ++v) {
    if (alive[v]) out.vertices.push_back(v);
  }
  out.weight = graph.SubsetWeight(out.vertices);
  return out;
}

}  // namespace comparesets
