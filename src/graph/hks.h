// Unconstrained Heaviest k-Subgraph (HkS), the classic problem the
// paper's TargetHkS generalizes (§3.1, related work §5.3 [1, 19]).
//
// The paper observes that "when we solve TargetHkS with every vertex as
// the target item, we will eventually find the optimal solution for the
// HkS problem" — SolveHksExact implements exactly that reduction on top
// of the branch-and-bound TargetHkS solver. A greedy and an
// Asahiro-style peel heuristic are provided as cheap alternatives.

#pragma once

#include "graph/targethks_exact.h"

namespace comparesets {

/// Exact HkS via the all-targets reduction. The time limit is shared
/// across the whole solve (each target solve gets the remaining budget);
/// proven_optimal is set only if every sub-solve proved optimality.
Result<CoreList> SolveHksExact(const SimilarityGraph& graph, size_t k,
                               const ExactSolverOptions& options = {});

/// Greedy HkS: best TargetHkS-greedy solution over all start vertices.
Result<CoreList> SolveHksGreedy(const SimilarityGraph& graph, size_t k);

/// Asahiro et al. peel: repeatedly remove the minimum-weighted-degree
/// vertex (no protected target) until k remain.
Result<CoreList> SolveHksPeel(const SimilarityGraph& graph, size_t k);

}  // namespace comparesets
