#include "graph/similarity_graph.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace comparesets {

double SimilarityGraph::SubsetWeight(const std::vector<size_t>& subset) const {
  double total = 0.0;
  for (size_t a = 0; a < subset.size(); ++a) {
    for (size_t b = a + 1; b < subset.size(); ++b) {
      total += weight(subset[a], subset[b]);
    }
  }
  return total;
}

double SimilarityGraph::WeightToSubset(size_t vertex,
                                       const std::vector<size_t>& subset) const {
  double total = 0.0;
  for (size_t v : subset) {
    if (v != vertex) total += weight(vertex, v);
  }
  return total;
}

Result<SimilarityGraph> BuildSimilarityGraph(
    const InstanceVectors& vectors, const std::vector<Selection>& selections,
    double lambda, double mu, const ParallelContext& parallel,
    const ExecControl* control) {
  size_t n = vectors.num_items();
  COMPARESETS_CHECK(selections.size() == n) << "selection count mismatch";
  SimilarityGraph graph(n);
  if (n < 2) return graph;

  // Precompute π/φ once; d_ij decomposes into per-item and pair terms.
  SelectionVectors sv = BuildSelectionVectors(vectors, selections);
  std::vector<double> item_cost(n);
  double lambda2 = lambda * lambda;
  for (size_t i = 0; i < n; ++i) {
    item_cost[i] = SquaredDistance(vectors.tau[i], sv.pi[i]) +
                   lambda2 * SquaredDistance(vectors.gamma, sv.phi[i]);
  }

  // Row i owns the disjoint slice distances[i*n + (i+1..n)] and its own
  // running max, so rows fan out with no shared writes. The max-shift
  // reduction below folds the per-row maxima in index order; max is
  // exactly associative over doubles, so parallel == serial bitwise.
  Timer timer;
  std::vector<double> distances(n * n, 0.0);
  std::vector<double> row_max(n, 0.0);
  std::vector<Status> row_status(n, Status::OK());
  double mu2 = mu * mu;
  RunParallel(
      parallel, n,
      [&](size_t i) {
        Status exec = CheckExec(control, "similarity graph rows");
        if (!exec.ok()) {
          row_status[i] = std::move(exec);
          return;
        }
        for (size_t j = i + 1; j < n; ++j) {
          double d = item_cost[i] + item_cost[j] +
                     mu2 * SquaredDistance(sv.phi[i], sv.phi[j]);
          distances[i * n + j] = d;
          row_max[i] = std::max(row_max[i], d);
        }
      },
      control);
  // Lowest-index failure wins, matching what a serial build would hit.
  for (size_t i = 0; i < n; ++i) {
    COMPARESETS_RETURN_NOT_OK(row_status[i]);
  }

  double max_distance = 0.0;
  for (size_t i = 0; i < n; ++i) {
    max_distance = std::max(max_distance, row_max[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      graph.set_weight(i, j, max_distance - distances[i * n + j]);
    }
  }
  RecordSpan(control, "similarity_graph.edges", timer.ElapsedSeconds());
  return graph;
}

SimilarityGraph BuildSimilarityGraph(const InstanceVectors& vectors,
                                     const std::vector<Selection>& selections,
                                     double lambda, double mu) {
  // Serial + uncontrolled, so the Result can only ever be OK.
  return BuildSimilarityGraph(vectors, selections, lambda, mu,
                              ParallelContext{}, nullptr)
      .ValueOrDie();
}

}  // namespace comparesets
