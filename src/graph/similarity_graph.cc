#include "graph/similarity_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace comparesets {

double SimilarityGraph::SubsetWeight(const std::vector<size_t>& subset) const {
  double total = 0.0;
  for (size_t a = 0; a < subset.size(); ++a) {
    for (size_t b = a + 1; b < subset.size(); ++b) {
      total += weight(subset[a], subset[b]);
    }
  }
  return total;
}

double SimilarityGraph::WeightToSubset(size_t vertex,
                                       const std::vector<size_t>& subset) const {
  double total = 0.0;
  for (size_t v : subset) {
    if (v != vertex) total += weight(vertex, v);
  }
  return total;
}

SimilarityGraph BuildSimilarityGraph(const InstanceVectors& vectors,
                                     const std::vector<Selection>& selections,
                                     double lambda, double mu) {
  size_t n = vectors.num_items();
  COMPARESETS_CHECK(selections.size() == n) << "selection count mismatch";
  SimilarityGraph graph(n);
  if (n < 2) return graph;

  // Precompute π/φ once; d_ij decomposes into per-item and pair terms.
  SelectionVectors sv = BuildSelectionVectors(vectors, selections);
  std::vector<double> item_cost(n);
  double lambda2 = lambda * lambda;
  for (size_t i = 0; i < n; ++i) {
    item_cost[i] = SquaredDistance(vectors.tau[i], sv.pi[i]) +
                   lambda2 * SquaredDistance(vectors.gamma, sv.phi[i]);
  }

  std::vector<double> distances(n * n, 0.0);
  double max_distance = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = item_cost[i] + item_cost[j] +
                 mu * mu * SquaredDistance(sv.phi[i], sv.phi[j]);
      distances[i * n + j] = d;
      max_distance = std::max(max_distance, d);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      graph.set_weight(i, j, max_distance - distances[i * n + j]);
    }
  }
  return graph;
}

}  // namespace comparesets
