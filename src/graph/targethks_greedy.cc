#include "graph/targethks_greedy.h"

#include <algorithm>

namespace comparesets {

Result<CoreList> SolveTargetHksGreedy(const SimilarityGraph& graph, size_t k) {
  size_t n = graph.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (k < 1 || k > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }

  CoreList out;
  out.vertices = {0};
  out.weight = 0.0;
  std::vector<bool> used(n, false);
  used[0] = true;

  // Algorithm 2: argmax over remaining vertices of the grown subset's
  // total weight; since the current subset weight is fixed, this is the
  // vertex with the largest edge weight into the subset.
  while (out.vertices.size() < k) {
    double best_gain = -1.0;
    size_t best_v = n;
    for (size_t v = 1; v < n; ++v) {
      if (used[v]) continue;
      double gain = graph.WeightToSubset(v, out.vertices);
      if (gain > best_gain) {
        best_gain = gain;
        best_v = v;
      }
    }
    if (best_v == n) break;  // Unreachable for k <= n, kept defensive.
    used[best_v] = true;
    out.vertices.push_back(best_v);
    out.weight += best_gain;
  }
  std::sort(out.vertices.begin(), out.vertices.end());
  out.proven_optimal = false;
  return out;
}

}  // namespace comparesets
