#include "graph/hks.h"

#include <algorithm>

#include "graph/targethks_greedy.h"
#include "util/timer.h"

namespace comparesets {

namespace {

Status Validate(const SimilarityGraph& graph, size_t k) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  if (k < 1 || k > graph.num_vertices()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  return Status::OK();
}

/// Relabels `graph` so that `target` becomes vertex 0 (swap relabeling).
SimilarityGraph SwapToFront(const SimilarityGraph& graph, size_t target) {
  size_t n = graph.num_vertices();
  SimilarityGraph out(n);
  auto map = [&](size_t v) {
    if (v == 0) return target;
    if (v == target) return size_t{0};
    return v;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      out.set_weight(i, j, graph.weight(map(i), map(j)));
    }
  }
  return out;
}

/// Maps a solution on the swapped graph back to original vertex ids.
void MapBack(size_t target, CoreList* core) {
  for (size_t& v : core->vertices) {
    if (v == 0) v = target;
    else if (v == target) v = 0;
  }
  std::sort(core->vertices.begin(), core->vertices.end());
}

}  // namespace

Result<CoreList> SolveHksExact(const SimilarityGraph& graph, size_t k,
                               const ExactSolverOptions& options) {
  COMPARESETS_RETURN_NOT_OK(Validate(graph, k));
  Deadline deadline(options.time_limit_seconds);

  CoreList best;
  best.weight = -1.0;
  bool all_proven = true;
  // Every k-subset contains *some* vertex; trying each vertex as the
  // forced target covers the full solution space (with overlap, which
  // only costs time, not correctness).
  for (size_t target = 0; target < graph.num_vertices(); ++target) {
    ExactSolverOptions sub = options;
    if (options.time_limit_seconds > 0.0) {
      sub.time_limit_seconds = std::max(0.001, deadline.RemainingSeconds());
    }
    SimilarityGraph swapped = SwapToFront(graph, target);
    COMPARESETS_ASSIGN_OR_RETURN(CoreList core,
                                 SolveTargetHksExact(swapped, k, sub));
    all_proven = all_proven && core.proven_optimal;
    MapBack(target, &core);
    if (core.weight > best.weight) {
      best = core;
    }
  }
  best.proven_optimal = all_proven;
  return best;
}

Result<CoreList> SolveHksGreedy(const SimilarityGraph& graph, size_t k) {
  COMPARESETS_RETURN_NOT_OK(Validate(graph, k));
  CoreList best;
  best.weight = -1.0;
  for (size_t target = 0; target < graph.num_vertices(); ++target) {
    SimilarityGraph swapped = SwapToFront(graph, target);
    COMPARESETS_ASSIGN_OR_RETURN(CoreList core,
                                 SolveTargetHksGreedy(swapped, k));
    MapBack(target, &core);
    if (core.weight > best.weight) best = core;
  }
  best.proven_optimal = false;
  return best;
}

Result<CoreList> SolveHksPeel(const SimilarityGraph& graph, size_t k) {
  COMPARESETS_RETURN_NOT_OK(Validate(graph, k));
  size_t n = graph.num_vertices();
  std::vector<bool> alive(n, true);
  size_t alive_count = n;
  std::vector<double> degree(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) degree[i] += graph.weight(i, j);
    }
  }
  while (alive_count > k) {
    size_t victim = n;
    for (size_t v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      if (victim == n || degree[v] < degree[victim]) victim = v;
    }
    alive[victim] = false;
    --alive_count;
    for (size_t u = 0; u < n; ++u) {
      if (alive[u]) degree[u] -= graph.weight(u, victim);
    }
  }
  CoreList out;
  for (size_t v = 0; v < n; ++v) {
    if (alive[v]) out.vertices.push_back(v);
  }
  out.weight = graph.SubsetWeight(out.vertices);
  return out;
}

}  // namespace comparesets
