#include "recsys/efm.h"

#include <algorithm>
#include <cmath>

#include "linalg/qr.h"
#include "opinion/opinion_model.h"
#include "util/logging.h"
#include "util/rng.h"

namespace comparesets {

namespace {

/// Sparse observations grouped by row: row -> [(col, value)].
using RowObservations = std::vector<std::vector<std::pair<size_t, double>>>;

/// Solves one ridge row-update: argmin_w ||Q_obs w - y||² + λ||w||².
/// Implemented as least squares on the Tikhonov-augmented system.
Vector SolveRidgeRow(const Matrix& factors,
                     const std::vector<std::pair<size_t, double>>& obs,
                     double reg, size_t f) {
  if (obs.empty()) return Vector(f, 0.0);
  Matrix design(obs.size() + f, f);
  Vector rhs(obs.size() + f, 0.0);
  for (size_t r = 0; r < obs.size(); ++r) {
    for (size_t c = 0; c < f; ++c) design(r, c) = factors(obs[r].first, c);
    rhs[r] = obs[r].second;
  }
  double sqrt_reg = std::sqrt(reg);
  for (size_t c = 0; c < f; ++c) design(obs.size() + c, c) = sqrt_reg;
  auto solved = LeastSquares(design, rhs);
  if (!solved.ok()) return Vector(f, 0.0);  // Degenerate row: reset.
  return std::move(solved).value();
}

double Rmse(const Matrix& row_factors, const Matrix& col_factors,
            const RowObservations& obs) {
  double total = 0.0;
  size_t count = 0;
  for (size_t row = 0; row < obs.size(); ++row) {
    for (const auto& [col, value] : obs[row]) {
      double predicted = 0.0;
      for (size_t c = 0; c < row_factors.cols(); ++c) {
        predicted += row_factors(row, c) * col_factors(col, c);
      }
      double err = predicted - value;
      total += err * err;
      ++count;
    }
  }
  return count == 0 ? 0.0 : std::sqrt(total / static_cast<double>(count));
}

}  // namespace

int ExplicitFactorModel::UserIndex(const std::string& user_id) const {
  auto it = user_ids_.find(user_id);
  return it == user_ids_.end() ? -1 : static_cast<int>(it->second);
}

int ExplicitFactorModel::ItemIndex(const std::string& item_id) const {
  auto it = item_ids_.find(item_id);
  return it == item_ids_.end() ? -1 : static_cast<int>(it->second);
}

Result<ExplicitFactorModel> ExplicitFactorModel::Train(
    const Corpus& corpus, const EfmConfig& config) {
  if (config.factors == 0) {
    return Status::InvalidArgument("factors must be >= 1");
  }
  size_t z = corpus.num_aspects();
  if (z == 0) return Status::InvalidArgument("corpus has no aspects");

  ExplicitFactorModel model;
  model.num_aspects_ = z;

  // --- Collect observations -------------------------------------------------
  // Quality: per (item, aspect) mean signed sentiment -> sigmoid.
  // Attention: per (user, aspect) mention count, row-normalized by max.
  struct Accumulator {
    double sum = 0.0;
    int count = 0;
  };
  std::unordered_map<std::string, std::unordered_map<AspectId, Accumulator>>
      quality_raw;
  std::unordered_map<std::string, std::unordered_map<AspectId, int>>
      attention_raw;

  size_t total_mentions = 0;
  for (const Product& product : corpus.products()) {
    for (const Review& review : product.reviews) {
      for (const OpinionMention& mention : review.opinions) {
        double signed_strength = 0.0;
        if (mention.polarity == Polarity::kPositive) {
          signed_strength = mention.strength;
        } else if (mention.polarity == Polarity::kNegative) {
          signed_strength = -mention.strength;
        }
        Accumulator& acc = quality_raw[product.id][mention.aspect];
        acc.sum += signed_strength;
        ++acc.count;
        if (!review.reviewer_id.empty()) {
          ++attention_raw[review.reviewer_id][mention.aspect];
        }
        ++total_mentions;
      }
    }
  }
  if (total_mentions == 0) {
    return Status::InvalidArgument("corpus has no opinion annotations");
  }

  // Index users and items; build grouped observations.
  RowObservations quality_obs;
  for (const auto& [item_id, aspects] : quality_raw) {
    size_t row = model.item_ids_.emplace(item_id, model.item_ids_.size())
                     .first->second;
    if (quality_obs.size() <= row) quality_obs.resize(row + 1);
    for (const auto& [aspect, acc] : aspects) {
      double mean = acc.sum / acc.count;
      quality_obs[row].emplace_back(static_cast<size_t>(aspect),
                                    Sigmoid(mean));
    }
  }
  RowObservations attention_obs;
  for (const auto& [user_id, aspects] : attention_raw) {
    size_t row = model.user_ids_.emplace(user_id, model.user_ids_.size())
                     .first->second;
    if (attention_obs.size() <= row) attention_obs.resize(row + 1);
    int max_count = 0;
    for (const auto& [aspect, count] : aspects) {
      max_count = std::max(max_count, count);
    }
    for (const auto& [aspect, count] : aspects) {
      attention_obs[row].emplace_back(
          static_cast<size_t>(aspect),
          static_cast<double>(count) / max_count);
    }
  }

  // Aspect-wise transposed views, for the shared-Q update.
  std::vector<std::vector<std::pair<size_t, double>>> quality_by_aspect(z);
  for (size_t item = 0; item < quality_obs.size(); ++item) {
    for (const auto& [aspect, value] : quality_obs[item]) {
      quality_by_aspect[aspect].emplace_back(item, value);
    }
  }
  std::vector<std::vector<std::pair<size_t, double>>> attention_by_aspect(z);
  for (size_t user = 0; user < attention_obs.size(); ++user) {
    for (const auto& [aspect, value] : attention_obs[user]) {
      attention_by_aspect[aspect].emplace_back(user, value);
    }
  }

  // Global per-aspect means as cold-start fallbacks.
  model.aspect_quality_mean_.assign(z, 0.5);
  model.aspect_attention_mean_.assign(z, 0.0);
  {
    std::vector<Accumulator> q(z), a(z);
    for (size_t item = 0; item < quality_obs.size(); ++item) {
      for (const auto& [aspect, value] : quality_obs[item]) {
        q[aspect].sum += value;
        ++q[aspect].count;
      }
    }
    for (size_t user = 0; user < attention_obs.size(); ++user) {
      for (const auto& [aspect, value] : attention_obs[user]) {
        a[aspect].sum += value;
        ++a[aspect].count;
      }
    }
    for (size_t aspect = 0; aspect < z; ++aspect) {
      if (q[aspect].count > 0) {
        model.aspect_quality_mean_[aspect] = q[aspect].sum / q[aspect].count;
      }
      if (a[aspect].count > 0) {
        model.aspect_attention_mean_[aspect] =
            a[aspect].sum / a[aspect].count;
      }
    }
  }

  // --- ALS ---------------------------------------------------------------
  size_t f = config.factors;
  Rng rng(config.seed, 0xef3);
  auto random_init = [&](size_t rows) {
    Matrix m(rows, f);
    double scale = 1.0 / std::sqrt(static_cast<double>(f));
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < f; ++c) {
        m(r, c) = scale * (0.5 + 0.5 * rng.UniformDouble());
      }
    }
    return m;
  };
  model.item_factors_ = random_init(quality_obs.size());
  model.user_factors_ = random_init(attention_obs.size());
  model.aspect_factors_ = random_init(z);

  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    // Item rows against Q.
    for (size_t item = 0; item < quality_obs.size(); ++item) {
      Vector row = SolveRidgeRow(model.aspect_factors_, quality_obs[item],
                                 config.regularization, f);
      for (size_t c = 0; c < f; ++c) model.item_factors_(item, c) = row[c];
    }
    // User rows against Q.
    for (size_t user = 0; user < attention_obs.size(); ++user) {
      Vector row = SolveRidgeRow(model.aspect_factors_, attention_obs[user],
                                 config.regularization, f);
      for (size_t c = 0; c < f; ++c) model.user_factors_(user, c) = row[c];
    }
    // Shared aspect rows against the union of both observation sets.
    for (size_t aspect = 0; aspect < z; ++aspect) {
      const auto& from_items = quality_by_aspect[aspect];
      const auto& from_users = attention_by_aspect[aspect];
      size_t rows = from_items.size() + from_users.size();
      if (rows == 0) continue;
      Matrix design(rows + f, f);
      Vector rhs(rows + f, 0.0);
      size_t r = 0;
      for (const auto& [item, value] : from_items) {
        for (size_t c = 0; c < f; ++c) {
          design(r, c) = model.item_factors_(item, c);
        }
        rhs[r++] = value;
      }
      for (const auto& [user, value] : from_users) {
        for (size_t c = 0; c < f; ++c) {
          design(r, c) = model.user_factors_(user, c);
        }
        rhs[r++] = value;
      }
      double sqrt_reg = std::sqrt(config.regularization);
      for (size_t c = 0; c < f; ++c) design(rows + c, c) = sqrt_reg;
      auto solved = LeastSquares(design, rhs);
      if (solved.ok()) {
        for (size_t c = 0; c < f; ++c) {
          model.aspect_factors_(aspect, c) = solved.value()[c];
        }
      }
    }
  }

  model.quality_rmse_ =
      Rmse(model.item_factors_, model.aspect_factors_, quality_obs);
  model.attention_rmse_ =
      Rmse(model.user_factors_, model.aspect_factors_, attention_obs);
  return model;
}

double ExplicitFactorModel::PredictItemQuality(const std::string& item_id,
                                               AspectId aspect) const {
  COMPARESETS_CHECK(aspect >= 0 &&
                    static_cast<size_t>(aspect) < num_aspects_)
      << "aspect out of range";
  int item = ItemIndex(item_id);
  if (item < 0) return aspect_quality_mean_[static_cast<size_t>(aspect)];
  double predicted = 0.0;
  for (size_t c = 0; c < item_factors_.cols(); ++c) {
    predicted += item_factors_(static_cast<size_t>(item), c) *
                 aspect_factors_(static_cast<size_t>(aspect), c);
  }
  return std::clamp(predicted, 0.0, 1.0);
}

double ExplicitFactorModel::PredictUserAttention(const std::string& user_id,
                                                 AspectId aspect) const {
  COMPARESETS_CHECK(aspect >= 0 &&
                    static_cast<size_t>(aspect) < num_aspects_)
      << "aspect out of range";
  int user = UserIndex(user_id);
  if (user < 0) return aspect_attention_mean_[static_cast<size_t>(aspect)];
  double predicted = 0.0;
  for (size_t c = 0; c < user_factors_.cols(); ++c) {
    predicted += user_factors_(static_cast<size_t>(user), c) *
                 aspect_factors_(static_cast<size_t>(aspect), c);
  }
  return std::clamp(predicted, 0.0, 1.0);
}

Vector ExplicitFactorModel::UserItemPreference(
    const std::string& user_id, const std::string& item_id) const {
  Vector out(num_aspects_);
  for (size_t aspect = 0; aspect < num_aspects_; ++aspect) {
    out[aspect] =
        PredictUserAttention(user_id, static_cast<AspectId>(aspect)) *
        PredictItemQuality(item_id, static_cast<AspectId>(aspect));
  }
  return out;
}

Result<std::shared_ptr<const ReviewVectorTable>> BuildReviewPreferenceTable(
    const Corpus& corpus, const ExplicitFactorModel& model) {
  if (model.num_aspects() != corpus.num_aspects()) {
    return Status::InvalidArgument("model/corpus aspect count mismatch");
  }
  auto table = std::make_shared<ReviewVectorTable>();
  for (const Product& product : corpus.products()) {
    for (const Review& review : product.reviews) {
      Vector preference =
          model.UserItemPreference(review.reviewer_id, product.id);
      // Mask to the aspects this review actually discusses, mirroring
      // the other opinion definitions (unmentioned aspects stay 0).
      Vector masked(corpus.num_aspects(), 0.0);
      for (AspectId aspect : review.MentionedAspects()) {
        masked[static_cast<size_t>(aspect)] =
            preference[static_cast<size_t>(aspect)];
      }
      table->emplace(review.id, std::move(masked));
    }
  }
  return std::shared_ptr<const ReviewVectorTable>(table);
}

}  // namespace comparesets
