// EFM-lite — a compact Explicit Factor Model (Zhang et al., SIGIR'14)
// substrate for the paper's §4.2.3 extension: "learned aspect-level
// preference vectors [of] a reviewer on a given item" as an alternative
// opinion-vector source for the selection pipeline.
//
// From a review corpus we observe
//   X (users × aspects)  — how much attention user u pays to aspect a
//                          (normalized mention frequency), and
//   Y (items × aspects)  — item i's quality on aspect a (sigmoid of the
//                          mean signed sentiment of mentions).
// Both are factorized with a *shared* aspect factor matrix Q:
//   X ≈ W Qᵀ,   Y ≈ P Qᵀ
// by regularized alternating least squares over the observed entries.
// The learned preference of user u about item i is the element-wise
// product  s_ui = X̂_u ⊙ Ŷ_i ∈ [0, 1]^z  (attention × quality).

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/corpus.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace comparesets {

struct EfmConfig {
  size_t factors = 8;       ///< Latent dimensionality f.
  int iterations = 20;      ///< ALS sweeps.
  double regularization = 0.05;
  uint64_t seed = 7;
};

class ExplicitFactorModel {
 public:
  /// Trains on every (reviewer, product, aspect, sentiment) observation
  /// in the corpus. Requires at least one annotated review.
  static Result<ExplicitFactorModel> Train(const Corpus& corpus,
                                           const EfmConfig& config = {});

  size_t num_users() const { return user_ids_.size(); }
  size_t num_items() const { return item_ids_.size(); }
  size_t num_aspects() const { return num_aspects_; }

  /// Predicted item quality Ŷ_ia, clamped to [0, 1]. Unknown item id
  /// returns the global aspect mean.
  double PredictItemQuality(const std::string& item_id,
                            AspectId aspect) const;

  /// Predicted user attention X̂_ua, clamped to [0, 1].
  double PredictUserAttention(const std::string& user_id,
                              AspectId aspect) const;

  /// Learned preference vector s_ui = X̂_u ⊙ Ŷ_i over all aspects.
  Vector UserItemPreference(const std::string& user_id,
                            const std::string& item_id) const;

  /// Observed-entry RMSE of the quality reconstruction after training
  /// (training diagnostic).
  double quality_rmse() const { return quality_rmse_; }
  double attention_rmse() const { return attention_rmse_; }

 private:
  ExplicitFactorModel() = default;

  int UserIndex(const std::string& user_id) const;
  int ItemIndex(const std::string& item_id) const;

  size_t num_aspects_ = 0;
  std::unordered_map<std::string, size_t> user_ids_;
  std::unordered_map<std::string, size_t> item_ids_;
  Matrix user_factors_;    // |U| × f  (W).
  Matrix item_factors_;    // |I| × f  (P).
  Matrix aspect_factors_;  // z × f    (Q, shared).
  std::vector<double> aspect_quality_mean_;
  std::vector<double> aspect_attention_mean_;
  double quality_rmse_ = 0.0;
  double attention_rmse_ = 0.0;
};

/// Per-review learned preference vectors: review id → s_ui of the
/// review's author about the reviewed item, masked to the aspects the
/// review mentions (unmentioned aspects stay 0, like the other opinion
/// models). Feed into OpinionModel::LearnedPreference.
using ReviewVectorTable = std::unordered_map<std::string, Vector>;

Result<std::shared_ptr<const ReviewVectorTable>> BuildReviewPreferenceTable(
    const Corpus& corpus, const ExplicitFactorModel& model);

}  // namespace comparesets
