#include "data/catalog.h"

#include "util/logging.h"

namespace comparesets {

AspectId AspectCatalog::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  AspectId id = static_cast<AspectId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

AspectId AspectCatalog::Find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? -1 : it->second;
}

const std::string& AspectCatalog::Name(AspectId id) const {
  COMPARESETS_CHECK(id >= 0 && static_cast<size_t>(id) < names_.size())
      << "aspect id out of range: " << id;
  return names_[static_cast<size_t>(id)];
}

}  // namespace comparesets
