// Corpus export in the Amazon JSONL layout the loader reads — so
// synthetic corpora can be persisted, inspected, shared, and reloaded
// through the exact ingestion path real data takes.
//
// Round-trip caveat: the loader re-annotates text via aspect mining, so
// a reloaded corpus has *mined* annotations, not the generator's ground
// truth. For a lossless round trip of annotations, export/import the
// annotations sidecar as well (ExportAnnotationsJsonl /
// AttachAnnotationsJsonl).

#pragma once

#include <string>

#include "data/corpus.h"
#include "util/status.h"

namespace comparesets {

/// Review rows: {"asin", "reviewerID", "reviewText", "overall"}.
std::string ExportReviewsJsonl(const Corpus& corpus);

/// Metadata rows: {"asin", "title", "related": {"also_bought": [...]}}.
std::string ExportMetadataJsonl(const Corpus& corpus);

/// Ground-truth annotation sidecar, one row per review:
/// {"review": id, "opinions": [{"aspect": name, "polarity": p,
///  "strength": s}, ...]}.
std::string ExportAnnotationsJsonl(const Corpus& corpus);

/// Replaces every review's opinions with the sidecar's ground truth
/// (aspects are interned into the corpus catalog). Rows referencing
/// unknown review ids are an error; reviews without a row keep their
/// current annotations.
Status AttachAnnotationsJsonl(const std::string& annotations_jsonl,
                              Corpus* corpus);

/// Convenience: writes reviews/metadata/annotations to
/// <prefix>.reviews.jsonl / .metadata.jsonl / .annotations.jsonl.
Status ExportCorpusFiles(const Corpus& corpus, const std::string& prefix);

}  // namespace comparesets
