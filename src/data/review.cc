#include "data/review.h"

#include <algorithm>

namespace comparesets {

const char* PolarityName(Polarity polarity) {
  switch (polarity) {
    case Polarity::kPositive:
      return "positive";
    case Polarity::kNegative:
      return "negative";
    case Polarity::kNeutral:
      return "neutral";
  }
  return "?";
}

std::vector<AspectId> Review::MentionedAspects() const {
  std::vector<AspectId> out;
  out.reserve(opinions.size());
  for (const OpinionMention& mention : opinions) out.push_back(mention.aspect);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace comparesets
