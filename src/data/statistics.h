// Dataset statistics — the quantities of the paper's Table 2.

#pragma once

#include <string>

#include "data/corpus.h"

namespace comparesets {

struct DatasetStatistics {
  std::string name;
  size_t num_products = 0;
  size_t num_reviewers = 0;
  size_t num_reviews = 0;
  /// Products that form a valid problem instance (enough comparatives).
  size_t num_target_products = 0;
  double avg_comparison_products = 0.0;
  double avg_reviews_per_product = 0.0;

  /// One formatted line per Table 2 row.
  std::string ToString() const;
};

DatasetStatistics ComputeStatistics(const Corpus& corpus,
                                    const InstanceOptions& options = {});

}  // namespace comparesets
