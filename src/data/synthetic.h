// Synthetic review-corpus generator — the stand-in for the Amazon
// Product Review Dataset (see DESIGN.md §2 for the substitution
// rationale).
//
// The generator reproduces the statistical couplings the paper's
// algorithms depend on:
//   * products live in similarity clusters; "also bought" lists draw
//     mostly from the same cluster (like co-purchase neighborhoods);
//   * every product has a latent aspect-importance profile and a
//     per-aspect quality, which drive both the (aspect, polarity)
//     annotations AND the surface text of each review — so ROUGE
//     alignment genuinely rewards aspect-synchronized selection;
//   * review counts are heavy-tailed (geometric), giving the per-bucket
//     spread Figure 6 needs;
//   * category defaults match Table 2's per-category averages.
//
// Everything is deterministic under the config seed.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "util/status.h"

namespace comparesets {

/// Per-category wording: aspect nouns plus generic sentence scaffolding.
struct CategoryVocabulary {
  std::string name;
  /// Aspect nouns; each becomes one catalog aspect.
  std::vector<std::string> aspects;
  /// Generic opener/filler sentences (no aspect words) that give reviews
  /// the shared function-word mass real reviews have.
  std::vector<std::string> fillers;
};

const CategoryVocabulary& CellphoneVocabulary();
const CategoryVocabulary& ToyVocabulary();
const CategoryVocabulary& ClothingVocabulary();

/// Lookup by (case-insensitive) category name.
Result<const CategoryVocabulary*> VocabularyByName(const std::string& name);

struct SyntheticConfig {
  std::string category = "Cellphone";
  size_t num_products = 300;
  /// Mean reviews per product (Table 2: 18.64 / 14.06 / 12.10).
  double avg_reviews_per_product = 18.64;
  /// Tail cap on any single product's review count (the geometric draw
  /// is truncated here). The default matches the paper-scale regime;
  /// the solver-scaling benches raise it to stress large single items.
  int max_reviews_per_product = 160;
  /// Mean also-bought list length (Table 2: 25.57 / 34.33 / 12.03).
  double avg_comparison_products = 25.57;
  /// Products per similarity cluster (also-bought neighborhoods).
  size_t cluster_size = 48;
  /// Core aspects shared by every product of a cluster. The rest of a
  /// product's profile is product-specific — this partial overlap is
  /// what separates target-aware selection (CompaReSetS) from purely
  /// self-representative selection (Crs).
  size_t core_aspects_per_cluster = 4;
  /// Product-specific aspects drawn from the whole catalog.
  size_t extra_aspects_per_product = 5;
  /// Probability an also-bought link stays inside the cluster.
  double intra_cluster_link_prob = 0.85;
  uint64_t seed = 42;
};

/// Table 2-matched defaults for "Cellphone", "Toy", or "Clothing",
/// scaled to `num_products`.
Result<SyntheticConfig> DefaultConfig(const std::string& category,
                                      size_t num_products);

/// Generates a finalized corpus (catalog populated, instances buildable).
Result<Corpus> GenerateCorpus(const SyntheticConfig& config);

}  // namespace comparesets
