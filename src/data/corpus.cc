#include "data/corpus.h"

#include <unordered_set>

#include "util/logging.h"

namespace comparesets {

Status Corpus::AddProduct(Product product) {
  COMPARESETS_CHECK(!finalized_) << "AddProduct after Finalize()";
  auto [it, inserted] = index_.emplace(product.id, products_.size());
  if (!inserted) {
    return Status::AlreadyExists("duplicate product id: " + product.id);
  }
  products_.push_back(std::move(product));
  return Status::OK();
}

void Corpus::Finalize() {
  // The id index is maintained incrementally by AddProduct; finalizing
  // freezes the product vector so pointers handed out stay valid.
  finalized_ = true;
}

size_t Corpus::num_reviews() const {
  size_t total = 0;
  for (const Product& p : products_) total += p.reviews.size();
  return total;
}

size_t Corpus::num_reviewers() const {
  std::unordered_set<std::string> reviewers;
  for (const Product& p : products_) {
    for (const Review& r : p.reviews) {
      if (!r.reviewer_id.empty()) reviewers.insert(r.reviewer_id);
    }
  }
  return reviewers.size();
}

const Product* Corpus::Find(const std::string& product_id) const {
  COMPARESETS_CHECK(finalized_) << "Find before Finalize()";
  auto it = index_.find(product_id);
  return it == index_.end() ? nullptr : &products_[it->second];
}

Product* Corpus::MutableProduct(size_t index) {
  COMPARESETS_CHECK(index < products_.size()) << "product index out of range";
  return &products_[index];
}

std::vector<ProblemInstance> Corpus::BuildInstances(
    const InstanceOptions& options) const {
  COMPARESETS_CHECK(finalized_) << "BuildInstances before Finalize()";
  std::vector<ProblemInstance> instances;
  for (const Product& target : products_) {
    if (target.reviews.size() < options.min_reviews_per_item) continue;
    ProblemInstance instance;
    instance.items.push_back(&target);
    for (const std::string& other_id : target.also_bought) {
      if (options.max_comparative_items > 0 &&
          instance.items.size() - 1 >= options.max_comparative_items) {
        break;
      }
      const Product* other = Find(other_id);
      if (other == nullptr || other == &target) continue;
      if (other->reviews.size() < options.min_reviews_per_item) continue;
      instance.items.push_back(other);
    }
    if (instance.items.size() - 1 < options.min_comparative_items) continue;
    instances.push_back(std::move(instance));
  }
  return instances;
}

}  // namespace comparesets
