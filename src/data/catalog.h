// Aspect catalog: the universal aspect set A = {a_1 .. a_z} of the paper,
// mapping aspect names to dense ids shared by a whole corpus.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "data/review.h"
#include "util/status.h"

namespace comparesets {

class AspectCatalog {
 public:
  /// Returns the id for `name`, inserting it if new.
  AspectId Intern(const std::string& name);

  /// Id lookup without insertion; -1 when absent.
  AspectId Find(const std::string& name) const;

  /// Name of an aspect id; CHECK-fails when out of range.
  const std::string& Name(AspectId id) const;

  /// Number of aspects z.
  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AspectId> ids_;
};

}  // namespace comparesets
