#include "data/statistics.h"

#include "util/string_util.h"

namespace comparesets {

std::string DatasetStatistics::ToString() const {
  std::string out;
  out += "Dataset: " + name + "\n";
  out += "  #Product:                  " +
         FormatWithCommas(static_cast<int64_t>(num_products)) + "\n";
  out += "  #Reviewer:                 " +
         FormatWithCommas(static_cast<int64_t>(num_reviewers)) + "\n";
  out += "  #Review:                   " +
         FormatWithCommas(static_cast<int64_t>(num_reviews)) + "\n";
  out += "  #Target Product:           " +
         FormatWithCommas(static_cast<int64_t>(num_target_products)) + "\n";
  out += "  Avg. #Comparison Product:  " +
         FormatDouble(avg_comparison_products, 2) + "\n";
  out += "  Avg. #Review per Product:  " +
         FormatDouble(avg_reviews_per_product, 2) + "\n";
  return out;
}

DatasetStatistics ComputeStatistics(const Corpus& corpus,
                                    const InstanceOptions& options) {
  DatasetStatistics stats;
  stats.name = corpus.name();
  stats.num_products = corpus.num_products();
  stats.num_reviewers = corpus.num_reviewers();
  stats.num_reviews = corpus.num_reviews();
  if (stats.num_products > 0) {
    stats.avg_reviews_per_product =
        static_cast<double>(stats.num_reviews) / stats.num_products;
  }
  std::vector<ProblemInstance> instances = corpus.BuildInstances(options);
  stats.num_target_products = instances.size();
  if (!instances.empty()) {
    size_t total_comparisons = 0;
    for (const ProblemInstance& instance : instances) {
      total_comparisons += instance.num_items() - 1;
    }
    stats.avg_comparison_products =
        static_cast<double>(total_comparisons) / instances.size();
  }
  return stats;
}

}  // namespace comparesets
