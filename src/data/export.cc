#include "data/export.h"

#include <unordered_map>

#include "util/csv.h"
#include "util/jsonl.h"

namespace comparesets {

std::string ExportReviewsJsonl(const Corpus& corpus) {
  std::string out;
  for (const Product& product : corpus.products()) {
    for (const Review& review : product.reviews) {
      JsonValue::Object row;
      row.emplace("asin", product.id);
      row.emplace("reviewID", review.id);
      row.emplace("reviewerID", review.reviewer_id);
      row.emplace("reviewText", review.text);
      row.emplace("overall", review.rating);
      out += JsonValue(std::move(row)).Dump();
      out += '\n';
    }
  }
  return out;
}

std::string ExportMetadataJsonl(const Corpus& corpus) {
  std::string out;
  for (const Product& product : corpus.products()) {
    JsonValue::Object row;
    row.emplace("asin", product.id);
    row.emplace("title", product.title);
    JsonValue::Array also_bought;
    for (const std::string& other : product.also_bought) {
      also_bought.emplace_back(other);
    }
    JsonValue::Object related;
    related.emplace("also_bought", std::move(also_bought));
    row.emplace("related", std::move(related));
    out += JsonValue(std::move(row)).Dump();
    out += '\n';
  }
  return out;
}

std::string ExportAnnotationsJsonl(const Corpus& corpus) {
  std::string out;
  for (const Product& product : corpus.products()) {
    for (const Review& review : product.reviews) {
      JsonValue::Object row;
      row.emplace("review", review.id);
      JsonValue::Array opinions;
      for (const OpinionMention& mention : review.opinions) {
        JsonValue::Object opinion;
        opinion.emplace("aspect", corpus.catalog().Name(mention.aspect));
        opinion.emplace("polarity", PolarityName(mention.polarity));
        opinion.emplace("strength", mention.strength);
        opinions.emplace_back(std::move(opinion));
      }
      row.emplace("opinions", std::move(opinions));
      out += JsonValue(std::move(row)).Dump();
      out += '\n';
    }
  }
  return out;
}

Status AttachAnnotationsJsonl(const std::string& annotations_jsonl,
                              Corpus* corpus) {
  COMPARESETS_ASSIGN_OR_RETURN(std::vector<JsonValue> rows,
                               ParseJsonLines(annotations_jsonl));

  // Review id -> (product index, review index).
  std::unordered_map<std::string, std::pair<size_t, size_t>> index;
  for (size_t p = 0; p < corpus->num_products(); ++p) {
    const Product& product = corpus->products()[p];
    for (size_t r = 0; r < product.reviews.size(); ++r) {
      index.emplace(product.reviews[r].id, std::make_pair(p, r));
    }
  }

  for (const JsonValue& row : rows) {
    std::string review_id = row.GetString("review");
    auto it = index.find(review_id);
    if (it == index.end()) {
      return Status::NotFound("annotation row for unknown review '" +
                              review_id + "'");
    }
    const JsonValue* opinions = row.Find("opinions");
    if (opinions == nullptr || !opinions->is_array()) {
      return Status::ParseError("annotation row for '" + review_id +
                                "' lacks an 'opinions' array");
    }
    std::vector<OpinionMention> mentions;
    for (const JsonValue& entry : opinions->as_array()) {
      OpinionMention mention;
      std::string aspect = entry.GetString("aspect");
      if (aspect.empty()) {
        return Status::ParseError("opinion without aspect in review '" +
                                  review_id + "'");
      }
      mention.aspect = corpus->catalog().Intern(aspect);
      std::string polarity = entry.GetString("polarity", "positive");
      if (polarity == "positive") mention.polarity = Polarity::kPositive;
      else if (polarity == "negative") mention.polarity = Polarity::kNegative;
      else if (polarity == "neutral") mention.polarity = Polarity::kNeutral;
      else {
        return Status::ParseError("unknown polarity '" + polarity +
                                  "' in review '" + review_id + "'");
      }
      mention.strength = entry.GetNumber("strength", 1.0);
      mentions.push_back(mention);
    }
    Product* product = corpus->MutableProduct(it->second.first);
    product->reviews[it->second.second].opinions = std::move(mentions);
  }
  return Status::OK();
}

Status ExportCorpusFiles(const Corpus& corpus, const std::string& prefix) {
  COMPARESETS_RETURN_NOT_OK(WriteStringToFile(prefix + ".reviews.jsonl",
                                              ExportReviewsJsonl(corpus)));
  COMPARESETS_RETURN_NOT_OK(WriteStringToFile(prefix + ".metadata.jsonl",
                                              ExportMetadataJsonl(corpus)));
  return WriteStringToFile(prefix + ".annotations.jsonl",
                           ExportAnnotationsJsonl(corpus));
}

}  // namespace comparesets
