// Corpus: a product category's products + aspect catalog, and the
// machinery to enumerate problem instances (one per target item, as in
// §4.1.1 — each target with its also-bought comparatives is an
// independent instance).

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "data/catalog.h"
#include "data/review.h"
#include "util/status.h"

namespace comparesets {

/// One CompaReSetS problem instance: items[0] is the target p1, the rest
/// are the comparative items p2..pn. Pointers reference Corpus storage
/// and remain valid for the corpus lifetime (products are never moved
/// after Finalize()).
struct ProblemInstance {
  std::vector<const Product*> items;

  const Product& target() const { return *items[0]; }
  size_t num_items() const { return items.size(); }
};

/// Controls which also-bought candidates form instances.
struct InstanceOptions {
  /// Items (target or comparative) with fewer reviews are skipped.
  size_t min_reviews_per_item = 2;
  /// Instances with fewer than this many comparative items are skipped.
  size_t min_comparative_items = 2;
  /// Cap on comparative items per instance (0 = no cap).
  size_t max_comparative_items = 0;
};

class Corpus {
 public:
  Corpus() = default;
  explicit Corpus(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  AspectCatalog& catalog() { return catalog_; }
  const AspectCatalog& catalog() const { return catalog_; }

  /// Number of aspects z.
  size_t num_aspects() const { return catalog_.size(); }

  /// Adds a product; ids must be unique. Invalidates prior pointers —
  /// call before Finalize() only.
  Status AddProduct(Product product);

  /// Freezes product storage (pointers stay valid afterwards) and builds
  /// the id index. Must be called before Find/BuildInstances.
  void Finalize();

  /// Whether Finalize() has been called (and AddProduct is thus closed).
  bool finalized() const { return finalized_; }

  const std::vector<Product>& products() const { return products_; }
  size_t num_products() const { return products_.size(); }

  /// Total reviews across all products.
  size_t num_reviews() const;

  /// Distinct reviewer ids across all reviews.
  size_t num_reviewers() const;

  /// Lookup by product id; nullptr when absent. Requires Finalize().
  const Product* Find(const std::string& product_id) const;

  /// Mutable access for in-place edits (e.g. attaching annotation
  /// sidecars). Never reallocates, so Find() pointers stay valid.
  Product* MutableProduct(size_t index);

  /// Builds one instance per eligible target product from the also-bought
  /// metadata. Requires Finalize().
  std::vector<ProblemInstance> BuildInstances(
      const InstanceOptions& options = {}) const;

 private:
  std::string name_;
  AspectCatalog catalog_;
  std::vector<Product> products_;
  std::unordered_map<std::string, size_t> index_;
  bool finalized_ = false;
};

}  // namespace comparesets
