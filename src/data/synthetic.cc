#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace comparesets {

const CategoryVocabulary& CellphoneVocabulary() {
  static const CategoryVocabulary* kVocab = new CategoryVocabulary{
      "Cellphone",
      {"charger", "battery", "cable", "screen", "case", "price", "shipping",
       "color", "fit", "button", "camera", "sound", "speaker", "plug",
       "port", "weight", "design", "grip", "signal", "adapter", "holder",
       "protector", "connector", "packaging"},
      {"I bought this {c} {t}.",
       "Arrived quickly and just as described.",
       "My {p} has been using it every day since it arrived.",
       "Got this as a present for my {p} and it gets used all the time.",
       "Ordered it {t} and delivery was on time.",
       "I keep it in the car in case I need it.",
       "This is exactly what I expected when I ordered it {t}.",
       "I have tried a few of these over the years.",
       "Will update this review if anything changes.",
       "Seems like the original product, not a copy.",
       "My old one finally gave out {t} so I needed a replacement.",
       "I did a fair amount of research before picking this one {c}.",
       "My {p} has the same model and theirs works too.",
       "I travel a lot for work so this gets heavy use.",
       "Customer service answered my question within a day.",
       "The listing photos match what showed up at my door.",
       "I picked it up {t} {c}.",
       "It pairs nicely with the rest of my setup.",
       "My {p} recommended this brand to me {t}.",
       "I'll probably grab a second one {c}."},
  };
  return *kVocab;
}

const CategoryVocabulary& ToyVocabulary() {
  static const CategoryVocabulary* kVocab = new CategoryVocabulary{
      "Toy",
      {"puzzle", "pieces", "box", "instructions", "kids", "price", "colors",
       "size", "material", "assembly", "paint", "battery", "sound", "lights",
       "wheels", "figures", "cards", "board", "dice", "stickers", "blocks",
       "picture", "edges", "bag"},
      {"We bought this for our {p} {t}.",
       "My {p} and I spend a lot of time playing with it.",
       "This kept the whole family busy {t}.",
       "We are always up for a challenge in this house.",
       "Bought it {c} and it was a big hit.",
       "The grandkids ask for it every time they visit.",
       "We put it together {t} over three evenings.",
       "This was recommended by my {p} {t}.",
       "It has survived several play dates already.",
       "We will definitely be buying another one {c}.",
       "Our {p} opened it before we could wrap it.",
       "Rainy Saturdays are a lot easier with this around.",
       "My {p} is obsessed with anything from this brand.",
       "It stores away neatly on the shelf when we are done.",
       "The whole class played with it at the party {t}.",
       "My {p} ordered one for their house as well.",
       "We have a drawer full of toys and this is the favorite.",
       "Even the teenagers joined in after dinner {t}.",
       "It took about an hour before the kids got the hang of it.",
       "We first tried one at my {p}'s place {t}."},
  };
  return *kVocab;
}

const CategoryVocabulary& ClothingVocabulary() {
  static const CategoryVocabulary* kVocab = new CategoryVocabulary{
      "Clothing",
      {"size", "fit", "color", "fabric", "material", "comfort", "price",
       "sole", "heel", "strap", "waist", "length", "stitching", "zipper",
       "pockets", "design", "arch", "width", "lining", "buttons", "collar",
       "sleeves", "elastic", "laces"},
      {"I ordered my usual size {t}.",
       "I wear these to work almost every day now.",
       "Got lots of compliments from my {p} the first time I wore them.",
       "I was looking for something {c}.",
       "I have a few pieces from this brand already.",
       "They look much better in person than in the photos.",
       "I wore them all day walking around town {t}.",
       "Shipping was fast and the packaging was fine.",
       "I washed them twice already and they held up.",
       "I would order from this seller again {c}.",
       "I needed something {c} {t}.",
       "My {p} borrowed them and didn't want to give them back.",
       "These replaced a pair I had worn out completely.",
       "I'm between sizes so I read a lot of reviews first.",
       "They go with basically everything in my closet.",
       "I took them on vacation {t} and lived in them for a week.",
       "The package arrived two days earlier than promised.",
       "My {p} is picky about clothes but these won them over.",
       "After a month of regular wear they still look new.",
       "I bought one in another color {t}."},
  };
  return *kVocab;
}

Result<const CategoryVocabulary*> VocabularyByName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "cellphone") return &CellphoneVocabulary();
  if (lower == "toy") return &ToyVocabulary();
  if (lower == "clothing") return &ClothingVocabulary();
  return Status::NotFound("unknown category: " + name +
                          " (expected Cellphone, Toy, or Clothing)");
}

Result<SyntheticConfig> DefaultConfig(const std::string& category,
                                      size_t num_products) {
  COMPARESETS_ASSIGN_OR_RETURN(const CategoryVocabulary* vocab,
                               VocabularyByName(category));
  SyntheticConfig config;
  config.category = vocab->name;
  config.num_products = num_products;
  if (vocab->name == "Cellphone") {
    config.avg_reviews_per_product = 18.64;
    config.avg_comparison_products = 25.57;
    config.seed = 42;
  } else if (vocab->name == "Toy") {
    config.avg_reviews_per_product = 14.06;
    config.avg_comparison_products = 34.33;
    config.cluster_size = 56;
    config.seed = 43;
  } else {
    config.avg_reviews_per_product = 12.10;
    config.avg_comparison_products = 12.03;
    config.cluster_size = 32;
    config.seed = 44;
  }
  return config;
}

namespace {

// Sentence scaffolding shared across categories; {a} is the aspect noun,
// adjectives come from the polarity word pools below. The pools overlap
// with nlp/sentiment_lexicon.cc so the annotator can recover the
// generated ground truth from the surface text.
// Mention sentences are generated from a small grammar (opener x verb x
// adjective x closer ~ 10^3 distinct realizations per polarity) rather
// than a fixed template list: long multi-aspect reviews would otherwise
// collide on whole sentence skeletons and inflate pairwise ROUGE with
// review length, drowning the aspect-alignment signal the paper measures.
const char* const kOpeners[] = {
    "Honestly",        "To be fair",      "For what it costs",
    "In daily use",    "Right off the bat", "After some testing",
    "I must admit",    "Credit where due", "No exaggeration",
    "Long story short", "From day one",    "Truth be told",
};

const char* const kBeWords[] = {
    "is", "has been", "turned out", "remains",
    "proved to be", "feels", "looks", "stayed",
};

const char* const kPosClosers[] = {
    "{d}",                         "so far",
    "without a single issue",      "which genuinely surprised me",
    "no question about it",        "through and through",
    "every single time",           "better than advertised",
    "beyond what I hoped",         "and then some",
    "exactly like it should",      "as promised",
};

const char* const kNegClosers[] = {
    "{d}",                         "almost immediately",
    "despite careful handling",    "which ruined it for me",
    "no matter what I tried",      "to my frustration",
    "worse than advertised",       "and support was no help",
    "after barely any use",        "for no reason at all",
    "just as others warned",       "sad to say",
};

// Follow-up clauses repeat the focal aspect noun, as real reviewers do;
// composed from head x tail pools so long reviews do not collide on
// whole follow-up skeletons.
const char* const kFollowUpHeads[] = {
    "I always pay attention to",   "My {p} immediately asked about",
    "I specifically compared",     "Most listings barely describe",
    "I spent a while inspecting",  "The deciding factor for me was",
    "People underestimate",        "I had doubts about",
    "You notice",                  "Everything hinges on",
};

const char* const kFollowUpTails[] = {
    "on products like this",       "before committing to anything",
    "when shopping {c}",           "and this one delivers",
    "{d}",                         "more than anything else",
    "whenever I order online",     "after a bad experience {t}",
    "so I looked closely",         "and I was not let down",
};

const char* const kNeutralTemplates[] = {
    "The {a} is okay, nothing special.",
    "The {a} is about what you would expect at this price.",
    "Not much to say about the {a} either way.",
    "The {a} is average compared to similar products.",
    "The {a} does its job, no more and no less.",
    "I barely notice the {a} one way or the other.",
};

const char* const kPositiveAdjectives[] = {
    "great", "excellent", "perfect", "amazing", "sturdy", "reliable",
    "fantastic", "solid", "impressive", "wonderful", "durable", "superb",
    "awesome", "brilliant", "premium", "smooth",
};

const char* const kNegativeAdjectives[] = {
    "terrible", "flimsy", "poor", "awful", "cheaply made", "disappointing",
    "defective", "useless", "unreliable", "horrible", "faulty", "weak",
    "frustrating", "annoying", "fragile", "misleading",
};

// Slot pools for compositional filler text. Real reviews carry a heavy
// tail of tokens unique to each reviewer; composing fillers from slots
// (~10^3 distinct realizations per skeleton) reproduces that tail, so
// pairwise ROUGE-F1 does not artificially grow with review length.
const char* const kPeople[] = {
    "wife",     "husband", "daughter", "son",      "friend",  "coworker",
    "neighbor", "brother", "sister",   "mom",      "dad",     "roommate",
    "cousin",   "uncle",   "niece",    "grandson",
};

const char* const kTimes[] = {
    "last week",        "last month",        "a few days ago",
    "over the weekend", "back in march",     "before christmas",
    "earlier this year", "two weeks ago",    "around easter",
    "on black friday",  "during the summer", "right before vacation",
    "on my birthday",   "after thanksgiving", "in early spring",
    "this past winter",
};

const char* const kContexts[] = {
    "for a camping trip",   "for the office",      "for daily errands",
    "for a long road trip", "as a backup",         "on a whim",
    "after much research",  "to replace a broken one",
    "for our new apartment", "for school",         "for the gym",
    "while traveling",      "for a birthday party", "for the holidays",
    "on a recommendation",  "after seeing an ad",
};

const char* const kDetails[] = {
    "in bright sunlight",      "even after repeated drops",
    "on the very first day",   "through a full month of abuse",
    "during my commute",       "in freezing weather",
    "with heavy daily use",    "right out of the packaging",
    "under real conditions",   "after the second wash",
    "on rough pavement",       "through two long trips",
    "at full volume",          "in the middle of a workout",
    "by the end of the week",  "with everything plugged in",
};

std::string FillTemplate(Rng* rng, const std::string& tmpl,
                         const std::string& aspect,
                         const std::string& adjective) {
  std::string out = tmpl;
  auto replace_all_slots = [&](const char* slot, const std::string& value) {
    size_t pos;
    while ((pos = out.find(slot)) != std::string::npos) {
      out.replace(pos, std::string(slot).size(), value);
    }
  };
  replace_all_slots("{a}", aspect);
  replace_all_slots("{adj}", adjective);
  replace_all_slots(
      "{p}", kPeople[rng->UniformU32(
                 static_cast<uint32_t>(std::size(kPeople)))]);
  replace_all_slots(
      "{t}", kTimes[rng->UniformU32(
                 static_cast<uint32_t>(std::size(kTimes)))]);
  replace_all_slots(
      "{c}", kContexts[rng->UniformU32(
                 static_cast<uint32_t>(std::size(kContexts)))]);
  replace_all_slots(
      "{d}", kDetails[rng->UniformU32(
                 static_cast<uint32_t>(std::size(kDetails)))]);
  return out;
}

template <size_t N>
const char* Pick(Rng* rng, const char* const (&pool)[N]) {
  return pool[rng->UniformU32(static_cast<uint32_t>(N))];
}

/// Generates one opinionated sentence about `aspect` from the grammar.
std::string MentionSentence(Rng* rng, const std::string& aspect,
                            bool positive, const std::string& adjective) {
  std::string out;
  // Half the sentences carry an opener clause.
  if (rng->Bernoulli(0.5)) {
    out += Pick(rng, kOpeners);
    out += ", ";
    out += "the ";
  } else {
    out += "The ";
  }
  out += aspect;
  out += " ";
  out += Pick(rng, kBeWords);
  out += " ";
  out += adjective;
  out += " ";
  out += positive ? Pick(rng, kPosClosers) : Pick(rng, kNegClosers);
  out += ".";
  return FillTemplate(rng, out, aspect, adjective);
}

std::string MakeFiller(Rng* rng, const CategoryVocabulary& vocab) {
  const std::string& skeleton =
      vocab.fillers[rng->UniformU32(
          static_cast<uint32_t>(vocab.fillers.size()))];
  return FillTemplate(rng, skeleton, "", "");
}

/// One cluster archetype: the core aspects all member products share.
struct Cluster {
  std::vector<size_t> core_aspects;
  std::vector<size_t> member_products;
};

/// A product's latent profile: its aspect list (cluster core followed by
/// product-specific extras), importance weights, and per-aspect quality.
struct ProductProfile {
  size_t cluster = 0;
  std::vector<size_t> aspects;     // Global aspect indices.
  std::vector<double> importance;  // Normalized; aligned with `aspects`.
  std::vector<double> quality;     // P(positive opinion); aligned.
};

}  // namespace

Result<Corpus> GenerateCorpus(const SyntheticConfig& config) {
  COMPARESETS_ASSIGN_OR_RETURN(const CategoryVocabulary* vocab,
                               VocabularyByName(config.category));
  if (config.num_products == 0) {
    return Status::InvalidArgument("num_products must be positive");
  }
  if (config.avg_reviews_per_product < 2.0) {
    return Status::InvalidArgument("avg_reviews_per_product must be >= 2");
  }
  if (config.max_reviews_per_product < 1) {
    return Status::InvalidArgument("max_reviews_per_product must be >= 1");
  }
  size_t z = vocab->aspects.size();
  if (config.core_aspects_per_cluster + config.extra_aspects_per_product > z) {
    return Status::InvalidArgument("aspect budget exceeds catalog size");
  }

  Rng rng(config.seed, 0x5eed);
  Corpus corpus(vocab->name);
  for (const std::string& aspect : vocab->aspects) {
    corpus.catalog().Intern(aspect);
  }

  // --- Clusters -------------------------------------------------------------
  size_t num_clusters =
      std::max<size_t>(1, (config.num_products + config.cluster_size - 1) /
                              config.cluster_size);
  std::vector<Cluster> clusters(num_clusters);
  for (Cluster& cluster : clusters) {
    cluster.core_aspects =
        rng.SampleWithoutReplacement(z, config.core_aspects_per_cluster);
    std::sort(cluster.core_aspects.begin(), cluster.core_aspects.end());
  }

  // --- Product profiles -------------------------------------------------------
  // Each product cares about the cluster core (high importance) plus its
  // own extras (lower importance). Extras of different products overlap
  // only by chance — the partial-overlap structure CompaReSetS exploits.
  std::vector<ProductProfile> profiles(config.num_products);
  for (size_t p = 0; p < config.num_products; ++p) {
    size_t c = rng.UniformU32(static_cast<uint32_t>(num_clusters));
    clusters[c].member_products.push_back(p);
    ProductProfile& profile = profiles[p];
    profile.cluster = c;
    const Cluster& cluster = clusters[c];

    std::vector<bool> used(z, false);
    for (size_t aspect : cluster.core_aspects) {
      profile.aspects.push_back(aspect);
      used[aspect] = true;
      // Core aspects dominate the discussion.
      profile.importance.push_back(1.0 + rng.UniformDouble());
    }
    size_t extras = config.extra_aspects_per_product;
    int guard = static_cast<int>(8 * extras) + 32;
    while (extras > 0 && guard-- > 0) {
      size_t aspect = rng.UniformU32(static_cast<uint32_t>(z));
      if (used[aspect]) continue;
      used[aspect] = true;
      profile.aspects.push_back(aspect);
      profile.importance.push_back(0.25 + 0.5 * rng.UniformDouble());
      --extras;
    }
    double total = 0.0;
    for (double w : profile.importance) total += w;
    for (double& w : profile.importance) w /= total;

    profile.quality.reserve(profile.aspects.size());
    for (size_t a = 0; a < profile.aspects.size(); ++a) {
      // Beta(2.4, 1.6)-ish: review corpora lean positive (mean rating ~4).
      double g1 = rng.Gamma(2.4);
      double g2 = rng.Gamma(1.6);
      profile.quality.push_back(
          std::clamp(g1 / (g1 + g2), 0.03, 0.97));
    }
  }

  // --- Also-bought links ------------------------------------------------------
  // Mostly intra-cluster, reproducing co-purchase neighborhoods. Ids are
  // deterministic functions of the index, so links resolve up front.
  auto product_id = [&](size_t p) {
    return StringPrintf("%s-P%05zu", ToLower(vocab->name).c_str(), p);
  };
  std::vector<std::vector<size_t>> links(config.num_products);
  for (size_t p = 0; p < config.num_products; ++p) {
    const Cluster& cluster = clusters[profiles[p].cluster];
    int want = std::max(2, rng.Poisson(config.avg_comparison_products));
    std::vector<bool> taken(config.num_products, false);
    taken[p] = true;
    int guard = want * 8 + 64;
    while (static_cast<int>(links[p].size()) < want && guard-- > 0) {
      size_t candidate;
      if (rng.Bernoulli(config.intra_cluster_link_prob) &&
          cluster.member_products.size() > 1) {
        candidate = cluster.member_products[rng.UniformU32(
            static_cast<uint32_t>(cluster.member_products.size()))];
      } else {
        candidate =
            rng.UniformU32(static_cast<uint32_t>(config.num_products));
      }
      if (taken[candidate]) continue;
      taken[candidate] = true;
      links[p].push_back(candidate);
    }
  }

  // --- Reviews ----------------------------------------------------------------
  // Heavy-tailed review counts: 2 + Geometric(mean avg-2), capped.
  double geo_mean = config.avg_reviews_per_product - 2.0;
  double geo_p = 1.0 / (geo_mean + 1.0);
  size_t reviewer_pool =
      static_cast<size_t>(config.num_products *
                          config.avg_reviews_per_product * 0.15) +
      16;

  for (size_t p = 0; p < config.num_products; ++p) {
    const ProductProfile& profile = profiles[p];
    Product product;
    product.id = product_id(p);
    for (size_t linked : links[p]) {
      product.also_bought.push_back(product_id(linked));
    }
    product.title =
        StringPrintf("%s product %zu with premium %s", vocab->name.c_str(),
                     p, vocab->aspects[profile.aspects[0]].c_str());

    int review_count =
        2 + std::min(rng.Geometric(geo_p), config.max_reviews_per_product);
    product.reviews.reserve(static_cast<size_t>(review_count));
    for (int r = 0; r < review_count; ++r) {
      Review review;
      review.id = StringPrintf("%s-R%03d", product.id.c_str(), r);
      review.reviewer_id = StringPrintf(
          "U%06u", rng.UniformU32(static_cast<uint32_t>(reviewer_pool)));

      // Aspects mentioned: weighted sample (w/o replacement) from the
      // product profile.
      size_t mention_count =
          1 + std::min<size_t>(static_cast<size_t>(rng.Poisson(1.6)), 4);
      mention_count = std::min(mention_count, profile.aspects.size());
      std::vector<size_t> mentioned;
      {
        std::vector<double> weights = profile.importance;
        for (size_t t = 0; t < mention_count; ++t) {
          size_t pick = rng.Categorical(weights);
          mentioned.push_back(pick);
          weights[pick] = 0.0;
        }
      }

      std::vector<std::string> sentences;
      if (rng.Bernoulli(0.7)) {
        sentences.push_back(MakeFiller(&rng, *vocab));
      }

      int positive_mentions = 0;
      for (size_t idx : mentioned) {
        size_t aspect_global = profile.aspects[idx];
        const std::string& aspect_word = vocab->aspects[aspect_global];
        OpinionMention mention;
        mention.aspect = static_cast<AspectId>(aspect_global);
        mention.strength = 0.5 + 1.5 * rng.UniformDouble();

        if (rng.Bernoulli(0.08)) {
          mention.polarity = Polarity::kNeutral;
          sentences.push_back(
              FillTemplate(&rng, Pick(&rng, kNeutralTemplates), aspect_word, ""));
        } else if (rng.Bernoulli(profile.quality[idx])) {
          mention.polarity = Polarity::kPositive;
          ++positive_mentions;
          sentences.push_back(MentionSentence(
              &rng, aspect_word, true, Pick(&rng, kPositiveAdjectives)));
        } else {
          mention.polarity = Polarity::kNegative;
          sentences.push_back(MentionSentence(
              &rng, aspect_word, false, Pick(&rng, kNegativeAdjectives)));
        }
        if (rng.Bernoulli(0.6)) {
          std::string follow_up = Pick(&rng, kFollowUpHeads);
          follow_up += " the ";
          follow_up += aspect_word;
          follow_up += " ";
          follow_up += Pick(&rng, kFollowUpTails);
          follow_up += ".";
          sentences.push_back(FillTemplate(&rng, follow_up, aspect_word, ""));
        }
        review.opinions.push_back(mention);
      }

      if (rng.Bernoulli(0.5)) {
        sentences.push_back(MakeFiller(&rng, *vocab));
      }

      review.text = Join(sentences, " ");
      double positive_fraction =
          review.opinions.empty()
              ? 0.6
              : static_cast<double>(positive_mentions) /
                    static_cast<double>(review.opinions.size());
      review.rating = std::clamp(
          std::round(1.0 + 4.0 * positive_fraction + rng.Normal(0.0, 0.35)),
          1.0, 5.0);
      product.reviews.push_back(std::move(review));
    }
    COMPARESETS_RETURN_NOT_OK(corpus.AddProduct(std::move(product)));
  }
  corpus.Finalize();
  return corpus;
}

}  // namespace comparesets
