#include "data/loader.h"

#include <map>
#include <vector>

#include "nlp/annotator.h"
#include "util/csv.h"
#include "util/jsonl.h"

namespace comparesets {

Result<Corpus> LoadAmazonCorpus(const std::string& name,
                                const std::string& reviews_jsonl,
                                const std::string& metadata_jsonl,
                                const LoaderOptions& options) {
  COMPARESETS_ASSIGN_OR_RETURN(std::vector<JsonValue> review_rows,
                               ParseJsonLines(reviews_jsonl));
  COMPARESETS_ASSIGN_OR_RETURN(std::vector<JsonValue> meta_rows,
                               ParseJsonLines(metadata_jsonl));

  // Group raw reviews by product id, preserving input order.
  struct RawReview {
    std::string id;  // Optional "reviewID" field (kept when present).
    std::string reviewer;
    std::string text;
    double rating;
  };
  std::map<std::string, std::vector<RawReview>> by_product;
  std::vector<RatedText> all_rated;
  for (const JsonValue& row : review_rows) {
    std::string asin = row.GetString("asin");
    if (asin.empty()) {
      return Status::ParseError("review row missing 'asin'");
    }
    RawReview raw;
    raw.id = row.GetString("reviewID");
    raw.reviewer = row.GetString("reviewerID");
    raw.text = row.GetString("reviewText");
    raw.rating = row.GetNumber("overall", 3.0);
    all_rated.push_back({raw.text, raw.rating});
    by_product[asin].push_back(std::move(raw));
  }
  if (by_product.empty()) {
    return Status::InvalidArgument("no reviews in input");
  }

  // Metadata: titles and also-bought lists.
  std::map<std::string, std::pair<std::string, std::vector<std::string>>> meta;
  for (const JsonValue& row : meta_rows) {
    std::string asin = row.GetString("asin");
    if (asin.empty()) continue;
    std::vector<std::string> also_bought;
    if (const JsonValue* related = row.Find("related")) {
      if (const JsonValue* ab = related->Find("also_bought")) {
        if (ab->is_array()) {
          for (const JsonValue& entry : ab->as_array()) {
            if (entry.is_string()) also_bought.push_back(entry.as_string());
          }
        }
      }
    }
    meta[asin] = {row.GetString("title"), std::move(also_bought)};
  }

  // Mine the aspect lexicon from the whole corpus, then annotate.
  COMPARESETS_ASSIGN_OR_RETURN(
      AspectLexicon lexicon,
      MineAspectLexicon(all_rated, SentimentLexicon::Default(),
                        options.mining));

  Corpus corpus(name);
  ReviewAnnotator annotator(&lexicon, &SentimentLexicon::Default(),
                            &corpus.catalog());

  for (auto& [asin, raws] : by_product) {
    if (raws.size() < options.min_reviews_per_product) continue;
    Product product;
    product.id = asin;
    auto meta_it = meta.find(asin);
    if (meta_it != meta.end()) {
      product.title = meta_it->second.first;
      product.also_bought = meta_it->second.second;
    }
    size_t counter = 0;
    for (RawReview& raw : raws) {
      Review review;
      review.id = raw.id.empty() ? asin + "-R" + std::to_string(counter)
                                 : std::move(raw.id);
      ++counter;
      review.reviewer_id = std::move(raw.reviewer);
      review.rating = raw.rating;
      review.opinions = annotator.Annotate(raw.text);
      review.text = std::move(raw.text);
      product.reviews.push_back(std::move(review));
    }
    COMPARESETS_RETURN_NOT_OK(corpus.AddProduct(std::move(product)));
  }
  corpus.Finalize();
  return corpus;
}

Result<Corpus> LoadAmazonCorpusFromFiles(const std::string& name,
                                         const std::string& reviews_path,
                                         const std::string& metadata_path,
                                         const LoaderOptions& options) {
  COMPARESETS_ASSIGN_OR_RETURN(std::string reviews,
                               ReadFileToString(reviews_path));
  COMPARESETS_ASSIGN_OR_RETURN(std::string metadata,
                               ReadFileToString(metadata_path));
  return LoadAmazonCorpus(name, reviews, metadata, options);
}

}  // namespace comparesets
