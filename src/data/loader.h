// Loaders for external datasets in the Amazon Product Review layout the
// paper uses (§4.1.1):
//   * reviews:  JSON lines with {"asin", "reviewerID", "reviewText",
//               "overall"} fields;
//   * metadata: JSON lines with {"asin", "title", "related":
//               {"also_bought": [...]}} fields.
// Raw text is annotated on the fly with the frequency-based pipeline in
// src/nlp/ (mined aspect lexicon + default sentiment lexicon), matching
// the paper's "annotations as given" setup.

#pragma once

#include <string>

#include "data/corpus.h"
#include "nlp/aspect_extractor.h"
#include "util/status.h"

namespace comparesets {

struct LoaderOptions {
  /// Aspect-mining knobs (defaults follow the paper: top-2000 frequent
  /// terms re-ranked by rating correlation, keep 500).
  AspectMiningOptions mining;
  /// Products with fewer reviews than this are dropped entirely.
  size_t min_reviews_per_product = 2;
};

/// Loads a corpus from review + metadata JSONL documents (contents, not
/// paths — callers use util/csv.h ReadFileToString for files).
Result<Corpus> LoadAmazonCorpus(const std::string& name,
                                const std::string& reviews_jsonl,
                                const std::string& metadata_jsonl,
                                const LoaderOptions& options = {});

/// Loads from files on disk.
Result<Corpus> LoadAmazonCorpusFromFiles(const std::string& name,
                                         const std::string& reviews_path,
                                         const std::string& metadata_path,
                                         const LoaderOptions& options = {});

}  // namespace comparesets
