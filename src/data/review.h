// Core data model: aspects, opinions, reviews, products.
//
// A review carries raw text (scored by ROUGE) plus a list of
// (aspect, polarity, strength) opinion mentions. Following the paper
// (§4.1.1), annotations are normally "given" — produced by the synthetic
// generator or by the frequency-based extractor in src/nlp/.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace comparesets {

/// Index into the corpus-wide aspect catalog (0..z-1).
using AspectId = int32_t;

/// Sentiment polarity of one opinion mention. kNeutral participates only
/// in the 3-polarity opinion model; the default binary model treats
/// neutral mentions as aspect-only occurrences.
enum class Polarity : uint8_t { kPositive, kNegative, kNeutral };

const char* PolarityName(Polarity polarity);

/// One aspect-opinion mention inside a review, e.g. (battery, +, 1.5).
struct OpinionMention {
  AspectId aspect = -1;
  Polarity polarity = Polarity::kPositive;
  /// Signed-magnitude sentiment strength (>= 0); used by the unary-scale
  /// opinion model where aggregated sentiment is squashed by a sigmoid.
  double strength = 1.0;

  bool operator==(const OpinionMention& other) const {
    return aspect == other.aspect && polarity == other.polarity &&
           strength == other.strength;
  }
};

/// One product review.
struct Review {
  std::string id;
  std::string reviewer_id;
  std::string text;
  double rating = 0.0;  ///< Star rating in [1, 5]; 0 when unknown.
  std::vector<OpinionMention> opinions;

  /// Distinct aspects mentioned (each aspect reported once, regardless of
  /// how many opinions hit it). Sorted ascending.
  std::vector<AspectId> MentionedAspects() const;
};

/// One product with its full review set and comparative candidates.
struct Product {
  std::string id;
  std::string title;
  std::vector<Review> reviews;
  /// Product ids from "also bought" metadata — the comparative candidates.
  std::vector<std::string> also_bought;
};

}  // namespace comparesets
