// Append-only review log (WAL) — the durable front door of streaming
// ingestion. Producers append one record per arriving review; the
// ingestion driver tails the log and folds batches of records into
// per-shard delta snapshots (service/ingest/delta.h).
//
// Record framing (all integers little-endian, reusing the
// net/wire_format codecs):
//
//   offset 0  u32  payload byte length (<= kMaxWalRecordBytes)
//   offset 4  u32  CRC-32 (IEEE) of the payload bytes
//   offset 8  ...  payload (WalRecord, encoded by EncodeWalRecord)
//
// Payload layout (WireWriter encoding rules):
//   u16     record-format version (kWalRecordVersion)
//   string  product_id            — which product the review lands on
//   string  review id
//   string  reviewer id
//   string  review text
//   double  star rating
//   u32     opinion count, then per opinion:
//     string  aspect NAME (interned into the corpus catalog at apply
//             time — records are self-describing, not tied to one
//             catalog's id assignment)
//     u8      polarity (Polarity enum value, validated on decode)
//     double  strength
//
// Durability: WalWriter buffers appends in the kernel and fsyncs every
// `fsync_every` records (and on Sync()/Close()), so the cost of
// durability is amortized across a batch — the classic group-commit
// trade: a crash may lose at most the records since the last fsync,
// never corrupt the committed prefix.
//
// Crash recovery: replay reads records until the first frame that does
// not fully parse — short header, payload running past EOF, CRC
// mismatch, oversized length, or a payload the decoder rejects — and
// returns everything before it. That prefix is exactly the committed
// log: tests/service_ingest_wal_test.cc cuts and corrupts logs at
// random boundaries and mid-record to pin this contract.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/catalog.h"
#include "data/review.h"
#include "util/status.h"

namespace comparesets {

/// Format version written into every record payload. Bumped on any
/// layout change; replay refuses versions it does not speak (which
/// truncates the log at the first foreign record, never misparses it).
inline constexpr uint16_t kWalRecordVersion = 1;

/// Fixed byte size of the per-record frame header (length + CRC).
inline constexpr size_t kWalFrameHeaderBytes = 8;

/// Hard cap on one record's payload. Far above any real review, far
/// below anything a corrupted length prefix could use to exhaust
/// memory during replay.
inline constexpr uint32_t kMaxWalRecordBytes = 16u * 1024u * 1024u;

/// One opinion mention with its aspect spelled by name, so a record
/// can be applied to any corpus regardless of catalog id assignment.
struct WalOpinion {
  std::string aspect;
  Polarity polarity = Polarity::kPositive;
  double strength = 1.0;

  bool operator==(const WalOpinion& other) const {
    return aspect == other.aspect && polarity == other.polarity &&
           strength == other.strength;
  }
};

/// One appended review: the product it lands on plus the review body.
struct WalRecord {
  std::string product_id;
  std::string review_id;
  std::string reviewer_id;
  std::string text;
  double rating = 0.0;
  std::vector<WalOpinion> opinions;

  bool operator==(const WalRecord& other) const {
    return product_id == other.product_id && review_id == other.review_id &&
           reviewer_id == other.reviewer_id && text == other.text &&
           rating == other.rating && opinions == other.opinions;
  }
};

/// Builds a WalRecord from an annotated Review, spelling aspect ids out
/// as names via `catalog`.
WalRecord MakeWalRecord(const std::string& product_id, const Review& review,
                        const AspectCatalog& catalog);

/// Converts a record back into a Review, interning aspect names into
/// `catalog` (insertion order = record order, so replaying the same
/// stream always grows the catalog identically).
Review WalRecordToReview(const WalRecord& record, AspectCatalog* catalog);

/// Encodes one record payload (no frame header).
std::string EncodeWalRecord(const WalRecord& record);

/// Decodes one record payload. Typed failures: kParseError for
/// truncated/garbage bytes or trailing garbage, kInvalidArgument for a
/// version mismatch or an out-of-range polarity.
Result<WalRecord> DecodeWalRecord(std::string_view payload);

/// Appends `record` as a framed record (header + payload) to `out`.
void AppendWalFrame(const WalRecord& record, std::string* out);

/// Append-only log writer over a POSIX fd, fsync-batched.
struct WalWriterOptions {
  /// fsync after this many appended records (0 = only on Sync/Close).
  size_t fsync_every = 32;
};

class WalWriter {
 public:
  /// Opens `path` for appending (created if absent).
  static Result<WalWriter> Open(const std::string& path,
                                WalWriterOptions options = {});

  WalWriter() = default;
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one framed record; fsyncs when the batch quota is reached.
  Status Append(const WalRecord& record);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Sync + close. Idempotent; the destructor calls it (ignoring the
  /// status) if the caller did not.
  Status Close();

  /// Records appended through this writer.
  uint64_t records_appended() const { return records_appended_; }

 private:
  WalWriterOptions options_;
  int fd_ = -1;
  uint64_t records_appended_ = 0;
  size_t unsynced_records_ = 0;
};

/// Outcome of replaying a log (or a suffix of one, for tailing).
struct WalReplayResult {
  /// The committed prefix, in append order.
  std::vector<WalRecord> records;
  /// Bytes consumed by complete, valid records. Tailing readers resume
  /// from here; recovery truncates here.
  uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes that did not form a complete valid record —
  /// a torn tail after a crash, or a write still in flight when read.
  uint64_t dropped_bytes = 0;
};

/// Replays `path` from byte `offset`, returning the longest committed
/// prefix found there (see the recovery contract above). A missing file
/// is kNotFound; a present-but-empty suffix replays to zero records.
Result<WalReplayResult> ReplayWal(const std::string& path,
                                  uint64_t offset = 0);

}  // namespace comparesets
