#include "service/ingest/driver.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace comparesets {

Result<std::unique_ptr<IngestDriver>> IngestDriver::Create(
    Corpus base, ShardRouter* router, IngestDriverOptions options,
    DeltaCorpusBuilder::Options builder_options) {
  if (router == nullptr) {
    return Status::InvalidArgument("IngestDriver requires a router");
  }
  if (options.wal_path.empty()) {
    return Status::InvalidArgument("IngestDriver requires a wal_path");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("ingest batch_size must be >= 1");
  }
  std::unique_ptr<IngestDriver> driver(new IngestDriver());
  driver->options_ = std::move(options);
  driver->router_ = router;
  COMPARESETS_ASSIGN_OR_RETURN(
      driver->builder_,
      DeltaCorpusBuilder::Create(std::move(base), router->bounds(),
                                 builder_options));
  return driver;
}

IngestDriver::~IngestDriver() { Stop(); }

Result<IngestDrainStats> IngestDriver::DrainOnce() {
  IngestDrainStats stats;
  uint64_t offset = offset_.load(std::memory_order_relaxed);
  Result<WalReplayResult> replayed = ReplayWal(options_.wal_path, offset);
  if (!replayed.ok()) {
    // No log yet: the producer has not started. Zero work, not an
    // error — the next drain will find it.
    if (replayed.status().code() == StatusCode::kNotFound) return stats;
    return replayed.status();
  }
  const WalReplayResult& tail = replayed.value();
  if (!tail.records.empty()) {
    for (size_t begin = 0; begin < tail.records.size();
         begin += options_.batch_size) {
      size_t end =
          std::min(begin + options_.batch_size, tail.records.size());
      std::vector<WalRecord> batch(tail.records.begin() + begin,
                                   tail.records.begin() + end);
      COMPARESETS_ASSIGN_OR_RETURN(CorpusDelta delta,
                                   builder_->ApplyBatch(batch));
      stats.records_applied += delta.records_applied;
      stats.records_dropped += delta.records_dropped;
      ++stats.batches;
      for (ShardDelta& shard : delta.shards) {
        COMPARESETS_RETURN_NOT_OK(router_->ApplyShardDelta(
            shard.shard_id, std::move(shard.snapshot), shard.reviews_added));
        ++stats.shards_touched;
      }
    }
  }
  // Advance past exactly the committed bytes: a torn/in-flight tail
  // (tail.dropped_bytes) is NOT consumed and will be re-read — by then
  // either completed by the producer or still torn.
  stats.bytes_consumed = tail.valid_bytes - offset;
  offset_.store(tail.valid_bytes, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(stats_mutex_);
  totals_.records_applied += stats.records_applied;
  totals_.records_dropped += stats.records_dropped;
  totals_.batches += stats.batches;
  totals_.shards_touched += stats.shards_touched;
  totals_.bytes_consumed += stats.bytes_consumed;
  return stats;
}

IngestDrainStats IngestDriver::TotalStats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return totals_;
}

void IngestDriver::Start() {
  std::lock_guard<std::mutex> lock(poll_mutex_);
  if (poller_.joinable()) return;
  stop_requested_ = false;
  poller_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(poll_mutex_);
    while (!stop_requested_) {
      lock.unlock();
      // Drain failures are deliberately swallowed here: a transient
      // error (e.g. an injected apply fault) leaves the offset where it
      // was, so the next tick retries the same records.
      (void)DrainOnce();
      lock.lock();
      poll_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.interval_ms),
                        [this] { return stop_requested_; });
    }
  });
}

void IngestDriver::Stop() {
  {
    std::lock_guard<std::mutex> lock(poll_mutex_);
    if (!poller_.joinable()) return;
    stop_requested_ = true;
  }
  poll_cv_.notify_all();
  poller_.join();
}

}  // namespace comparesets
