// Incremental corpus builder: folds batches of WAL review records into
// per-shard delta snapshots, so a live review stream updates only the
// shards it touches while every other shard keeps its snapshot, epoch,
// vector cache, and result memo.
//
// The builder owns the MASTER corpus — the full catalog with every
// applied review — plus the machinery that keeps its instance
// enumeration incrementally correct:
//
//   * Enumeration is maintained per target: Corpus::BuildInstances
//     visits products in insertion order and emits one instance per
//     eligible target, so the builder stores one (possibly empty)
//     item-id list per product and re-derives ONLY the targets a batch
//     can affect. A record for product P affects target T iff P == T or
//     P appears in T's also-bought list — a reverse index built once at
//     construction makes that lookup O(1). The concatenation of
//     non-empty per-target lists is, by construction, exactly what
//     BuildInstances would enumerate from scratch.
//   * Shard snapshots are built by CorpusPartitioner::
//     ExtractShardFromParts — the same code path a full re-extraction
//     takes — under the partition bounds fixed at creation. A shard is
//     re-built (and only then) when its instance slice changed or a
//     product in its closure gained reviews; untouched shards are
//     absent from the returned delta entirely, which is what keeps
//     their engines' epochs still and their caches warm.
//
// The correctness contract is the delta-vs-rebuild oracle
// (tests/service_ingest_delta_test.cc): after ANY sequence of applied
// batches, every shard snapshot — corpus contents, enumeration, spec —
// and every selection payload served from it is bit-identical to a full
// rebuild from the base corpus plus the same record stream. Epochs
// differ (rebuild swaps every shard, delta only the touched ones);
// nothing else may.
//
// Scope: records reference EXISTING products (reviews arrive for items
// already in the catalog). A record naming an unknown product is
// counted as dropped, never applied — new-product ingestion would move
// the partition bounds and is a separate problem (ROADMAP).
//
// Thread-safety: none. One writer owns a builder (the IngestDriver
// serializes batches); readers only ever see the immutable snapshots
// it hands out.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/corpus.h"
#include "service/indexed_corpus.h"
#include "service/ingest/wal.h"
#include "util/status.h"

namespace comparesets {

/// One touched shard's replacement snapshot.
struct ShardDelta {
  size_t shard_id = 0;
  /// The shard's new immutable snapshot, ready to swap in.
  std::shared_ptr<const IndexedCorpus> snapshot;
  /// Batch records that landed inside this shard's product closure —
  /// the per-shard ingest counter stamped into engine metrics.
  size_t reviews_added = 0;
};

/// Outcome of folding one batch of WAL records into the corpus.
struct CorpusDelta {
  /// 1-based batch number, monotonically increasing per builder.
  uint64_t sequence = 0;
  /// Records applied to the master corpus.
  size_t records_applied = 0;
  /// Records naming a product absent from the catalog.
  size_t records_dropped = 0;
  /// Replacement snapshots for the touched shards ONLY, in shard order.
  std::vector<ShardDelta> shards;
};

/// Applies one WAL record to `corpus` in place: interns aspect names
/// and appends the review to its product. kNotFound for an unknown
/// product id. This is THE apply operation — builder, tests, and the
/// rebuild side of the oracle all fold records through it, so "the same
/// review stream" means the same corpus mutation everywhere.
Status ApplyWalRecordToCorpus(const WalRecord& record, Corpus* corpus);

class DeltaCorpusBuilder {
 public:
  struct Options {
    /// Eligibility filters for instance enumeration; must match what
    /// the serving snapshots were built with.
    InstanceOptions instances;
  };

  /// Takes the base catalog (finalized if needed) and the partition
  /// lower bounds the serving router was created with (bounds[0] must
  /// be ""; a ShardRouter exposes them as bounds(); an unsharded engine
  /// is bounds == {""}). Fails when the base corpus yields no
  /// instances or the bounds are malformed.
  static Result<std::unique_ptr<DeltaCorpusBuilder>> Create(
      Corpus base, std::vector<std::string> bounds, Options options = {});

  /// Folds `records` into the master corpus and returns the touched
  /// shards' replacement snapshots. A batch may touch zero shards (all
  /// records dropped, or applied to products outside every closure).
  Result<CorpusDelta> ApplyBatch(const std::vector<WalRecord>& records);

  /// The master corpus: base plus every applied record.
  const Corpus& corpus() const { return master_; }

  /// Full enumeration of the master corpus as item-id lists, in
  /// BuildInstances order (what a from-scratch enumeration would emit).
  std::vector<std::vector<std::string>> InstanceItemIds() const;

  size_t num_shards() const { return bounds_.size(); }
  const std::vector<std::string>& bounds() const { return bounds_; }
  uint64_t batches_applied() const { return sequence_; }

 private:
  DeltaCorpusBuilder() = default;

  /// Recomputes product `target`'s instance item-id list, mirroring
  /// Corpus::BuildInstances for that one target (empty = ineligible).
  std::vector<std::string> ComputeTargetItems(size_t target) const;

  /// The in-range slice of the current enumeration for shard `s`.
  std::vector<std::vector<std::string>> ShardSlice(size_t s) const;

  Options options_;
  Corpus master_;
  std::vector<std::string> bounds_;
  uint64_t sequence_ = 0;

  /// Instance item-id list per product index; empty = no instance.
  std::vector<std::vector<std::string>> per_target_items_;
  /// product id -> product indices whose instance depends on it (the
  /// product itself plus every target listing it as also-bought).
  std::unordered_map<std::string, std::vector<size_t>> dependents_;
  /// Per shard: the instance slice and product closure of the snapshot
  /// the serving side currently holds (what "touched" is judged
  /// against). For a single-shard builder the closure is implicitly the
  /// whole catalog — the unsharded snapshot carries every product.
  std::vector<std::vector<std::vector<std::string>>> shard_slices_;
  std::vector<std::unordered_set<std::string>> shard_closures_;
};

}  // namespace comparesets
