#include "service/ingest/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/wire_format.h"
#include "util/crc32.h"

namespace comparesets {

namespace {

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::Internal(std::string(what) + " '" + path +
                          "': " + std::strerror(errno));
}

}  // namespace

WalRecord MakeWalRecord(const std::string& product_id, const Review& review,
                        const AspectCatalog& catalog) {
  WalRecord record;
  record.product_id = product_id;
  record.review_id = review.id;
  record.reviewer_id = review.reviewer_id;
  record.text = review.text;
  record.rating = review.rating;
  record.opinions.reserve(review.opinions.size());
  for (const OpinionMention& opinion : review.opinions) {
    WalOpinion wal_opinion;
    wal_opinion.aspect = catalog.Name(opinion.aspect);
    wal_opinion.polarity = opinion.polarity;
    wal_opinion.strength = opinion.strength;
    record.opinions.push_back(std::move(wal_opinion));
  }
  return record;
}

Review WalRecordToReview(const WalRecord& record, AspectCatalog* catalog) {
  Review review;
  review.id = record.review_id;
  review.reviewer_id = record.reviewer_id;
  review.text = record.text;
  review.rating = record.rating;
  review.opinions.reserve(record.opinions.size());
  for (const WalOpinion& opinion : record.opinions) {
    OpinionMention mention;
    mention.aspect = catalog->Intern(opinion.aspect);
    mention.polarity = opinion.polarity;
    mention.strength = opinion.strength;
    review.opinions.push_back(mention);
  }
  return review;
}

std::string EncodeWalRecord(const WalRecord& record) {
  WireWriter writer;
  writer.WriteU16(kWalRecordVersion);
  writer.WriteString(record.product_id);
  writer.WriteString(record.review_id);
  writer.WriteString(record.reviewer_id);
  writer.WriteString(record.text);
  writer.WriteDouble(record.rating);
  writer.WriteU32(static_cast<uint32_t>(record.opinions.size()));
  for (const WalOpinion& opinion : record.opinions) {
    writer.WriteString(opinion.aspect);
    writer.WriteU8(static_cast<uint8_t>(opinion.polarity));
    writer.WriteDouble(opinion.strength);
  }
  return writer.Take();
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  WireReader reader(payload);
  COMPARESETS_ASSIGN_OR_RETURN(uint16_t version, reader.ReadU16());
  if (version != kWalRecordVersion) {
    return Status::InvalidArgument(
        "WAL record speaks format v" + std::to_string(version) +
        "; this build speaks v" + std::to_string(kWalRecordVersion));
  }
  WalRecord record;
  COMPARESETS_ASSIGN_OR_RETURN(record.product_id, reader.ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(record.review_id, reader.ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(record.reviewer_id, reader.ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(record.text, reader.ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(record.rating, reader.ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t num_opinions, reader.ReadU32());
  if (num_opinions > payload.size()) {
    // Each opinion costs at least one payload byte, so a count beyond
    // the payload size is garbage — refuse before reserving for it.
    return Status::ParseError("WAL opinion count exceeds payload size");
  }
  record.opinions.reserve(num_opinions);
  for (uint32_t i = 0; i < num_opinions; ++i) {
    WalOpinion opinion;
    COMPARESETS_ASSIGN_OR_RETURN(opinion.aspect, reader.ReadString());
    COMPARESETS_ASSIGN_OR_RETURN(uint8_t polarity, reader.ReadU8());
    if (polarity > static_cast<uint8_t>(Polarity::kNeutral)) {
      return Status::InvalidArgument("WAL opinion has polarity " +
                                     std::to_string(polarity));
    }
    opinion.polarity = static_cast<Polarity>(polarity);
    COMPARESETS_ASSIGN_OR_RETURN(opinion.strength, reader.ReadDouble());
    record.opinions.push_back(std::move(opinion));
  }
  COMPARESETS_RETURN_NOT_OK(reader.ExpectFullyConsumed("WAL record"));
  return record;
}

void AppendWalFrame(const WalRecord& record, std::string* out) {
  std::string payload = EncodeWalRecord(record);
  WireWriter header;
  header.WriteU32(static_cast<uint32_t>(payload.size()));
  header.WriteU32(Crc32(payload));
  out->append(header.bytes());
  out->append(payload);
}

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  WalWriterOptions options) {
  WalWriter writer;
  writer.options_ = options;
  writer.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (writer.fd_ < 0) return ErrnoStatus("cannot open WAL", path);
  return writer;
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : options_(other.options_),
      fd_(std::exchange(other.fd_, -1)),
      records_appended_(other.records_appended_),
      unsynced_records_(other.unsynced_records_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    options_ = other.options_;
    fd_ = std::exchange(other.fd_, -1);
    records_appended_ = other.records_appended_;
    unsynced_records_ = other.unsynced_records_;
  }
  return *this;
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Append(const WalRecord& record) {
  if (fd_ < 0) return Status::Internal("WAL writer is closed");
  std::string frame;
  AppendWalFrame(record, &frame);
  // O_APPEND writes each frame at the current end; a short write (disk
  // full) leaves a torn tail that replay drops — the committed prefix
  // is still every fully written, fsynced record.
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("WAL append failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  ++records_appended_;
  ++unsynced_records_;
  if (options_.fsync_every > 0 && unsynced_records_ >= options_.fsync_every) {
    return Sync();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::Internal("WAL writer is closed");
  if (::fsync(fd_) != 0) {
    return Status::Internal(std::string("WAL fsync failed: ") +
                            std::strerror(errno));
  }
  unsynced_records_ = 0;
  return Status::OK();
}

Status WalWriter::Close() {
  if (fd_ < 0) return Status::OK();
  Status synced = unsynced_records_ > 0 ? Sync() : Status::OK();
  if (::close(fd_) != 0 && synced.ok()) {
    synced = Status::Internal(std::string("WAL close failed: ") +
                              std::strerror(errno));
  }
  fd_ = -1;
  return synced;
}

Result<WalReplayResult> ReplayWal(const std::string& path, uint64_t offset) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no WAL at '" + path + "'");
    return ErrnoStatus("cannot open WAL", path);
  }
  // Read the whole suffix into memory: logs are bounded by what the
  // driver has not yet folded into snapshots, and replay is a startup /
  // polling path, not a hot one.
  std::string data;
  if (offset > 0 && ::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    ::close(fd);
    return ErrnoStatus("cannot seek WAL", path);
  }
  char buffer[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("cannot read WAL", path);
    }
    if (n == 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  WalReplayResult result;
  size_t pos = 0;
  while (data.size() - pos >= kWalFrameHeaderBytes) {
    WireReader header(std::string_view(data).substr(pos, kWalFrameHeaderBytes));
    uint32_t length = header.ReadU32().value();
    uint32_t crc = header.ReadU32().value();
    if (length > kMaxWalRecordBytes) break;
    if (data.size() - pos - kWalFrameHeaderBytes < length) break;
    std::string_view payload =
        std::string_view(data).substr(pos + kWalFrameHeaderBytes, length);
    if (Crc32(payload) != crc) break;
    Result<WalRecord> record = DecodeWalRecord(payload);
    if (!record.ok()) break;
    result.records.push_back(std::move(record).value());
    pos += kWalFrameHeaderBytes + length;
  }
  result.valid_bytes = offset + pos;
  result.dropped_bytes = data.size() - pos;
  return result;
}

}  // namespace comparesets
