// IngestDriver: the loop that turns an append-only review WAL into
// served corpus updates. It tails the log from a byte offset, folds
// committed records into a DeltaCorpusBuilder in batches, and publishes
// each touched shard's fresh snapshot through
// ShardRouter::ApplyShardDelta — untouched shards never move, so their
// vector caches and result memos stay warm across every drain.
//
// Crash recovery falls out of the WAL contract: on startup the driver
// replays from offset 0 (or wherever the operator resumes it), and
// ReplayWal stops at the longest committed prefix, so a torn tail from
// a crashed producer is simply not served yet. A partial trailing
// frame during live tailing is indistinguishable from a torn tail —
// the driver treats it as "not yet written" and re-reads it on the
// next drain; only a final drain reports it as dropped.
//
// Threading: DrainOnce is the whole unit of work and may be called
// from any ONE thread at a time (the builder is not thread-safe).
// Start/Stop run it on a private polling thread at a fixed interval;
// callers who want synchronous ingestion (tests, the bench, serve's
// pre-query drain) call DrainOnce directly and must not overlap it
// with a running poller.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/ingest/delta.h"
#include "service/ingest/wal.h"
#include "service/router.h"
#include "util/status.h"

namespace comparesets {

struct IngestDriverOptions {
  /// Path of the review WAL to tail.
  std::string wal_path;
  /// Records folded into one delta batch (one epoch bump per touched
  /// shard per batch). A drain that finds more splits them into
  /// ceil(n / batch_size) batches; a drain that finds fewer applies
  /// them all as one smaller batch.
  size_t batch_size = 64;
  /// Poll interval for the background thread started by Start().
  uint64_t interval_ms = 200;
};

/// Outcome of one DrainOnce call.
struct IngestDrainStats {
  size_t records_applied = 0;  ///< Records folded into the corpus.
  size_t records_dropped = 0;  ///< Records naming unknown products.
  size_t batches = 0;          ///< Delta batches published.
  size_t shards_touched = 0;   ///< Shard snapshot publications (sum).
  uint64_t bytes_consumed = 0; ///< WAL bytes the offset advanced by.
};

class IngestDriver {
 public:
  /// Builds the driver for `router`, which must outlive it. The builder
  /// is seeded with `base` — the SAME corpus the router's current
  /// snapshots were built from — and the router's partition bounds, so
  /// every delta snapshot lands under the bounds the router routes by.
  static Result<std::unique_ptr<IngestDriver>> Create(
      Corpus base, ShardRouter* router, IngestDriverOptions options,
      DeltaCorpusBuilder::Options builder_options = {});

  ~IngestDriver();
  IngestDriver(const IngestDriver&) = delete;
  IngestDriver& operator=(const IngestDriver&) = delete;

  /// Reads every committed record past the current offset, applies them
  /// in batches of batch_size, and publishes each touched shard. A
  /// missing WAL file is not an error — the producer may not have
  /// started yet; the drain reports zero work. Advances the offset past
  /// exactly the bytes consumed, so a partial trailing frame is re-read
  /// next drain.
  Result<IngestDrainStats> DrainOnce();

  /// Starts the background polling thread (no-op when already running).
  void Start();

  /// Stops and joins the polling thread (no-op when not running). Safe
  /// to call repeatedly; also run by the destructor.
  void Stop();

  /// Next WAL byte offset a drain will read from.
  uint64_t offset() const { return offset_.load(std::memory_order_relaxed); }

  /// Lifetime totals across every drain so far.
  IngestDrainStats TotalStats() const;

 private:
  IngestDriver() = default;

  IngestDriverOptions options_;
  ShardRouter* router_ = nullptr;
  std::unique_ptr<DeltaCorpusBuilder> builder_;
  std::atomic<uint64_t> offset_{0};

  mutable std::mutex stats_mutex_;
  IngestDrainStats totals_;

  std::mutex poll_mutex_;
  std::condition_variable poll_cv_;
  bool stop_requested_ = false;
  std::thread poller_;
};

}  // namespace comparesets
