#include "service/ingest/delta.h"

#include <algorithm>
#include <utility>

#include "service/partitioner.h"

namespace comparesets {

Status ApplyWalRecordToCorpus(const WalRecord& record, Corpus* corpus) {
  const Product* found = corpus->Find(record.product_id);
  if (found == nullptr) {
    return Status::NotFound("WAL record names unknown product '" +
                            record.product_id + "'");
  }
  // Find() hands out a pointer into the finalized product vector, so
  // the index is recoverable by arithmetic; MutableProduct never
  // reallocates, keeping every other handed-out pointer valid.
  size_t index = static_cast<size_t>(found - corpus->products().data());
  Review review = WalRecordToReview(record, &corpus->catalog());
  corpus->MutableProduct(index)->reviews.push_back(std::move(review));
  return Status::OK();
}

Result<std::unique_ptr<DeltaCorpusBuilder>> DeltaCorpusBuilder::Create(
    Corpus base, std::vector<std::string> bounds, Options options) {
  if (bounds.empty() || !bounds[0].empty()) {
    return Status::InvalidArgument(
        "bounds must be non-empty and start with the empty string");
  }
  for (size_t s = 1; s < bounds.size(); ++s) {
    if (bounds[s] <= bounds[s - 1]) {
      return Status::InvalidArgument("bounds must be strictly increasing");
    }
  }
  std::unique_ptr<DeltaCorpusBuilder> builder(new DeltaCorpusBuilder());
  builder->options_ = options;
  builder->master_ = std::move(base);
  if (!builder->master_.finalized()) builder->master_.Finalize();
  builder->bounds_ = std::move(bounds);

  const Corpus& corpus = builder->master_;
  const size_t num_products = corpus.num_products();

  // Reverse dependency index: also-bought lists are fixed for the
  // builder's lifetime, so this is built exactly once.
  for (size_t t = 0; t < num_products; ++t) {
    const Product& target = corpus.products()[t];
    builder->dependents_[target.id].push_back(t);
    for (const std::string& other_id : target.also_bought) {
      if (other_id == target.id) continue;
      if (corpus.Find(other_id) == nullptr) continue;
      std::vector<size_t>& deps = builder->dependents_[other_id];
      if (deps.empty() || deps.back() != t) deps.push_back(t);
    }
  }

  builder->per_target_items_.resize(num_products);
  size_t instances = 0;
  for (size_t t = 0; t < num_products; ++t) {
    builder->per_target_items_[t] = builder->ComputeTargetItems(t);
    if (!builder->per_target_items_[t].empty()) ++instances;
  }
  if (instances == 0) {
    return Status::InvalidArgument(
        "base corpus yields no problem instances (too few linked products?)");
  }

  // Baseline per-shard slices and closures: what the serving snapshots
  // built from this base corpus hold right now.
  builder->shard_slices_.resize(builder->bounds_.size());
  builder->shard_closures_.resize(builder->bounds_.size());
  for (size_t s = 0; s < builder->bounds_.size(); ++s) {
    builder->shard_slices_[s] = builder->ShardSlice(s);
    for (const std::vector<std::string>& items : builder->shard_slices_[s]) {
      for (const std::string& id : items) builder->shard_closures_[s].insert(id);
    }
  }
  return builder;
}

std::vector<std::string> DeltaCorpusBuilder::ComputeTargetItems(
    size_t target) const {
  // Mirrors Corpus::BuildInstances for one target — same filters, same
  // order, same tie-breaking — so concatenating the non-empty lists
  // reproduces the from-scratch enumeration verbatim.
  const InstanceOptions& opts = options_.instances;
  const Product& product = master_.products()[target];
  std::vector<std::string> items;
  if (product.reviews.size() < opts.min_reviews_per_item) return items;
  items.push_back(product.id);
  for (const std::string& other_id : product.also_bought) {
    if (opts.max_comparative_items > 0 &&
        items.size() - 1 >= opts.max_comparative_items) {
      break;
    }
    const Product* other = master_.Find(other_id);
    if (other == nullptr || other == &product) continue;
    if (other->reviews.size() < opts.min_reviews_per_item) continue;
    items.push_back(other_id);
  }
  if (items.size() - 1 < opts.min_comparative_items) items.clear();
  return items;
}

std::vector<std::vector<std::string>> DeltaCorpusBuilder::InstanceItemIds()
    const {
  std::vector<std::vector<std::string>> all;
  for (const std::vector<std::string>& items : per_target_items_) {
    if (!items.empty()) all.push_back(items);
  }
  return all;
}

std::vector<std::vector<std::string>> DeltaCorpusBuilder::ShardSlice(
    size_t s) const {
  ShardKeyRange range;
  range.begin = bounds_[s];
  range.end = s + 1 < bounds_.size() ? bounds_[s + 1] : std::string();
  std::vector<std::vector<std::string>> slice;
  for (const std::vector<std::string>& items : per_target_items_) {
    if (items.empty() || !range.Contains(items[0])) continue;
    slice.push_back(items);
  }
  return slice;
}

Result<CorpusDelta> DeltaCorpusBuilder::ApplyBatch(
    const std::vector<WalRecord>& records) {
  CorpusDelta delta;
  delta.sequence = ++sequence_;

  // Fold the batch into the master corpus, collecting which products
  // changed and how many records each absorbed.
  std::unordered_map<std::string, size_t> changed;  // id -> records landed
  for (const WalRecord& record : records) {
    Status applied = ApplyWalRecordToCorpus(record, &master_);
    if (!applied.ok()) {
      if (applied.code() == StatusCode::kNotFound) {
        ++delta.records_dropped;
        continue;
      }
      return applied;
    }
    ++delta.records_applied;
    ++changed[record.product_id];
  }
  if (delta.records_applied == 0) return delta;

  // Re-derive only the targets this batch can have affected.
  std::unordered_set<size_t> affected;
  for (const auto& [id, count] : changed) {
    auto it = dependents_.find(id);
    if (it == dependents_.end()) continue;
    for (size_t t : it->second) affected.insert(t);
  }
  for (size_t t : affected) per_target_items_[t] = ComputeTargetItems(t);

  std::vector<std::vector<std::string>> enumeration = InstanceItemIds();

  for (size_t s = 0; s < bounds_.size(); ++s) {
    std::vector<std::vector<std::string>> slice = ShardSlice(s);
    bool touched;
    size_t reviews_added = 0;
    if (bounds_.size() == 1) {
      // The unsharded snapshot carries the WHOLE catalog, so any
      // applied record changes it.
      touched = true;
      reviews_added = delta.records_applied;
    } else {
      touched = slice != shard_slices_[s];
      for (const auto& [id, count] : changed) {
        if (shard_closures_[s].count(id) != 0) {
          touched = true;
          reviews_added += count;
        }
      }
    }
    if (!touched) continue;

    ShardDelta shard_delta;
    shard_delta.shard_id = s;
    if (bounds_.size() == 1) {
      // The one-shard snapshot is the full corpus — the same shape
      // IndexedCorpus::Build(full) serves, so the single-shard serve
      // path stays byte-identical to the unsharded engine.
      COMPARESETS_ASSIGN_OR_RETURN(
          shard_delta.snapshot,
          IndexedCorpus::BuildFromInstances(master_, enumeration,
                                            ShardSpec{}));
    } else {
      COMPARESETS_ASSIGN_OR_RETURN(
          shard_delta.snapshot,
          CorpusPartitioner::ExtractShardFromParts(master_, enumeration,
                                                   bounds_, s));
      // Count records that landed in the NEW closure too — a product
      // that just entered the shard via a fresh instance counts.
      std::unordered_set<std::string> new_closure;
      for (const std::vector<std::string>& items : slice) {
        for (const std::string& id : items) new_closure.insert(id);
      }
      reviews_added = 0;
      for (const auto& [id, count] : changed) {
        if (new_closure.count(id) != 0) reviews_added += count;
      }
      shard_closures_[s] = std::move(new_closure);
    }
    shard_delta.reviews_added = reviews_added;
    shard_slices_[s] = std::move(slice);
    delta.shards.push_back(std::move(shard_delta));
  }
  return delta;
}

}  // namespace comparesets
