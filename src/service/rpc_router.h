// RpcShardRouter: ShardRouter's scatter/gather, re-hosted on the
// ShardBackend seam.
//
// PR 5's ShardRouter is welded to in-process SelectionEngines. This
// router keeps its routing/gather semantics VERBATIM — same
// upper_bound range routing, same per-request kRoute / per-shard
// kGather fault seams, same "charge the whole gather against each
// request's deadline" rule with the same expiry message — but talks to
// shards through ShardBackend, so the same code serves
//   * local backends (CreateLocalBackends): one process, byte-identical
//     to ShardRouter and to a single engine, and
//   * RPC backends (net/client.h): one shard_server process per shard.
// The transport oracle holds all three pairwise byte-identical.
//
// Deliberately NOT carried over from ShardRouter: per-shard admin
// (SwapShardCorpus / SetShardState — a remote shard's lifecycle belongs
// to its own process) and metrics rollup (a remote engine's registry
// is not addressable here; Probe carries the ops surface instead).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "service/backend.h"
#include "service/fault_injector.h"
#include "util/thread_pool.h"

namespace comparesets {

struct RpcRouterOptions {
  /// Lanes for the scatter/gather fan-out over shards (0 = hardware
  /// concurrency). With <= 1, sub-batches run serially in shard order.
  size_t router_threads = 0;
  /// Router-seam fault injection (kRoute / kGather); nullptr = none.
  std::shared_ptr<FaultInjector> fault_injector;
};

class RpcShardRouter {
 public:
  /// `bounds` are the partition lower bounds (bounds[0] == "", sorted,
  /// one per backend); `backends` the shards in range order.
  static Result<std::unique_ptr<RpcShardRouter>> Create(
      std::vector<std::string> bounds,
      std::vector<std::unique_ptr<ShardBackend>> backends,
      RpcRouterOptions options = {});

  size_t num_shards() const { return backends_.size(); }

  /// The shard whose range contains `target_id` (total, like
  /// ShardRouter::ShardForTarget).
  size_t ShardForTarget(const std::string& target_id) const;

  Result<SelectResponse> Select(const SelectRequest& request) const;

  /// Scatter/gather with ShardRouter::SelectBatch's exact semantics:
  /// requests grouped per shard in original order, one backend
  /// SelectBatch per shard (ONE frame over RPC), expired requests
  /// dropped pre-dispatch with the router's canonical message,
  /// responses reassembled in request order.
  std::vector<Result<SelectResponse>> SelectBatch(
      const std::vector<SelectRequest>& requests) const;

  /// Probes every backend once, in shard order.
  std::vector<Result<ShardHealth>> ProbeAll() const;

  /// Blocks until every backend reports ready or `timeout_seconds`
  /// elapses (kTimeout naming the laggard shard).
  Status WaitReady(double timeout_seconds) const;

  const std::vector<std::string>& bounds() const { return bounds_; }

  ShardBackend& backend(size_t shard_id) const {
    return *backends_[shard_id];
  }

 private:
  RpcShardRouter(std::vector<std::string> bounds,
                 std::vector<std::unique_ptr<ShardBackend>> backends,
                 RpcRouterOptions options);

  RpcRouterOptions options_;
  std::vector<std::string> bounds_;
  std::vector<std::unique_ptr<ShardBackend>> backends_;
  mutable ThreadPool pool_;
};

}  // namespace comparesets
