#include "service/router.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <map>
#include <optional>
#include <utility>

#include "util/timer.h"

namespace comparesets {

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kServing:
      return "serving";
    case ShardState::kSwapping:
      return "swapping";
    case ShardState::kDown:
      return "down";
  }
  return "unknown";
}

ShardRouter::ShardRouter(RouterOptions options, std::vector<std::string> bounds)
    : options_(std::move(options)),
      bounds_(std::move(bounds)),
      pool_(options_.router_threads) {}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    std::shared_ptr<const IndexedCorpus> corpus, size_t num_shards,
    RouterOptions options) {
  if (corpus == nullptr) {
    return Status::InvalidArgument("ShardRouter requires a corpus");
  }
  COMPARESETS_ASSIGN_OR_RETURN(
      std::vector<std::string> bounds,
      CorpusPartitioner::ComputeBounds(*corpus, num_shards));

  std::vector<std::shared_ptr<const IndexedCorpus>> shards;
  shards.reserve(num_shards);
  if (num_shards == 1) {
    // The unsharded snapshot IS the one-shard partition: serve it
    // as-is so the single-shard router shares every byte with a plain
    // engine.
    shards.push_back(std::move(corpus));
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      COMPARESETS_ASSIGN_OR_RETURN(auto shard,
                                   CorpusPartitioner::ExtractShard(
                                       *corpus, bounds, s));
      shards.push_back(std::move(shard));
    }
  }

  std::unique_ptr<ShardRouter> router(
      new ShardRouter(std::move(options), std::move(bounds)));
  // ONE admission pipeline across all shard engines: max_in_flight is
  // a statement about the machine, not about any single shard.
  PipelineOptions pipeline_options;
  pipeline_options.max_in_flight = router->options_.engine.max_in_flight;
  pipeline_options.max_queue = router->options_.engine.max_queue;
  pipeline_options.max_batch_queue = router->options_.engine.max_batch_queue;
  pipeline_options.max_attempts = router->options_.engine.max_attempts;
  pipeline_options.retry_backoff_seconds =
      router->options_.engine.retry_backoff_seconds;
  router->pipeline_ = std::make_shared<RequestPipeline>(pipeline_options);

  router->engines_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    EngineOptions engine_options = router->options_.engine;
    engine_options.shard_id = s;
    engine_options.pipeline = router->pipeline_;
    router->engines_.push_back(std::make_unique<SelectionEngine>(
        std::move(shards[s]), std::move(engine_options)));
  }
  router->states_ = std::make_unique<std::atomic<int>[]>(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    router->states_[s].store(static_cast<int>(ShardState::kServing));
  }
  return router;
}

size_t ShardRouter::ShardForTarget(const std::string& target_id) const {
  // bounds_[0] == "", so upper_bound never returns begin(): every id —
  // known to the catalog or not — lands in exactly one range, and an
  // unknown id produces the same NotFound a single engine would.
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), target_id);
  return static_cast<size_t>(it - bounds_.begin()) - 1;
}

ShardKeyRange ShardRouter::RangeOf(size_t shard_id) const {
  ShardKeyRange range;
  range.begin = bounds_[shard_id];
  if (shard_id + 1 < bounds_.size()) range.end = bounds_[shard_id + 1];
  return range;
}

Status ShardRouter::CheckRoutable(size_t shard) const {
  auto state = static_cast<ShardState>(
      states_[shard].load(std::memory_order_acquire));
  if (state == ShardState::kServing) return Status::OK();
  metrics_.counter("router.unavailable").Increment();
  return Status::Unavailable("shard " + std::to_string(shard) + " " +
                             RangeOf(shard).ToString() + " is " +
                             ShardStateName(state));
}

Result<SelectResponse> ShardRouter::Select(const SelectRequest& request) const {
  metrics_.counter("router.requests").Increment();
  if (options_.fault_injector) {
    Status injected = options_.fault_injector->Inject(FaultSite::kRoute);
    if (!injected.ok()) {
      metrics_.counter("router.route_faults").Increment();
      return injected;
    }
  }
  size_t shard = ShardForTarget(request.target_id);
  COMPARESETS_RETURN_NOT_OK(CheckRoutable(shard));
  metrics_.counter("router.routed").Increment();
  metrics_.counter("router.shard_requests." + std::to_string(shard))
      .Increment();
  return engines_[shard]->Select(request);
}

std::vector<Result<SelectResponse>> ShardRouter::SelectBatch(
    const std::vector<SelectRequest>& requests) const {
  metrics_.counter("router.batches").Increment();
  metrics_.counter("router.requests").Increment(requests.size());
  std::vector<std::optional<Result<SelectResponse>>> slots(requests.size());

  // Scatter: route every request up front. Router-level refusals (route
  // faults, unavailable shards) land in their slots without touching
  // any engine; the rest are grouped per shard, original order kept.
  std::vector<std::vector<size_t>> by_shard(engines_.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (options_.fault_injector) {
      Status injected = options_.fault_injector->Inject(FaultSite::kRoute);
      if (!injected.ok()) {
        metrics_.counter("router.route_faults").Increment();
        slots[i] = injected;
        continue;
      }
    }
    size_t shard = ShardForTarget(requests[i].target_id);
    Status routable = CheckRoutable(shard);
    if (!routable.ok()) {
      slots[i] = routable;
      continue;
    }
    metrics_.counter("router.routed").Increment();
    metrics_.counter("router.shard_requests." + std::to_string(shard))
        .Increment();
    by_shard[shard].push_back(i);
  }

  // Gather: one task per shard with work. Each request's deadline spans
  // the whole gather — time lost before its shard dispatches (e.g. an
  // injected gather delay) is charged against it, so an expired request
  // is dropped HERE instead of burning a solve it can no longer use.
  Timer gather_timer;
  auto run_shard = [&](size_t shard) {
    if (options_.fault_injector) {
      Status injected = options_.fault_injector->Inject(FaultSite::kGather);
      if (!injected.ok()) {
        metrics_.counter("router.gather_faults").Increment();
        for (size_t i : by_shard[shard]) slots[i] = injected;
        return;
      }
    }
    double elapsed = gather_timer.ElapsedSeconds();
    std::vector<SelectRequest> sub;
    std::vector<size_t> sub_index;
    sub.reserve(by_shard[shard].size());
    sub_index.reserve(by_shard[shard].size());
    for (size_t i : by_shard[shard]) {
      if (requests[i].deadline_seconds > 0.0 &&
          requests[i].deadline_seconds <= elapsed) {
        metrics_.counter("router.gather_expired").Increment();
        slots[i] = Status::DeadlineExceeded(
            "deadline exceeded before gather dispatch to shard " +
            std::to_string(shard));
        continue;
      }
      sub.push_back(requests[i]);
      if (sub.back().deadline_seconds > 0.0) {
        sub.back().deadline_seconds -= elapsed;
      }
      sub_index.push_back(i);
    }
    if (sub.empty()) return;
    std::vector<Result<SelectResponse>> sub_responses =
        engines_[shard]->SelectBatch(sub);
    for (size_t j = 0; j < sub_index.size(); ++j) {
      slots[sub_index[j]] = std::move(sub_responses[j]);
    }
  };

  std::vector<size_t> active;
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (!by_shard[s].empty()) active.push_back(s);
  }
  if (active.size() <= 1 || pool_.num_threads() <= 1) {
    // Nothing to overlap (or a 1-lane router): run sub-batches serially
    // in shard order on the calling thread.
    for (size_t s : active) run_shard(s);
  } else {
    // Fan out one lane per active shard on the ROUTER's pool; each
    // engine then fans its sub-batch out on ITS pool. Distinct pools,
    // so the engine nesting rule is never violated by this outer layer.
    pool_.ParallelFor(active.size(),
                      [&](size_t k) { run_shard(active[k]); });
  }

  std::vector<Result<SelectResponse>> responses;
  responses.reserve(slots.size());
  for (auto& slot : slots) responses.push_back(std::move(*slot));
  return responses;
}

Status ShardRouter::SwapShardCorpus(
    size_t shard_id, std::shared_ptr<const IndexedCorpus> full_corpus) {
  if (shard_id >= engines_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard_id));
  }
  if (full_corpus == nullptr) {
    return Status::InvalidArgument("SwapShardCorpus requires a corpus");
  }
  std::lock_guard<std::mutex> lock(admin_mutex_);
  // The shard goes kSwapping for the duration: its range answers
  // kUnavailable instead of mixing snapshots mid-extraction. On any
  // failure the previous state (and the engine's previous snapshot)
  // are kept.
  int previous =
      states_[shard_id].exchange(static_cast<int>(ShardState::kSwapping),
                                 std::memory_order_acq_rel);

  Result<std::shared_ptr<const IndexedCorpus>> shard_corpus =
      engines_.size() == 1
          ? Result<std::shared_ptr<const IndexedCorpus>>(
                std::move(full_corpus))
          : CorpusPartitioner::ExtractShard(*full_corpus, bounds_, shard_id);
  Status status = shard_corpus.ok()
                      ? engines_[shard_id]->SwapCorpus(
                            std::move(shard_corpus).value())
                      : shard_corpus.status();
  if (!status.ok()) {
    states_[shard_id].store(previous, std::memory_order_release);
    metrics_.counter("router.shard_swap_failures").Increment();
    return status;
  }
  // A successful swap always leaves the shard serving — swapping a
  // fresh catalog into a kDown shard is how it is revived.
  states_[shard_id].store(static_cast<int>(ShardState::kServing),
                          std::memory_order_release);
  metrics_.counter("router.shard_swaps").Increment();
  return Status::OK();
}

Status ShardRouter::ApplyShardDelta(
    size_t shard_id, std::shared_ptr<const IndexedCorpus> snapshot,
    size_t reviews_added) {
  if (shard_id >= engines_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard_id));
  }
  if (snapshot == nullptr) {
    return Status::InvalidArgument("ApplyShardDelta requires a snapshot");
  }
  std::lock_guard<std::mutex> lock(admin_mutex_);
  // Same state machine as SwapShardCorpus: the shard answers
  // kUnavailable for the (brief) publication window, and a failed apply
  // keeps the previous state and snapshot.
  int previous =
      states_[shard_id].exchange(static_cast<int>(ShardState::kSwapping),
                                 std::memory_order_acq_rel);
  Status status =
      engines_[shard_id]->ApplyCorpusDelta(std::move(snapshot), reviews_added);
  if (!status.ok()) {
    states_[shard_id].store(previous, std::memory_order_release);
    metrics_.counter("router.shard_delta_failures").Increment();
    return status;
  }
  states_[shard_id].store(static_cast<int>(ShardState::kServing),
                          std::memory_order_release);
  metrics_.counter("router.shard_deltas").Increment();
  return Status::OK();
}

Status ShardRouter::SetShardState(size_t shard_id, ShardState state) {
  if (shard_id >= engines_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard_id));
  }
  if (state == ShardState::kSwapping) {
    return Status::InvalidArgument(
        "kSwapping is owned by SwapShardCorpus; set kServing or kDown");
  }
  std::lock_guard<std::mutex> lock(admin_mutex_);
  states_[shard_id].store(static_cast<int>(state), std::memory_order_release);
  metrics_.counter("router.shard_state_changes").Increment();
  return Status::OK();
}

std::vector<ShardStatus> ShardRouter::ShardStatuses() const {
  std::vector<ShardStatus> statuses;
  statuses.reserve(engines_.size());
  for (size_t s = 0; s < engines_.size(); ++s) {
    ShardStatus status;
    status.shard_id = s;
    status.state = static_cast<ShardState>(
        states_[s].load(std::memory_order_acquire));
    status.range = RangeOf(s);
    status.corpus_epoch = engines_[s]->corpus_epoch();
    std::shared_ptr<const IndexedCorpus> snapshot = engines_[s]->corpus();
    status.num_instances = snapshot->num_instances();
    status.num_products = snapshot->corpus().num_products();
    statuses.push_back(std::move(status));
  }
  return statuses;
}

namespace {

/// Sums engine snapshots instrument-by-instrument: counters and gauges
/// add; histograms merge (count/sum/buckets add, min/max combine).
MetricsSnapshot RollupSnapshots(const std::vector<MetricsSnapshot>& shards) {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  for (const MetricsSnapshot& shard : shards) {
    for (const auto& [name, value] : shard.counters) counters[name] += value;
    for (const auto& [name, value] : shard.gauges) gauges[name] += value;
    for (const auto& [name, h] : shard.histograms) {
      HistogramSnapshot& merged = histograms[name];
      if (merged.count == 0) {
        merged = h;
        continue;
      }
      if (h.count == 0) continue;
      merged.min = std::min(merged.min, h.min);
      merged.max = std::max(merged.max, h.max);
      merged.count += h.count;
      merged.sum += h.sum;
      merged.buckets.resize(std::max(merged.buckets.size(), h.buckets.size()));
      for (size_t b = 0; b < h.buckets.size(); ++b) {
        merged.buckets[b] += h.buckets[b];
      }
    }
  }
  MetricsSnapshot rollup;
  for (auto& [name, value] : counters) rollup.counters.emplace_back(name, value);
  for (auto& [name, value] : gauges) rollup.gauges.emplace_back(name, value);
  for (auto& [name, h] : histograms) {
    h.mean = h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    rollup.histograms.emplace_back(name, h);
  }
  return rollup;
}

/// Renders a snapshot in MetricsRegistry::Dump's line format.
std::string DumpSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "gauge %s %.6g\n", name.c_str(), value);
    out += line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%llu mean=%.6gs min=%.6gs max=%.6gs\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean, h.min, h.max);
    out += line;
  }
  return out;
}

}  // namespace

std::string ShardRouter::DumpMetrics() const {
  std::vector<MetricsSnapshot> shards;
  shards.reserve(engines_.size());
  for (const auto& engine : engines_) {
    shards.push_back(engine->SnapshotMetrics());
  }
  // Router counters first, then the cross-shard rollup in the same
  // format a single engine dumps — so consumers of the unsharded dump
  // (scripts grepping "counter engine.requests") read the same lines.
  std::string out = metrics_.Dump();
  out += DumpSnapshot(RollupSnapshots(shards));
  if (engines_.size() > 1) {
    for (size_t s = 0; s < engines_.size(); ++s) {
      char header[128];
      std::snprintf(header, sizeof(header),
                    "--- shard %zu %s state=%s epoch=%llu ---\n", s,
                    RangeOf(s).ToString().c_str(),
                    ShardStateName(static_cast<ShardState>(
                        states_[s].load(std::memory_order_acquire))),
                    static_cast<unsigned long long>(
                        engines_[s]->corpus_epoch()));
      out += header;
      out += DumpSnapshot(shards[s]);
    }
  }
  return out;
}

std::string ShardRouter::RenderPrometheus() const {
  std::vector<std::pair<std::string, MetricsSnapshot>> labeled;
  labeled.reserve(engines_.size() + 1);
  labeled.emplace_back(std::string(), metrics_.Snapshot());
  for (size_t s = 0; s < engines_.size(); ++s) {
    labeled.emplace_back("shard=\"" + std::to_string(s) + "\"",
                         engines_[s]->SnapshotMetrics());
  }
  return MetricsRegistry::RenderPrometheus(labeled);
}

std::string ShardRouter::DumpTraces() const {
  std::string out;
  for (const auto& engine : engines_) out += engine->DumpTraces();
  return out;
}

std::vector<RequestTrace> ShardRouter::Traces() const {
  std::vector<RequestTrace> traces;
  for (const auto& engine : engines_) {
    std::vector<RequestTrace> shard_traces = engine->Traces();
    traces.insert(traces.end(),
                  std::make_move_iterator(shard_traces.begin()),
                  std::make_move_iterator(shard_traces.end()));
  }
  return traces;
}

}  // namespace comparesets
