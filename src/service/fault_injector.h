// Deterministic fault injection for the serving path.
//
// Production failure modes — a cache backend erroring, a solver stalling
// long enough to blow a deadline, a slow catalog swap — are rare and
// timing-dependent, so tests can never wait for them to happen. The
// FaultInjector makes them happen on demand, reproducibly: each seam the
// engine exposes (cache lookup, solve, corpus swap) rolls dice from its
// own seeded util/rng stream, so a single-threaded engine replays the
// exact same fault sequence for the same seed and plan.
//
// Injected errors are Status::Internal with an "injected fault" message;
// the engine classifies them as transient and retries them with backoff
// (the point: exercise the retry path, not just the error path).
// Injected delays are real sleeps — the way tests force a deadline to
// expire inside a stage without depending on machine speed.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/rng.h"
#include "util/status.h"

namespace comparesets {

/// The engine seams a fault can be injected at.
enum class FaultSite {
  kCacheLookup = 0,  ///< VectorCache lookup inside Prepare.
  kSolve,            ///< Just before the selector runs.
  kCorpusSwap,       ///< Inside SwapCorpus, before the snapshot flips.
  kRoute,            ///< ShardRouter, before resolving the target's shard.
  kGather,           ///< ShardRouter, before each shard's gather task runs.
  kConnect,          ///< RPC client, before (re)connecting to a replica.
  kSend,             ///< RPC client, before sending a request frame.
  kRecv,             ///< RPC client, before reading the response frame.
};

/// Stable lowercase name for a fault site ("cache_lookup", ...).
const char* FaultSiteName(FaultSite site);

/// Per-site fault behaviour. All rates are probabilities in [0, 1];
/// `fail_first` takes precedence over the dice so tests can script
/// "fail exactly N times, then succeed" deterministically.
struct SiteFaults {
  /// Fail this many rolls at the site unconditionally before consulting
  /// error_rate — the knob for testing bounded retries.
  int fail_first = 0;
  /// Probability of returning an injected Internal error.
  double error_rate = 0.0;
  /// Probability of sleeping `delay_seconds` before proceeding.
  double delay_rate = 0.0;
  /// Injected sleep duration when the delay dice hit.
  double delay_seconds = 0.0;
};

/// The complete injection plan: one SiteFaults per seam plus the seed.
struct FaultPlan {
  uint64_t seed = 1;
  SiteFaults cache_lookup;
  SiteFaults solve;
  SiteFaults corpus_swap;
  SiteFaults route;
  SiteFaults gather;
  SiteFaults connect;
  SiteFaults send;
  SiteFaults recv;
};

/// Thread-safe injector. Each site draws from its own PCG stream
/// (streams derived from the plan seed), so faults at one seam never
/// perturb the dice sequence of another.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// Rolls the site's dice: maybe sleeps, maybe returns an injected
  /// error. OK means "no fault this time, proceed".
  Status Inject(FaultSite site);

  uint64_t injected_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  uint64_t injected_delays() const {
    return delays_.load(std::memory_order_relaxed);
  }

 private:
  struct SiteState {
    SiteFaults faults;
    Rng rng{1, 1};
    int failures_dealt = 0;
  };

  SiteState& state(FaultSite site);

  FaultPlan plan_;
  std::mutex mutex_;
  SiteState sites_[8];
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> delays_{0};
};

}  // namespace comparesets
