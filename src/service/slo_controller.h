// SloController: burn-rate-driven load shedding for the serving stack.
//
// PR 8's degrade path fires only when admission is already full — the
// queue must overflow before anything gives. This controller closes the
// SLO loop instead: it computes a rolling p99 of request latency (plus
// degraded/rejection rates) from the engines' RequestTrace rings, and
// when the p99 crosses the configured SLO it sheds BY POLICY —
// loosening every engine's quality floor (so admission refusals degrade
// to the greedy incumbent instead of rejecting) and shrinking the
// shared pipeline's batch waiting budget (so background batches are
// refused before interactive work feels pressure). When the p99 falls
// back under recover_ratio × SLO, both levers are restored. Hysteresis
// between the two thresholds keeps the controller from flapping.
//
// Threading: TickOnce is the whole unit of work and may be called from
// any ONE thread at a time. Start/Stop run it on a private polling
// thread at a fixed interval (the IngestDriver pattern); tests call
// TickOnce directly for determinism. The levers themselves are atomics
// on the engine/pipeline side, so ticks never contend with serving.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/selector.h"
#include "service/engine.h"
#include "service/request_pipeline.h"

namespace comparesets {

struct SloControllerOptions {
  /// The latency SLO: target p99 of end-to-end request seconds
  /// (RequestTrace::total_seconds). 0 disables the controller —
  /// TickOnce still reports rates but never moves a lever.
  double slo_seconds = 0.0;
  /// Restore when p99 < recover_ratio × slo_seconds. Must be < 1: the
  /// gap between shed and restore thresholds is the hysteresis band.
  double recover_ratio = 0.8;
  /// Minimum ok-trace samples before any decision (cold start guard).
  size_t min_samples = 8;
  /// Most recent traces considered per engine ring (rolling window).
  size_t window = 128;
  /// Quality floor while shedding, combined with each engine's
  /// configured floor by LooserTier (shedding only ever loosens).
  QualityTier shed_floor = QualityTier::kAnytime;
  /// Batch waiting budget while shedding (0 = refuse every batch
  /// request that cannot take a slot immediately — batch sheds first).
  size_t shed_batch_queue = 0;
  /// Poll interval for the background thread started by Start().
  uint64_t interval_ms = 50;
};

/// What one TickOnce observed and decided.
struct SloSample {
  double p99_seconds = 0.0;   ///< Rolling p99 over ok traces (0 if none).
  double degraded_rate = 0.0; ///< Fraction of ok traces below "exact".
  double rejected_rate = 0.0; ///< Fraction of traces resource-exhausted.
  size_t samples = 0;         ///< Traces the rates were computed over.
  bool shedding = false;      ///< Controller state AFTER the tick.
};

class SloController {
 public:
  /// Watches `engines` (their trace rings feed the rolling stats; their
  /// quality floors are the degrade lever) and `pipeline` (the batch-
  /// budget lever; may be nullptr to run with the floor lever only).
  /// All pointees must outlive the controller.
  SloController(SloControllerOptions options, RequestPipeline* pipeline,
                std::vector<SelectionEngine*> engines);

  ~SloController();
  SloController(const SloController&) = delete;
  SloController& operator=(const SloController&) = delete;

  /// One control-loop iteration: pull traces, compute the rolling p99
  /// and rates, flip or restore the levers per the thresholds.
  SloSample TickOnce();

  /// Starts the background polling thread (no-op when already running).
  void Start();

  /// Stops and joins the polling thread (no-op when not running). Safe
  /// to call repeatedly; also run by the destructor. The levers keep
  /// their current position — call RestoreLevers() to reset them.
  void Stop();

  /// Unconditionally sheds NOW: applies both levers and enters the
  /// shedding state, exactly as if a tick had crossed the SLO. An
  /// operator override for incidents — the next tick whose p99 is back
  /// under the recover threshold restores as usual.
  void Shed();

  /// Unconditionally restores both levers to configured policy.
  void RestoreLevers();

  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }
  uint64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }
  uint64_t restores() const {
    return restores_.load(std::memory_order_relaxed);
  }

 private:
  void ShedLevers();

  SloControllerOptions options_;
  RequestPipeline* pipeline_;
  std::vector<SelectionEngine*> engines_;
  std::atomic<bool> shedding_{false};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> restores_{0};

  std::mutex poll_mutex_;
  std::condition_variable poll_cv_;
  bool stop_requested_ = false;
  std::thread poller_;
};

}  // namespace comparesets
