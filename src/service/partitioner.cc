#include "service/partitioner.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace comparesets {

Result<std::vector<std::string>> CorpusPartitioner::ComputeBounds(
    const IndexedCorpus& full, size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  const size_t n = full.num_instances();
  if (num_shards > n) {
    return Status::InvalidArgument(
        "cannot split " + std::to_string(n) + " instances across " +
        std::to_string(num_shards) + " shards without an empty shard");
  }

  // Targets are unique (one instance per target), so the sorted list
  // has no duplicates and evenly spaced cut points give strictly
  // increasing bounds.
  std::vector<std::string> targets;
  targets.reserve(n);
  for (const ProblemInstance& instance : full.instances()) {
    targets.push_back(instance.target().id);
  }
  std::sort(targets.begin(), targets.end());

  std::vector<std::string> bounds;
  bounds.reserve(num_shards);
  bounds.emplace_back();  // Shard 0 starts at the bottom of the key space.
  for (size_t s = 1; s < num_shards; ++s) {
    bounds.push_back(targets[s * n / num_shards]);
  }
  return bounds;
}

Result<std::shared_ptr<const IndexedCorpus>> CorpusPartitioner::ExtractShard(
    const IndexedCorpus& full, const std::vector<std::string>& bounds,
    size_t shard_id) {
  std::vector<std::vector<std::string>> instance_item_ids;
  instance_item_ids.reserve(full.num_instances());
  for (const ProblemInstance& instance : full.instances()) {
    std::vector<std::string> item_ids;
    item_ids.reserve(instance.items.size());
    for (const Product* item : instance.items) item_ids.push_back(item->id);
    instance_item_ids.push_back(std::move(item_ids));
  }
  return ExtractShardFromParts(full.corpus(), instance_item_ids, bounds,
                               shard_id);
}

Result<std::shared_ptr<const IndexedCorpus>>
CorpusPartitioner::ExtractShardFromParts(
    const Corpus& full_corpus,
    const std::vector<std::vector<std::string>>& instance_item_ids,
    const std::vector<std::string>& bounds, size_t shard_id) {
  if (bounds.empty() || !bounds[0].empty()) {
    return Status::InvalidArgument(
        "bounds must be non-empty and start with the empty string");
  }
  if (shard_id >= bounds.size()) {
    return Status::InvalidArgument(
        "shard_id " + std::to_string(shard_id) + " out of range for " +
        std::to_string(bounds.size()) + " shards");
  }
  ShardSpec spec;
  spec.shard_id = shard_id;
  spec.num_shards = bounds.size();
  spec.range.begin = bounds[shard_id];
  spec.range.end =
      shard_id + 1 < bounds.size() ? bounds[shard_id + 1] : std::string();

  // Slice the full corpus's enumeration and collect the product closure
  // in one pass (invariants 1 and 2 from the header).
  std::vector<std::vector<std::string>> shard_instances;
  std::unordered_set<std::string> closure;
  for (const std::vector<std::string>& item_ids : instance_item_ids) {
    if (item_ids.empty() || !spec.range.Contains(item_ids[0])) continue;
    for (const std::string& id : item_ids) closure.insert(id);
    shard_instances.push_back(item_ids);
  }

  // Copy closure products in original corpus order: instance vectors
  // only depend on per-product content, but stable order keeps shard
  // corpora diffable and pointer-layout deterministic.
  Corpus shard_corpus(full_corpus.name());
  shard_corpus.catalog() = full_corpus.catalog();
  for (const Product& product : full_corpus.products()) {
    if (closure.count(product.id) == 0) continue;
    COMPARESETS_RETURN_NOT_OK(shard_corpus.AddProduct(product));
  }
  return IndexedCorpus::BuildFromInstances(std::move(shard_corpus),
                                           shard_instances, spec);
}

Result<std::vector<std::shared_ptr<const IndexedCorpus>>>
CorpusPartitioner::Partition(std::shared_ptr<const IndexedCorpus> full,
                             size_t num_shards) {
  if (full == nullptr) {
    return Status::InvalidArgument("Partition requires a corpus");
  }
  if (num_shards == 1) {
    return std::vector<std::shared_ptr<const IndexedCorpus>>{std::move(full)};
  }
  COMPARESETS_ASSIGN_OR_RETURN(std::vector<std::string> bounds,
                               ComputeBounds(*full, num_shards));
  std::vector<std::shared_ptr<const IndexedCorpus>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    COMPARESETS_ASSIGN_OR_RETURN(auto shard, ExtractShard(*full, bounds, s));
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace comparesets
