#include "service/indexed_corpus.h"

namespace comparesets {

Result<std::shared_ptr<const IndexedCorpus>> IndexedCorpus::Build(
    Corpus corpus, const InstanceOptions& options) {
  std::shared_ptr<IndexedCorpus> indexed(new IndexedCorpus());
  indexed->corpus_ = std::move(corpus);
  if (!indexed->corpus_.finalized()) indexed->corpus_.Finalize();

  // Instances are enumerated after the corpus settled into its final
  // home, so their Product pointers stay valid for our lifetime.
  indexed->instances_ = indexed->corpus_.BuildInstances(options);
  if (indexed->instances_.empty()) {
    return Status::InvalidArgument(
        "corpus yields no problem instances (too few linked products?)");
  }
  indexed->by_target_.reserve(indexed->instances_.size());
  for (size_t i = 0; i < indexed->instances_.size(); ++i) {
    indexed->by_target_.emplace(indexed->instances_[i].target().id, i);
  }
  return std::shared_ptr<const IndexedCorpus>(std::move(indexed));
}

const ProblemInstance* IndexedCorpus::FindInstance(
    const std::string& target_id) const {
  auto it = by_target_.find(target_id);
  return it == by_target_.end() ? nullptr : &instances_[it->second];
}

}  // namespace comparesets
