#include "service/indexed_corpus.h"

namespace comparesets {

std::string ShardKeyRange::ToString() const {
  std::string out = "[";
  out += begin.empty() ? "-inf" : begin;
  out += ", ";
  out += end.empty() ? "+inf" : end;
  out += ")";
  return out;
}

Result<std::shared_ptr<const IndexedCorpus>> IndexedCorpus::Build(
    Corpus corpus, const InstanceOptions& options) {
  std::shared_ptr<IndexedCorpus> indexed(new IndexedCorpus());
  indexed->corpus_ = std::move(corpus);
  if (!indexed->corpus_.finalized()) indexed->corpus_.Finalize();

  // Instances are enumerated after the corpus settled into its final
  // home, so their Product pointers stay valid for our lifetime.
  indexed->instances_ = indexed->corpus_.BuildInstances(options);
  if (indexed->instances_.empty()) {
    return Status::InvalidArgument(
        "corpus yields no problem instances (too few linked products?)");
  }
  indexed->by_target_.reserve(indexed->instances_.size());
  for (size_t i = 0; i < indexed->instances_.size(); ++i) {
    indexed->by_target_.emplace(indexed->instances_[i].target().id, i);
  }
  return std::shared_ptr<const IndexedCorpus>(std::move(indexed));
}

Result<std::shared_ptr<const IndexedCorpus>> IndexedCorpus::BuildFromInstances(
    Corpus corpus,
    const std::vector<std::vector<std::string>>& instance_item_ids,
    const ShardSpec& shard) {
  if (instance_item_ids.empty()) {
    return Status::InvalidArgument("shard " + shard.range.ToString() +
                                   " holds no instances");
  }
  std::shared_ptr<IndexedCorpus> indexed(new IndexedCorpus());
  indexed->corpus_ = std::move(corpus);
  if (!indexed->corpus_.finalized()) indexed->corpus_.Finalize();
  indexed->shard_ = shard;

  // Re-point each id at this corpus's product storage; the enumeration
  // itself (which targets, which comparatives, in what order) was fixed
  // by the caller and is reproduced verbatim.
  indexed->instances_.reserve(instance_item_ids.size());
  for (const std::vector<std::string>& item_ids : instance_item_ids) {
    ProblemInstance instance;
    instance.items.reserve(item_ids.size());
    for (const std::string& id : item_ids) {
      const Product* product = indexed->corpus_.Find(id);
      if (product == nullptr) {
        return Status::Internal(
            "instance references product absent from shard corpus: " + id);
      }
      instance.items.push_back(product);
    }
    if (instance.items.empty()) {
      return Status::InvalidArgument("instance with no items");
    }
    indexed->instances_.push_back(std::move(instance));
  }
  indexed->by_target_.reserve(indexed->instances_.size());
  for (size_t i = 0; i < indexed->instances_.size(); ++i) {
    indexed->by_target_.emplace(indexed->instances_[i].target().id, i);
  }
  return std::shared_ptr<const IndexedCorpus>(std::move(indexed));
}

const ProblemInstance* IndexedCorpus::FindInstance(
    const std::string& target_id) const {
  auto it = by_target_.find(target_id);
  return it == by_target_.end() ? nullptr : &instances_[it->second];
}

}  // namespace comparesets
