#include "service/request_pipeline.h"

namespace comparesets {

Status CheckLive(const ExecControl& control, const char* where) {
  if (control.cancel != nullptr && control.cancel->cancelled()) {
    return Status::Cancelled(std::string("request cancelled before ") + where);
  }
  if (control.deadline != nullptr && control.deadline->Expired()) {
    return Status::DeadlineExceeded(std::string("deadline exceeded before ") +
                                    where);
  }
  return Status::OK();
}

RequestPipeline::RequestPipeline(PipelineOptions options)
    : options_(options) {
  batch_queue_limit_.store(configured_batch_queue(),
                           std::memory_order_relaxed);
}

Status RequestPipeline::Admit(const Deadline& deadline,
                              const CancelToken* cancel,
                              RequestPriority priority) {
  if (options_.max_in_flight == 0) return Status::OK();
  const bool batch = priority == RequestPriority::kBatch;
  const size_t cls = static_cast<size_t>(priority);
  const size_t interactive =
      static_cast<size_t>(RequestPriority::kInteractive);
  std::unique_lock<std::mutex> lock(mutex_);
  // A batch request never takes a freed slot past a waiting interactive
  // request — the admission-level mirror of the scheduler's priority
  // contract.
  if (in_flight_ < options_.max_in_flight &&
      (!batch || queued_[interactive] == 0)) {
    ++in_flight_;
    return Status::OK();
  }
  size_t budget = batch ? batch_queue_limit() : options_.max_queue;
  if (queued_[cls] >= budget) {
    return Status::ResourceExhausted(
        std::string(batch ? "batch " : "") + "admission queue full (" +
        std::to_string(in_flight_) + " in flight, " +
        std::to_string(queued_[cls]) + " queued)");
  }
  ++queued_[cls];
  while (in_flight_ >= options_.max_in_flight ||
         (batch && queued_[interactive] > 0)) {
    if (cancel != nullptr && cancel->cancelled()) {
      --queued_[cls];
      return Status::Cancelled("request cancelled while queued");
    }
    if (deadline.Expired()) {
      --queued_[cls];
      return Status::DeadlineExceeded("deadline exceeded while queued");
    }
    // Bounded wait: a release notifies, but cancellation and deadlines
    // have no notification channel, so poll them a few times per tick.
    double wait = std::clamp(deadline.RemainingSeconds(), 0.0, 0.005);
    cv_.wait_for(lock, std::chrono::duration<double>(wait));
  }
  --queued_[cls];
  ++in_flight_;
  return Status::OK();
}

void RequestPipeline::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
  }
  // notify_all, not notify_one: with two waiter classes a single wake
  // could land on a batch waiter that must keep yielding to a queued
  // interactive waiter.
  cv_.notify_all();
}

}  // namespace comparesets
