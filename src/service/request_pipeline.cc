#include "service/request_pipeline.h"

namespace comparesets {

Status CheckLive(const ExecControl& control, const char* where) {
  if (control.cancel != nullptr && control.cancel->cancelled()) {
    return Status::Cancelled(std::string("request cancelled before ") + where);
  }
  if (control.deadline != nullptr && control.deadline->Expired()) {
    return Status::DeadlineExceeded(std::string("deadline exceeded before ") +
                                    where);
  }
  return Status::OK();
}

RequestPipeline::RequestPipeline(PipelineOptions options)
    : options_(options) {}

Status RequestPipeline::Admit(const Deadline& deadline,
                              const CancelToken* cancel) {
  if (options_.max_in_flight == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(mutex_);
  if (in_flight_ < options_.max_in_flight) {
    ++in_flight_;
    return Status::OK();
  }
  if (queued_ >= options_.max_queue) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(in_flight_) +
        " in flight, " + std::to_string(queued_) + " queued)");
  }
  ++queued_;
  while (in_flight_ >= options_.max_in_flight) {
    if (cancel != nullptr && cancel->cancelled()) {
      --queued_;
      return Status::Cancelled("request cancelled while queued");
    }
    if (deadline.Expired()) {
      --queued_;
      return Status::DeadlineExceeded("deadline exceeded while queued");
    }
    // Bounded wait: a release notifies, but cancellation and deadlines
    // have no notification channel, so poll them a few times per tick.
    double wait = std::clamp(deadline.RemainingSeconds(), 0.0, 0.005);
    cv_.wait_for(lock, std::chrono::duration<double>(wait));
  }
  --queued_;
  ++in_flight_;
  return Status::OK();
}

void RequestPipeline::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
  }
  cv_.notify_one();
}

}  // namespace comparesets
