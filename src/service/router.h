// ShardRouter: the scatter/gather front of a sharded serving deployment.
//
// One router owns N shard engines, each serving a contiguous target-id
// range of the catalog (CorpusPartitioner). A `Select` routes to the
// shard owning its target; a `SelectBatch` splits the batch by shard,
// fans the sub-batches out on the router's own ThreadPool, and
// reassembles responses in request order. Output is bit-identical to a
// single SelectionEngine over the unpartitioned corpus — shards hold
// exact slices of the same instance enumeration, so routing is pure
// dispatch, never approximation.
//
// Operational surface:
//   * Per-shard SwapCorpus — one shard re-extracts from a new catalog
//     and swaps while every other shard keeps its snapshot, caches, and
//     memo (shard-local epochs are the whole point). During a swap the
//     shard's range answers kUnavailable; the rest keep serving.
//   * Shard state — a shard marked down (ops drill, fault isolation)
//     refuses ITS range with kUnavailable; other ranges are untouched.
//   * Shared admission — all shard engines share one RequestPipeline,
//     so max_in_flight is a router-wide budget.
//   * Metrics — the router keeps rollup counters (router.*), can render
//     a merged Prometheus exposition with `shard` labels, and its text
//     dump aggregates engine counters across shards.
//   * Fault injection — seams at the route decision (FaultSite::kRoute)
//     and at each per-shard gather task (FaultSite::kGather).
//
// Threading (docs/execution-model.md): the router's fan-out is a layer
// ABOVE the engines and owns its own pool, one lane per shard
// sub-batch. Each shard engine still applies the engine nesting rule to
// its sub-batch on its own pool, so the two layers never re-enter the
// same pool.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/engine.h"
#include "service/partitioner.h"

namespace comparesets {

struct RouterOptions {
  /// Configuration applied to every shard engine. `shard_id` and
  /// `pipeline` are overwritten by the router (each engine gets its
  /// stable shard id and the shared admission pipeline).
  EngineOptions engine;
  /// Lanes for the scatter/gather fan-out over shards (0 = hardware
  /// concurrency). With <= 1, sub-batches run serially in shard order.
  size_t router_threads = 0;
  /// Deterministic fault injection at the router's seams (kRoute /
  /// kGather); nullptr = no faults. Independent of the engine-level
  /// injector in `engine.fault_injector`.
  std::shared_ptr<FaultInjector> fault_injector;
};

/// Serving state of one shard, surfaced per-range by the router.
enum class ShardState {
  kServing = 0,  ///< Normal operation.
  kSwapping,     ///< Mid-SwapShardCorpus; its range answers kUnavailable.
  kDown,         ///< Marked down; its range answers kUnavailable.
};

/// Stable lowercase name ("serving", "swapping", "down").
const char* ShardStateName(ShardState state);

/// Point-in-time status of one shard (the `serve` status surface).
struct ShardStatus {
  size_t shard_id = 0;
  ShardState state = ShardState::kServing;
  ShardKeyRange range;
  uint64_t corpus_epoch = 0;
  size_t num_instances = 0;
  size_t num_products = 0;
};

class ShardRouter {
 public:
  /// Partitions `corpus` into `num_shards` target-id ranges and builds
  /// one SelectionEngine per shard. num_shards == 1 serves the input
  /// snapshot unpartitioned — byte-for-byte today's single engine.
  static Result<std::unique_ptr<ShardRouter>> Create(
      std::shared_ptr<const IndexedCorpus> corpus, size_t num_shards,
      RouterOptions options = {});

  size_t num_shards() const { return engines_.size(); }

  /// Routes to the shard owning request.target_id and delegates. A
  /// down/swapping shard fails ITS requests with kUnavailable naming
  /// the affected range; other ranges are unaffected.
  Result<SelectResponse> Select(const SelectRequest& request) const;

  /// Scatter/gather: splits the batch by shard, runs each sub-batch on
  /// the owning engine (concurrently across shards when the router
  /// pool has lanes), reassembles in request order. Requests whose
  /// shard is unavailable fail individually; the rest proceed. Each
  /// request's deadline spans the whole gather — time lost before its
  /// shard dispatches counts against it.
  std::vector<Result<SelectResponse>> SelectBatch(
      const std::vector<SelectRequest>& requests) const;

  /// Re-extracts shard `shard_id`'s slice of `full_corpus` (under the
  /// partition bounds fixed at Create) and swaps it into that shard's
  /// engine. Only that shard's epoch moves; every other shard keeps
  /// its snapshot and warm caches. While the swap runs the shard is
  /// kSwapping (its range answers kUnavailable); on success it returns
  /// to kServing (also reviving a kDown shard), on failure the prior
  /// state and snapshot are kept.
  Status SwapShardCorpus(size_t shard_id,
                         std::shared_ptr<const IndexedCorpus> full_corpus);

  /// Publishes an incrementally built shard snapshot from the streaming
  /// ingestion path (service/ingest). Unlike SwapShardCorpus the
  /// snapshot arrives already extracted — the DeltaCorpusBuilder built
  /// it under the SAME partition bounds fixed at Create, through the
  /// same ExtractShardFromParts seam the swap path uses — so this is
  /// pure publication: the same kSwapping window, the same shard-local
  /// epoch bump, every other shard's caches stay warm. `reviews_added`
  /// flows into the engine's cumulative ingest counter (RequestTrace's
  /// ingest_records).
  Status ApplyShardDelta(size_t shard_id,
                         std::shared_ptr<const IndexedCorpus> snapshot,
                         size_t reviews_added);

  /// Marks a shard kDown / back to kServing (ops drills, tests).
  Status SetShardState(size_t shard_id, ShardState state);

  /// The shard whose range contains `target_id` (total: every id maps
  /// to exactly one shard, known or not).
  size_t ShardForTarget(const std::string& target_id) const;

  /// Direct access to a shard's engine (tests, status surfaces).
  const SelectionEngine& shard_engine(size_t shard_id) const {
    return *engines_[shard_id];
  }

  /// Mutable engine access for runtime policy levers — the
  /// SloController flips each engine's quality floor through this.
  SelectionEngine* mutable_shard_engine(size_t shard_id) {
    return engines_[shard_id].get();
  }

  /// The admission pipeline shared by every shard engine (the
  /// SloController's batch-budget lever).
  RequestPipeline* pipeline() const { return pipeline_.get(); }

  /// Partition lower bounds fixed at Create (bounds[0] == "").
  const std::vector<std::string>& bounds() const { return bounds_; }

  std::vector<ShardStatus> ShardStatuses() const;

  /// Text dump: router counters, then engine instruments aggregated
  /// across shards (same line format as one engine's dump), then — on
  /// a multi-shard router — one section per shard.
  std::string DumpMetrics() const;

  /// Merged Prometheus exposition: router-level metrics unlabeled,
  /// every shard engine's metrics labeled shard="<id>", one # TYPE
  /// header per family.
  std::string RenderPrometheus() const;

  /// All shards' trace rings as JSONL, shard by shard, oldest first
  /// within each shard. Lines carry shard_id + corpus_epoch.
  std::string DumpTraces() const;

  /// All shards' retained traces, in the same order as DumpTraces.
  std::vector<RequestTrace> Traces() const;

 private:
  ShardRouter(RouterOptions options, std::vector<std::string> bounds);

  /// kUnavailable for a non-serving shard, naming its range; OK else.
  Status CheckRoutable(size_t shard) const;

  /// The half-open range shard `shard_id` owns, from bounds_.
  ShardKeyRange RangeOf(size_t shard_id) const;

  RouterOptions options_;
  std::vector<std::string> bounds_;
  std::shared_ptr<RequestPipeline> pipeline_;
  std::vector<std::unique_ptr<SelectionEngine>> engines_;
  /// Per-shard ShardState, atomics so the hot path reads lock-free.
  std::unique_ptr<std::atomic<int>[]> states_;
  /// Serializes swaps and state changes (readers never take it).
  mutable std::mutex admin_mutex_;
  mutable MetricsRegistry metrics_;
  mutable ThreadPool pool_;
};

}  // namespace comparesets
