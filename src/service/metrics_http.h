// Minimal HTTP/1.0 exporter for the Prometheus text endpoint: one
// accept loop on a background thread, answering `GET /metrics` with
// whatever the injected renderer produces (an engine's or router's
// RenderPrometheus()). Every other path is 404, every other method 405,
// and each connection is closed after one response — exactly the
// subset a Prometheus scraper (or `curl`) needs, with no HTTP library
// dependency.
//
// Per-connection reads and writes are timeout-bounded, so a hung
// scraper cannot park the serving thread; Stop() interrupts the accept
// loop and joins, making shutdown deterministic for the CLI tests.

#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "net/socket.h"
#include "util/status.h"

namespace comparesets {

/// Background thread serving Prometheus text over HTTP/1.0.
class MetricsHttpServer {
 public:
  /// Produces the exposition document for one scrape. Called on the
  /// serving thread; must be safe to invoke concurrently with request
  /// traffic (RenderPrometheus snapshots under its own locks).
  using Renderer = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer() { Stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see
  /// bound_address()) and starts the accept loop.
  Status Start(int port, Renderer renderer);

  /// The bound transport address ("tcp:127.0.0.1:PORT"); valid after a
  /// successful Start.
  const std::string& bound_address() const { return bound_address_; }

  /// The bound TCP port; 0 before Start.
  int port() const { return port_; }

  /// Interrupts the accept loop, joins the thread, closes the
  /// listener. Idempotent; called by the destructor.
  void Stop();

 private:
  void Serve();
  void Handle(Socket connection);

  ListenSocket listener_;
  Renderer renderer_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::string bound_address_;
  int port_ = 0;
};

}  // namespace comparesets
