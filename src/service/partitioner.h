// CorpusPartitioner: splits one catalog into N contiguous target-id
// range shards, each a self-contained IndexedCorpus.
//
// The routing key is the instance's *target* product id — the paper's
// per-target formulation (each CompaReSetS request is anchored to a
// single target p1) makes the target the natural partition key. Bounds
// are chosen so shards carry (near-)equal instance counts, not equal id
// spans: catalogs cluster ids, and balanced instances is what balances
// load.
//
// Two invariants make shards bit-identical to the monolithic corpus:
//   1. Instances are enumerated ONCE, on the full corpus. Each shard
//      receives its slice of that enumeration as explicit item-id lists
//      (IndexedCorpus::BuildFromInstances) — re-running BuildInstances
//      per shard would re-apply eligibility filters against the reduced
//      catalog and could change instance content.
//   2. Each shard corpus holds the product *closure* of its instances:
//      every in-range target plus every product any of its instances
//      references as a comparative, copied in original corpus order.
//      A comparative can therefore be replicated into several shards;
//      that is the cost of shards answering without cross-shard RPCs.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "service/indexed_corpus.h"
#include "util/status.h"

namespace comparesets {

class CorpusPartitioner {
 public:
  /// Lexicographic lower bounds for `num_shards` contiguous target-id
  /// ranges, balanced by instance count. bounds[0] is always "" (the
  /// start of the key space); shard s owns [bounds[s], bounds[s+1]),
  /// with the last shard unbounded above. Fails when num_shards is 0 or
  /// exceeds the instance count (an empty shard can serve nothing).
  static Result<std::vector<std::string>> ComputeBounds(
      const IndexedCorpus& full, size_t num_shards);

  /// Extracts shard `shard_id` of the partition induced by `bounds`
  /// from `full`: the instances whose target id falls in the shard's
  /// range plus the product closure they reference. `bounds` must be as
  /// produced by ComputeBounds (bounds[0] == "", strictly increasing).
  static Result<std::shared_ptr<const IndexedCorpus>> ExtractShard(
      const IndexedCorpus& full, const std::vector<std::string>& bounds,
      size_t shard_id);

  /// ComputeBounds + ExtractShard for every shard. num_shards == 1
  /// returns {full} unchanged — the unsharded snapshot IS the one-shard
  /// partition, so the single-shard router path shares every byte with
  /// today's engine.
  static Result<std::vector<std::shared_ptr<const IndexedCorpus>>> Partition(
      std::shared_ptr<const IndexedCorpus> full, size_t num_shards);

  /// ExtractShard's core, on raw parts instead of a built IndexedCorpus:
  /// `instance_item_ids` is the FULL corpus's enumeration as item-id
  /// lists (target first), in enumeration order. This is the seam the
  /// incremental ingestion builder (service/ingest/delta.h) shares with
  /// ExtractShard, so a delta-built shard snapshot is constructed by the
  /// very same code path a full re-extraction would take — which is what
  /// makes the delta-vs-rebuild oracle hold by construction.
  static Result<std::shared_ptr<const IndexedCorpus>> ExtractShardFromParts(
      const Corpus& full_corpus,
      const std::vector<std::vector<std::string>>& instance_item_ids,
      const std::vector<std::string>& bounds, size_t shard_id);
};

}  // namespace comparesets
