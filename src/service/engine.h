// SelectionEngine: the serving façade of the library. One engine owns
// an immutable IndexedCorpus snapshot, a bounded VectorCache of
// prepared per-instance contexts, a fixed-size ThreadPool, and a
// MetricsRegistry — and answers structured per-target requests
// (`Select`) or whole batches (`SelectBatch`) from that warm state.
//
// This is the layer the ROADMAP's "many concurrent comparison requests
// over one catalog" goal rests on: the repro harness (eval/runner), the
// CLI `serve` subcommand, and the table/figure benches all sit on top
// of it, so the cached/pooled path is exercised by the reproduction
// itself.
//
// Thread-safety: Select/SelectBatch are safe to call concurrently; the
// catalog can be replaced at runtime with SwapCorpus (in-flight
// requests finish against the snapshot they started with).

#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/selector.h"
#include "eval/alignment.h"
#include "service/indexed_corpus.h"
#include "service/metrics.h"
#include "service/vector_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace comparesets {

struct EngineOptions {
  /// Worker threads for SelectBatch (0 = hardware concurrency).
  size_t threads = 0;
  /// Max prepared instances kept warm. Size to the working set: one
  /// entry per (target, comparative set, opinion definition) queried.
  size_t cache_capacity = 256;
  /// Max fully solved responses memoized (0 disables the memo). Every
  /// selector is deterministic given (vectors, options), so an exactly
  /// repeated request returns a bit-identical response — the memo lets
  /// repeat queries skip the solve entirely, not just the vector build.
  size_t result_capacity = 1024;
  /// Opinion definition used to vectorize reviews. Fixed per engine
  /// (it changes every cached vector); run one engine per definition.
  OpinionDefinition opinion = OpinionDefinition::kBinary;
  /// Whether responses carry alignment scores (pairwise ROUGE — adds
  /// O(pairs · text) per request; serving paths may turn it off).
  bool measure_alignment = true;
};

struct SelectRequest {
  /// Target product id (instance resolved from also-bought metadata).
  std::string target_id;
  /// Explicit comparative product ids; empty = use the corpus's
  /// enumerated instance for target_id.
  std::vector<std::string> comparative_ids;
  /// Selector name, as accepted by MakeSelector.
  std::string selector = "CompaReSetS+";
  /// m / λ / μ / seed / sync rounds.
  SelectorOptions options;
};

struct SelectResponse {
  std::string target_id;
  /// Item ids in instance order (index 0 = target).
  std::vector<std::string> item_ids;
  /// Selected review indices per item, aligned with item_ids.
  std::vector<Selection> selections;
  /// Eq. 5 objective of the selections under the request's λ, μ.
  double objective = 0.0;
  /// Pairwise-ROUGE alignment (only when EngineOptions.measure_alignment).
  AlignmentScores alignment;
  /// Whether the response was served from warm state — prepared vectors
  /// from the VectorCache, or the whole response from the result memo.
  bool cache_hit = false;
  /// Whether the whole solved response came from the result memo (the
  /// request repeated a previous one exactly; no solve ran).
  bool result_cache_hit = false;
  /// Seconds resolving + vectorizing the instance (≈0 on cache hit).
  double prepare_seconds = 0.0;
  /// Seconds inside the selector (the paper's runtime measure; 0 on a
  /// result-memo hit).
  double solve_seconds = 0.0;
};

/// One instance's outcome in a workload-style batched solve.
struct InstanceSolve {
  SelectionResult result;
  /// Per-instance solve seconds. Summing these gives the serial-cost
  /// runtime measure used by Figure 7, not wall-clock.
  double seconds = 0.0;
};

class SelectionEngine {
 public:
  explicit SelectionEngine(std::shared_ptr<const IndexedCorpus> corpus,
                           EngineOptions options = {});

  /// Answers one request. Unknown selector names, unknown target ids,
  /// and unknown comparative ids return a Status (no crash paths).
  Result<SelectResponse> Select(const SelectRequest& request) const;

  /// Answers a batch concurrently on the internal pool. Responses are
  /// in request order; each request succeeds or fails independently.
  std::vector<Result<SelectResponse>> SelectBatch(
      const std::vector<SelectRequest>& requests) const;

  /// Replaces the catalog snapshot. The vector cache is invalidated;
  /// in-flight requests keep the snapshot they resolved against.
  void SwapCorpus(std::shared_ptr<const IndexedCorpus> corpus);

  /// Current catalog snapshot.
  std::shared_ptr<const IndexedCorpus> corpus() const;

  const EngineOptions& options() const { return options_; }
  VectorCacheStats CacheStats() const { return cache_.Stats(); }

  /// Text dump of counters/gauges/histograms (cache stats refreshed).
  std::string DumpMetrics() const;

  /// Low-level batched execution backend: runs `selector` over every
  /// prepared vector context, distributing instances over `pool`
  /// (nullptr = serial, in index order). Shared with the eval runner,
  /// which layers alignment aggregation on top.
  static Result<std::vector<InstanceSolve>> SolveInstances(
      const ReviewSelector& selector,
      const std::vector<InstanceVectors>& vectors,
      const SelectorOptions& options, ThreadPool* pool);

 private:
  /// Resolves the request's instance against `corpus` and returns its
  /// prepared bundle, from cache when warm (under `key`, which already
  /// encodes the snapshot epoch). Sets *cache_hit accordingly.
  Result<std::shared_ptr<const PreparedInstance>> Prepare(
      std::shared_ptr<const IndexedCorpus> corpus, const std::string& key,
      const SelectRequest& request, bool* cache_hit) const;

  /// Result-memo LRU plumbing (guarded by result_mutex_). Lookup copies
  /// the entry out under the lock and promotes it to most-recently-used.
  bool ResultLookup(const std::string& key, SelectResponse* out) const;
  void ResultStore(const std::string& key, const SelectResponse& response)
      const;

  EngineOptions options_;
  mutable std::mutex corpus_mutex_;
  std::shared_ptr<const IndexedCorpus> corpus_;
  /// Bumped by SwapCorpus; part of every cache key so an entry built
  /// against an old snapshot can never serve a new one.
  uint64_t corpus_epoch_ = 0;
  mutable VectorCache cache_;

  /// Fully solved responses, keyed on the vector-cache key extended
  /// with selector name + every SelectorOptions field. Front = MRU.
  struct ResultEntry {
    std::string key;
    SelectResponse response;
  };
  mutable std::mutex result_mutex_;
  mutable std::list<ResultEntry> result_lru_;
  mutable std::unordered_map<std::string, std::list<ResultEntry>::iterator>
      result_index_;

  mutable MetricsRegistry metrics_;
  mutable ThreadPool pool_;
};

}  // namespace comparesets
