// SelectionEngine: the serving façade of the library. One engine owns
// an immutable IndexedCorpus snapshot, a bounded VectorCache of
// prepared per-instance contexts, a fixed-size ThreadPool, and a
// MetricsRegistry — and answers structured per-target requests
// (`Select`) or whole batches (`SelectBatch`) from that warm state.
//
// This is the layer the ROADMAP's "many concurrent comparison requests
// over one catalog" goal rests on: the repro harness (eval/runner), the
// CLI `serve` subcommand, and the table/figure benches all sit on top
// of it, so the cached/pooled path is exercised by the reproduction
// itself.
//
// Serving hardening (request lifecycle: admission → queue → prepare →
// solve → memo):
//   * Deadlines & cancellation — every request may carry a deadline and
//     a CancelToken; both are threaded as an ExecControl into the
//     selector/NOMP/NNLS inner loops, so a blowup returns
//     kDeadlineExceeded / kCancelled instead of hanging a pool worker.
//   * Admission control & retry — both live in a RequestPipeline
//     (service/request_pipeline.h). A standalone engine builds its own
//     private pipeline from the knobs below; a ShardRouter passes one
//     shared pipeline to all its shard engines so the admission budget
//     spans the whole router.
//   * Fault injection — a deterministic FaultInjector can be installed
//     at the cache-lookup, solve, and corpus-swap seams so tests force
//     timeouts, spurious errors, and slow paths reproducibly.
//   * Tracing — each request leaves a RequestTrace (id, queue wait,
//     attempts, solver iterations, per-stage wall time) in the
//     MetricsRegistry's ring, dumpable as JSONL (`serve --trace_out`).
//
// Thread-safety: Select/SelectBatch are safe to call concurrently; the
// catalog can be replaced at runtime with SwapCorpus (in-flight
// requests finish against the snapshot they started with).

#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/selector.h"
#include "eval/alignment.h"
#include "service/fault_injector.h"
#include "service/indexed_corpus.h"
#include "service/metrics.h"
#include "service/request_pipeline.h"
#include "service/vector_cache.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace comparesets {

struct EngineOptions {
  /// Worker threads in the engine's ONE pool (0 = hardware
  /// concurrency). SelectBatch fans requests out over it; a single
  /// Select lends it to the request's intra-request fan-out instead
  /// (docs/execution-model.md). With 1, batches run serially in order
  /// on the calling thread, so a repeated target later in the batch is
  /// guaranteed to warm-hit the vector cache.
  size_t threads = 0;
  /// Cap on the lanes one request's *internal* fan-out may use (the
  /// per-item solves, CompaReSetS+ round refits, similarity-graph
  /// rows). 0 = whole pool; 1 = solve serially. Runtime control only:
  /// responses are bit-identical at every setting.
  size_t max_intra_request_threads = 0;
  /// Max prepared instances kept warm. Size to the working set: one
  /// entry per (target, comparative set, opinion definition) queried.
  size_t cache_capacity = 256;
  /// Max fully solved responses memoized (0 disables the memo). Every
  /// selector is deterministic given (vectors, options), so an exactly
  /// repeated request returns a bit-identical response — the memo lets
  /// repeat queries skip the solve entirely, not just the vector build.
  size_t result_capacity = 1024;
  /// Opinion definition used to vectorize reviews. Fixed per engine
  /// (it changes every cached vector); run one engine per definition.
  OpinionDefinition opinion = OpinionDefinition::kBinary;
  /// Whether responses carry alignment scores (pairwise ROUGE — adds
  /// O(pairs · text) per request; serving paths may turn it off).
  bool measure_alignment = true;
  /// Admission control: max requests solving at once (0 = unthrottled).
  /// Excess requests wait in the admission queue. Ignored when an
  /// external `pipeline` is supplied — the pipeline's options rule.
  size_t max_in_flight = 0;
  /// Waiting slots beyond max_in_flight for interactive requests. A
  /// request arriving when its class's queue is full is refused with
  /// kResourceExhausted.
  size_t max_queue = 64;
  /// Waiting slots for batch-priority requests (0 = same as max_queue).
  /// Batch sheds first: this budget is separate from the interactive
  /// one and is the lever the SloController shrinks under SLO pressure.
  size_t max_batch_queue = 0;
  /// Scheduling class SelectBatch demotes its sub-requests to (each
  /// sub-request's effective priority is the more-batch of its own and
  /// this). kBatch (default) keeps background batches out of the way
  /// of interactive lone Selects; kInteractive restores the pre-
  /// priority FIFO behaviour where batches compete head-on.
  RequestPriority batch_priority = RequestPriority::kBatch;
  /// Attempts per request for *transient* failures (injected faults,
  /// cache backend errors). 1 = no retries. Non-transient failures
  /// (bad ids, deadline, cancellation) are never retried.
  int max_attempts = 1;
  /// First retry backoff; doubles per attempt. Sleeps are clamped to
  /// the request's remaining deadline.
  double retry_backoff_seconds = 0.001;
  /// Per-request trace ring size (0 disables tracing).
  size_t trace_capacity = 256;
  /// Deterministic fault injection at the engine's seams (tests /
  /// chaos drills); nullptr = no faults.
  std::shared_ptr<FaultInjector> fault_injector;
  /// Cross-request batched-kernel window for SelectBatch (0 or 1 =
  /// off). Consecutive requests are staged in windows of this size:
  /// each window snapshots the corpus epoch once, prepares its unique
  /// instances, and builds their per-item design systems in one batched
  /// Gram kernel pass (GramSystem::BuildBatch via the selector's
  /// PrefetchSystems hook) before any request in the window solves;
  /// exact repeats inside a pooled window coalesce onto one lane so
  /// they deterministically memo-hit their head. Purely a scheduling /
  /// locality knob: every response payload is bit-identical to the
  /// unwindowed path (warm-state flags differ — prefetched requests
  /// report cache_hit = true).
  size_t batch_kernel_window = 0;
  /// Stable shard id, stamped into every RequestTrace and used as the
  /// Prometheus `shard` label. 0 for an unsharded engine.
  size_t shard_id = 0;
  /// Engine-wide degradation floor, combined with each request's
  /// options.min_tier by LooserTier (either side may loosen, neither
  /// may tighten the other). With the default kExact the engine
  /// behaves exactly as before tiers existed: overload rejects with
  /// kResourceExhausted and deadline expiry is an error. At kAnytime
  /// or looser, an admission refusal degrades instead of rejecting —
  /// the request is answered inline with the greedy incumbent (tier
  /// kAnytime) without taking a solve slot (greedy costs orders less
  /// than the exact path the slots protect) — and deadline pressure
  /// inside the solve returns the incumbent via SelectTiered.
  QualityTier min_quality_tier = QualityTier::kExact;
  /// Admission/retry policy shared with other engines. nullptr = the
  /// engine builds a private RequestPipeline from the four knobs above
  /// (the standalone behaviour). A ShardRouter installs one pipeline
  /// across all its shard engines so max_in_flight is a router-wide
  /// budget, not per-shard.
  std::shared_ptr<RequestPipeline> pipeline;
};

struct SelectRequest {
  /// Target product id (instance resolved from also-bought metadata).
  std::string target_id;
  /// Explicit comparative product ids; empty = use the corpus's
  /// enumerated instance for target_id.
  std::vector<std::string> comparative_ids;
  /// Selector name, as accepted by MakeSelector.
  std::string selector = "CompaReSetS+";
  /// m / λ / μ / seed / sync rounds. The `parallel` member is
  /// overwritten by the engine — pool lending follows the nesting rule
  /// (outer batch fan-out wins), never the caller's value.
  SelectorOptions options;
  /// Per-request latency budget, spanning queue wait + prepare + solve
  /// (<= 0: none). Expiry returns kDeadlineExceeded. Runtime control
  /// only — deliberately NOT part of the result-memo key, since it
  /// never changes what a completed solve returns.
  double deadline_seconds = 0.0;
  /// Cooperative cancellation (nullptr: not cancellable). Checked at
  /// the same iteration boundaries as the deadline; also runtime-only.
  const CancelToken* cancel = nullptr;
  /// Scheduling class of this request: admission budget, queue
  /// precedence, and intra-request fan-out class all follow it. A
  /// SelectBatch demotes its sub-requests by EngineOptions::
  /// batch_priority (never promotes). Runtime control only — like the
  /// deadline it is deliberately NOT part of the result-memo key,
  /// since it never changes what a completed solve returns.
  RequestPriority priority = RequestPriority::kInteractive;
};

struct SelectResponse {
  std::string target_id;
  /// Item ids in instance order (index 0 = target).
  std::vector<std::string> item_ids;
  /// Selected review indices per item, aligned with item_ids.
  std::vector<Selection> selections;
  /// Eq. 5 objective of the selections under the request's λ, μ.
  double objective = 0.0;
  /// Quality tier of the answer (core/selector.h). kExact responses
  /// are bit-identical to the pre-tier engine's output; kAnytime and
  /// kSampled only occur when the effective floor admitted them.
  QualityTier tier = QualityTier::kExact;
  /// The selection's objective-gap bound (0 unless tier is kSampled).
  double objective_gap = 0.0;
  /// Pairwise-ROUGE alignment (only when EngineOptions.measure_alignment).
  AlignmentScores alignment;
  /// Whether the response was served from warm state — prepared vectors
  /// from the VectorCache, or the whole response from the result memo.
  bool cache_hit = false;
  /// Whether the whole solved response came from the result memo (the
  /// request repeated a previous one exactly; no solve ran).
  bool result_cache_hit = false;
  /// Seconds resolving + vectorizing the instance (≈0 on cache hit).
  double prepare_seconds = 0.0;
  /// Seconds inside the selector (the paper's runtime measure; 0 on a
  /// result-memo hit).
  double solve_seconds = 0.0;
  /// Full lifecycle trace of THIS request (queue wait, attempts, solver
  /// iterations, …) — always fresh, even when the payload came from the
  /// memo. The same record lands in the engine's trace ring.
  RequestTrace trace;
};

/// One instance's outcome in a workload-style batched solve.
struct InstanceSolve {
  SelectionResult result;
  /// Per-instance solve seconds. Summing these gives the serial-cost
  /// runtime measure used by Figure 7, not wall-clock.
  double seconds = 0.0;
};

class SelectionEngine {
 public:
  explicit SelectionEngine(std::shared_ptr<const IndexedCorpus> corpus,
                           EngineOptions options = {});

  /// Answers one request, lending the whole pool (capped by
  /// max_intra_request_threads) to the request's internal per-item
  /// fan-out. Unknown selector names, unknown target ids, and unknown
  /// comparative ids return a Status (no crash paths); deadline expiry
  /// / cancellation / admission overflow return kDeadlineExceeded /
  /// kCancelled / kResourceExhausted.
  Result<SelectResponse> Select(const SelectRequest& request) const;

  /// Answers a batch concurrently on the internal pool. Responses are
  /// in request order; each request succeeds or fails independently.
  /// Nesting rule: requests inside a pooled batch solve serially
  /// internally (the pool is already saturated by the batch fan-out);
  /// on a single-threaded engine the inline, in-order requests get the
  /// intra-request context instead. Either way each response is
  /// bit-identical to what Select would return.
  std::vector<Result<SelectResponse>> SelectBatch(
      const std::vector<SelectRequest>& requests) const;

  /// Replaces the catalog snapshot. The vector cache is invalidated;
  /// in-flight requests keep the snapshot they resolved against.
  /// Fails only under fault injection at the corpus-swap seam (the
  /// snapshot is left untouched then).
  Status SwapCorpus(std::shared_ptr<const IndexedCorpus> corpus);

  /// Publishes an incrementally built snapshot from the streaming
  /// ingestion path (service/ingest). Mechanically identical to
  /// SwapCorpus — same epoch bump, same cache/memo invalidation, same
  /// fault seam — but additionally accounts `reviews_added` streamed
  /// reviews into this engine's cumulative ingest counter, which every
  /// subsequent RequestTrace carries as `ingest_records`. Shard-local:
  /// applying a delta here never moves another shard's epoch, so the
  /// other shards keep their warm caches (the same isolation SwapCorpus
  /// gives shard swaps).
  Status ApplyCorpusDelta(std::shared_ptr<const IndexedCorpus> corpus,
                          size_t reviews_added);

  /// Current catalog snapshot.
  std::shared_ptr<const IndexedCorpus> corpus() const;

  /// Epoch of the current snapshot: 0 at construction, +1 per
  /// SwapCorpus. Shard-local — one shard swapping never moves another
  /// shard's epoch, which is what keeps the others' caches warm.
  uint64_t corpus_epoch() const;

  /// Cumulative streamed reviews delta-applied to this engine (sum of
  /// every ApplyCorpusDelta's reviews_added). 0 on engines that never
  /// ingest; monotonic, never reset by SwapCorpus.
  uint64_t ingested_reviews() const {
    return ingested_reviews_.load(std::memory_order_relaxed);
  }

  const EngineOptions& options() const { return options_; }
  VectorCacheStats CacheStats() const { return cache_.Stats(); }

  /// The engine-wide degradation floor currently in force:
  /// options().min_quality_tier unless the SLO controller loosened it.
  QualityTier quality_floor() const {
    return static_cast<QualityTier>(
        quality_floor_.load(std::memory_order_relaxed));
  }

  /// Adjusts the degradation floor at runtime — the SloController's
  /// shedding lever. `slo_driven` marks whether the new floor is SLO
  /// pressure (degrades count into `engine.slo_degrades` and the
  /// `engine.slo_shedding` gauge flips) or a restore of the configured
  /// policy. Requests already past their floor check are unaffected.
  void SetQualityFloor(QualityTier floor, bool slo_driven);

  /// The admission pipeline this engine uses (private or shared).
  RequestPipeline* pipeline() const { return options_.pipeline.get(); }

  /// Text dump of counters/gauges/histograms (cache stats refreshed).
  std::string DumpMetrics() const;

  /// Point-in-time copy of the engine's instruments (cache stats
  /// refreshed) — what a router aggregates into rollups.
  MetricsSnapshot SnapshotMetrics() const;

  /// Prometheus text exposition of this engine's metrics, labeled
  /// shard="<shard_id>".
  std::string RenderPrometheus() const;

  /// The per-request trace ring as JSONL, oldest first.
  std::string DumpTraces() const { return metrics_.DumpTracesJsonl(); }

  /// Retained request traces, oldest first.
  std::vector<RequestTrace> Traces() const { return metrics_.Traces(); }

  /// Low-level batched execution backend: runs `selector` over every
  /// prepared vector context, distributing instances over `pool`
  /// (nullptr = serial, in index order). Shared with the eval runner,
  /// which layers alignment aggregation on top. `control` (optional)
  /// threads a shared deadline/cancellation into every instance solve.
  static Result<std::vector<InstanceSolve>> SolveInstances(
      const ReviewSelector& selector,
      const std::vector<InstanceVectors>& vectors,
      const SelectorOptions& options, ThreadPool* pool,
      const ExecControl* control = nullptr);

 private:
  /// Select with an explicit intra-request context — the single place
  /// the nesting rule is decided: Select passes the pool, a pooled
  /// SelectBatch passes an empty context. `priority` is the request's
  /// EFFECTIVE class (after any batch demotion): it picks the admission
  /// budget and is stamped into the trace.
  Result<SelectResponse> SelectWithParallel(
      const SelectRequest& request, const ParallelContext& parallel,
      RequestPriority priority) const;

  /// One try of the prepare → solve → memo pipeline (everything past
  /// admission and the memo lookup). Transient failures bubble up for
  /// the retry loop in SelectWithParallel. `parallel` replaces the
  /// request options' context before the solve.
  Result<SelectResponse> SelectAttempt(
      const SelectRequest& request,
      std::shared_ptr<const IndexedCorpus> corpus,
      const std::string& prepare_key, const std::string& result_key,
      const ExecControl& control, const ParallelContext& parallel,
      RequestTrace* trace) const;

  /// Records the trace and error counters of a failed request.
  Status FinishError(RequestTrace trace, Status status,
                     const Timer& total) const;

  /// The degraded answer an admission refusal falls back to when the
  /// effective floor admits kAnytime: prepare (cache-served when warm)
  /// + the greedy incumbent, solved inline WITHOUT a pipeline slot.
  /// Never memoized — overload answers must not shadow exact ones.
  Result<SelectResponse> DegradedAttempt(const SelectRequest& request,
                                         std::shared_ptr<const IndexedCorpus>
                                             corpus,
                                         const std::string& prepare_key,
                                         const ExecControl& control,
                                         const ParallelContext& parallel,
                                         RequestTrace* trace) const;

  /// Warm-up for one batch window [begin, end): prepares every unique
  /// (instance, selector, λ) combination once and batch-builds its
  /// per-item design systems (one Gram kernel pass per combination).
  /// Failures are silent — the requests themselves surface them.
  void PrefetchWindow(const std::vector<SelectRequest>& requests, size_t begin,
                      size_t end) const;

  /// Runs window [begin, end) of a windowed batch: inline in order on a
  /// single-threaded engine, pooled with exact repeats coalesced onto
  /// their head's lane otherwise.
  void RunWindow(const std::vector<SelectRequest>& requests, size_t begin,
                 size_t end,
                 std::vector<std::optional<Result<SelectResponse>>>* slots)
      const;

  /// Resolves the request's instance against `corpus` and returns its
  /// prepared bundle, from cache when warm (under `key`, which already
  /// encodes the snapshot epoch). Sets *cache_hit accordingly.
  Result<std::shared_ptr<const PreparedInstance>> Prepare(
      std::shared_ptr<const IndexedCorpus> corpus, const std::string& key,
      const SelectRequest& request, bool* cache_hit) const;

  /// Result-memo LRU plumbing (guarded by result_mutex_). Lookup copies
  /// the entry out under the lock and promotes it to most-recently-used.
  bool ResultLookup(const std::string& key, SelectResponse* out) const;
  void ResultStore(const std::string& key, const SelectResponse& response)
      const;

  /// Publishes cache sizes as gauges (shared by DumpMetrics and
  /// SnapshotMetrics so both report fresh values).
  void RefreshGauges() const;

  EngineOptions options_;
  mutable std::mutex corpus_mutex_;
  std::shared_ptr<const IndexedCorpus> corpus_;
  /// Bumped by SwapCorpus; part of every cache key so an entry built
  /// against an old snapshot can never serve a new one.
  uint64_t corpus_epoch_ = 0;
  /// Cumulative streamed reviews applied via ApplyCorpusDelta.
  std::atomic<uint64_t> ingested_reviews_{0};
  mutable VectorCache cache_;

  /// Fully solved responses, keyed on the vector-cache key extended
  /// with selector name + every SelectorOptions field. Front = MRU.
  struct ResultEntry {
    std::string key;
    SelectResponse response;
  };
  mutable std::mutex result_mutex_;
  mutable std::list<ResultEntry> result_lru_;
  mutable std::unordered_map<std::string, std::list<ResultEntry>::iterator>
      result_index_;

  mutable std::atomic<uint64_t> next_request_id_{0};
  /// Degradation floor currently in force (QualityTier as int, so the
  /// SLO controller can move it without a lock) + whether the current
  /// value is SLO-driven shedding rather than configured policy.
  std::atomic<int> quality_floor_{static_cast<int>(QualityTier::kExact)};
  std::atomic<bool> slo_shedding_{false};
  mutable MetricsRegistry metrics_;
  mutable ThreadPool pool_;
};

}  // namespace comparesets
