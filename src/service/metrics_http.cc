#include "service/metrics_http.h"

#include <cstdlib>
#include <utility>

namespace comparesets {

namespace {

/// Bounds one scraper connection end to end; a peer that stalls longer
/// forfeits its response and the loop moves on.
constexpr double kIoTimeoutSeconds = 5.0;

/// Longest accepted request line. "GET /metrics HTTP/1.0" is 21 bytes;
/// anything approaching the cap is garbage.
constexpr size_t kMaxRequestLineBytes = 4096;

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.0 200 OK";
    case 404:
      return "HTTP/1.0 404 Not Found";
    case 405:
      return "HTTP/1.0 405 Method Not Allowed";
    default:
      return "HTTP/1.0 500 Internal Server Error";
  }
}

std::string BuildResponse(int code, const std::string& body) {
  std::string out = StatusLine(code);
  out += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8";
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Status MetricsHttpServer::Start(int port, Renderer renderer) {
  if (thread_.joinable()) {
    return Status::InvalidArgument("metrics server already started");
  }
  if (!renderer) {
    return Status::InvalidArgument("metrics server needs a renderer");
  }
  COMPARESETS_ASSIGN_OR_RETURN(
      listener_,
      ListenSocket::Listen("tcp:127.0.0.1:" + std::to_string(port), 16));
  bound_address_ = listener_.bound_address();
  // bound_address is "tcp:HOST:PORT"; the port is everything after the
  // last colon.
  size_t colon = bound_address_.rfind(':');
  port_ = std::atoi(bound_address_.c_str() + colon + 1);
  renderer_ = std::move(renderer);
  stopping_.store(false);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true);
  listener_.Interrupt();
  thread_.join();
  listener_.Close();
}

void MetricsHttpServer::Serve() {
  while (!stopping_.load()) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      // kUnavailable after Interrupt() is the loop's exit signal; any
      // other accept failure on a loopback listener is equally final.
      return;
    }
    Handle(std::move(accepted).value());
  }
}

void MetricsHttpServer::Handle(Socket connection) {
  // Read byte-wise up to the end of the request line; the handful of
  // header lines a scraper sends after it are irrelevant (HTTP/1.0,
  // one response, connection closed), so they are simply not drained.
  std::string line;
  while (line.size() < kMaxRequestLineBytes) {
    char c = 0;
    if (!connection.RecvAll(&c, 1, kIoTimeoutSeconds).ok()) return;
    if (c == '\n') break;
    if (c != '\r') line.push_back(c);
  }

  int code;
  std::string body;
  if (line.compare(0, 4, "GET ") != 0) {
    code = 405;
    body = "only GET is supported\n";
  } else {
    size_t path_end = line.find(' ', 4);
    std::string path = line.substr(4, path_end == std::string::npos
                                          ? std::string::npos
                                          : path_end - 4);
    if (path == "/metrics") {
      code = 200;
      body = renderer_();
    } else {
      code = 404;
      body = "try /metrics\n";
    }
  }
  std::string response = BuildResponse(code, body);
  connection.SendAll(response.data(), response.size(), kIoTimeoutSeconds);
}

}  // namespace comparesets
