// RequestPipeline: the request-lifecycle policy that used to be welded
// into SelectionEngine — admission control (bounded in-flight + queue),
// liveness checks at stage boundaries, and the transient-failure retry
// loop — extracted so several shard engines can share ONE pipeline.
//
// Why shared matters: a ShardRouter runs N engines over one machine's
// resources. Admission is a statement about the machine ("at most K
// solves at once"), not about any one shard, so the router hands every
// shard engine the same RequestPipeline and the K-slot budget spans all
// of them. An engine built standalone makes itself a private pipeline
// from its own knobs — exactly the old behaviour.
//
// Thread-safety: all methods are safe to call concurrently.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "util/cancellation.h"
#include "util/scheduler.h"
#include "util/status.h"
#include "util/timer.h"

namespace comparesets {

struct PipelineOptions {
  /// Max requests solving at once (0 = unthrottled). Excess requests
  /// wait in the admission queue.
  size_t max_in_flight = 0;
  /// Waiting slots beyond max_in_flight for INTERACTIVE requests. An
  /// interactive request arriving when its queue is full is refused
  /// with kResourceExhausted.
  size_t max_queue = 64;
  /// Waiting slots for BATCH requests (0 = same as max_queue). Batch
  /// sheds first: its budget is separate, it is the one the
  /// SloController shrinks under SLO pressure, and a queued batch
  /// request never takes a freed slot while an interactive request
  /// waits.
  size_t max_batch_queue = 0;
  /// Attempts per request for *transient* failures. 1 = no retries.
  int max_attempts = 1;
  /// First retry backoff; doubles per attempt. Sleeps are clamped to
  /// the request's remaining deadline.
  double retry_backoff_seconds = 0.001;
};

/// Deadline/cancel check at a pipeline stage boundary. Unlike
/// ExecControl::Check this does not tick the solver-iteration counter —
/// that counter measures work inside the solvers, not engine plumbing.
Status CheckLive(const ExecControl& control, const char* where);

class RequestPipeline {
 public:
  explicit RequestPipeline(PipelineOptions options = {});

  const PipelineOptions& options() const { return options_; }

  /// Whether admission control is active (max_in_flight > 0).
  bool throttled() const { return options_.max_in_flight > 0; }

  /// Blocks until the request may run (or fails with
  /// kResourceExhausted / kDeadlineExceeded / kCancelled). Every OK
  /// return must be paired with one Release() — use Slot.
  ///
  /// Priority semantics: each class waits against its own queue budget,
  /// and a batch request neither takes a freed slot nor stops waiting
  /// while any interactive request is queued — interactive work is
  /// never queued behind batch work, mirroring the scheduler contract.
  Status Admit(const Deadline& deadline, const CancelToken* cancel,
               RequestPriority priority = RequestPriority::kInteractive);
  void Release();

  /// Dynamically caps the batch waiting budget (the SLO controller's
  /// shedding lever). Applies to requests admitted after the call;
  /// already-queued batch requests keep waiting. Restore by setting the
  /// configured budget back (see configured_batch_queue()).
  void SetBatchQueueLimit(size_t limit) {
    batch_queue_limit_.store(limit, std::memory_order_relaxed);
    cv_.notify_all();
  }

  /// The batch budget currently in force (configured or SLO-shrunk).
  size_t batch_queue_limit() const {
    return batch_queue_limit_.load(std::memory_order_relaxed);
  }

  /// The batch budget the options configured (max_batch_queue, with 0
  /// meaning "same as max_queue").
  size_t configured_batch_queue() const {
    return options_.max_batch_queue > 0 ? options_.max_batch_queue
                                        : options_.max_queue;
  }

  /// Releases one admission slot on destruction (RAII, so every early
  /// return after a successful Admit releases exactly once).
  class Slot {
   public:
    Slot() = default;
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;
    ~Slot() {
      if (pipeline_ != nullptr) pipeline_->Release();
    }
    /// Binds the slot to the pipeline whose Admit just succeeded.
    void Arm(RequestPipeline* pipeline) { pipeline_ = pipeline; }

   private:
    RequestPipeline* pipeline_ = nullptr;
  };

  /// Failures worth retrying: spurious backend errors (kInternal —
  /// notably injected faults — and kIOError). Bad ids, bad arguments,
  /// deadline expiry and cancellation are final on first occurrence.
  static bool IsTransient(StatusCode code) {
    return code == StatusCode::kInternal || code == StatusCode::kIOError;
  }

  /// The attempt loop: runs `attempt(n)` (n = 1-based attempt number)
  /// up to max_attempts times, sleeping an exponentially doubling
  /// backoff (clamped to the deadline) between transient failures.
  /// `on_retry(slept_seconds)` fires once per retry so the caller can
  /// count it and bill the sleep to its trace. Non-transient failures,
  /// exhausted attempts, and post-sleep deadline/cancel expiry all
  /// return immediately.
  template <typename AttemptFn, typename OnRetryFn>
  auto RunWithRetries(const ExecControl& control, const Deadline& deadline,
                      AttemptFn&& attempt, OnRetryFn&& on_retry) const
      -> decltype(attempt(1)) {
    int max_attempts = std::max(1, options_.max_attempts);
    double backoff = std::max(0.0, options_.retry_backoff_seconds);
    for (int n = 1;; ++n) {
      auto outcome = attempt(n);
      if (outcome.ok()) return outcome;
      Status status = outcome.status();
      if (!IsTransient(status.code()) || n >= max_attempts) return outcome;
      double sleep_seconds =
          std::min(backoff, std::max(0.0, deadline.RemainingSeconds()));
      if (sleep_seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_seconds));
      }
      on_retry(sleep_seconds);
      backoff *= 2.0;
      Status still_live = CheckLive(control, "retry");
      if (!still_live.ok()) return still_live;
    }
  }

 private:
  PipelineOptions options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  /// Waiters per priority class (indexed by RequestPriority).
  size_t queued_[kNumPriorityClasses] = {0, 0};
  /// Current batch waiting budget; atomic so the SLO controller can
  /// shrink it without taking the admission lock.
  std::atomic<size_t> batch_queue_limit_{0};
};

}  // namespace comparesets
