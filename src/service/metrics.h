// Lightweight operational metrics for the serving layer: named
// monotonic counters and latency histograms with a text dump hook,
// plus a bounded ring of structured per-request traces (request id,
// queue wait, per-stage wall time, solver iterations, cache outcome)
// dumpable as JSONL.
// Counters are lock-free; histograms take a short lock per observation.
// Registered instruments live as long as the registry and are safe to
// update from any engine worker thread.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/cancellation.h"

namespace comparesets {

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Summary snapshot of a histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Observations per power-of-ten bucket; bucket b counts values in
  /// [10^(b + kMinExponent), 10^(b + kMinExponent + 1)).
  std::vector<uint64_t> buckets;
};

/// Histogram over positive values (latencies in seconds), bucketed by
/// decade from 1µs to 1000s; out-of-range values clamp to the edges.
class Histogram {
 public:
  static constexpr int kMinExponent = -6;  ///< First bucket: 1µs.
  static constexpr int kNumBuckets = 10;   ///< Last bucket: ≥ 1000s.

  void Observe(double value);
  HistogramSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t buckets_[kNumBuckets] = {};
};

/// Structured record of one engine request's lifecycle: admission →
/// queue → prepare → solve → memo. One trace is recorded per request
/// (success or failure); the serve subcommand dumps the ring as JSONL.
struct RequestTrace {
  uint64_t request_id = 0;       ///< Engine-assigned, monotonic per shard.
  /// Which shard engine served the request (0 on an unsharded engine).
  /// Together with request_id this is unique across a ShardRouter.
  uint64_t shard_id = 0;
  /// Epoch of the corpus snapshot the request resolved against; bumped
  /// by every (per-shard) SwapCorpus, so traces can be correlated with
  /// catalog swaps in the JSONL stream.
  uint64_t corpus_epoch = 0;
  /// Cumulative streamed reviews delta-applied to this shard's engine
  /// when the request resolved (service/ingest) — the freshness of the
  /// snapshot the answer came from, correlatable with ingest batches
  /// the same way corpus_epoch correlates with swaps.
  uint64_t ingest_records = 0;
  std::string target_id;
  std::string selector;
  std::string status = "ok";     ///< StatusCodeName of the outcome.
  /// QualityTierName of the answer ("exact", "anytime", "sampled") —
  /// what the caller actually got, distinct from `status`: a degraded
  /// request is still status "ok".
  std::string tier = "exact";
  /// The response's objective-gap bound (0 unless tier is "sampled").
  double objective_gap = 0.0;
  /// RequestPriorityName of the request's EFFECTIVE scheduling class
  /// ("interactive" / "batch") — after any batch demotion, so a trace
  /// shows the class the admission queue and scheduler actually used.
  std::string priority = "interactive";
  int attempts = 1;              ///< 1 + transient-fault retries.
  bool cache_hit = false;        ///< Prepared vectors served warm.
  bool result_cache_hit = false; ///< Whole response from the memo.
  uint64_t solver_iterations = 0;///< ExecControl checks during the solve.
  uint64_t nnls_nonconverged = 0;///< NNLS refits that hit their iteration cap.
  uint64_t intra_parallel_fanouts = 0;///< Intra-request fan-outs (> 1 lane).
  uint64_t intra_parallel_tasks = 0;  ///< Tasks those fan-outs distributed.
  /// Named solver-phase timings (crs.items, compare_sets_plus.round, ...)
  /// recorded through the request's SpanSink; repeated phases repeat.
  std::vector<TraceSpan> spans;
  double queue_seconds = 0.0;    ///< Admission wait (0 when unthrottled).
  double backoff_seconds = 0.0;  ///< Total retry backoff slept.
  double prepare_seconds = 0.0;
  double solve_seconds = 0.0;
  double total_seconds = 0.0;

  /// One compact JSON object (a JSONL line, sans newline).
  std::string ToJson() const;
};

/// Point-in-time copy of every instrument in a registry, sorted by
/// name. The unit routers and exporters aggregate across shards.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Named instrument registry. Lookup interns the instrument on first
/// use; returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time gauge (set, not accumulated) for sizes/footprints.
  void SetGauge(const std::string& name, double value);

  /// Caps the trace ring (default 256; 0 disables tracing). Shrinking
  /// drops the oldest entries.
  void SetTraceCapacity(size_t capacity);

  /// Appends a request trace, evicting the oldest past the capacity.
  void RecordTrace(RequestTrace trace);

  /// Retained traces, oldest first.
  std::vector<RequestTrace> Traces() const;

  /// The trace ring as JSONL, one request per line, oldest first.
  std::string DumpTracesJsonl() const;

  /// Human-readable dump, one instrument per line, sorted by name.
  std::string Dump() const;

  /// Copies every instrument's current value, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Prometheus text-exposition rendering of this registry. `labels` is
  /// an optional label set pasted verbatim into every sample's braces
  /// (e.g. `shard="0"`); metric names are sanitized (dots become
  /// underscores), counters get the conventional `_total` suffix, and
  /// histograms render cumulative decade buckets plus `_sum`/`_count`.
  std::string RenderPrometheus(const std::string& labels = {}) const;

  /// Merges several labeled snapshots into one exposition document: one
  /// `# TYPE` line per metric family, then one sample per label set
  /// that has the family. This is how a ShardRouter exports N shard
  /// registries without repeating family headers.
  static std::string RenderPrometheus(
      const std::vector<std::pair<std::string, MetricsSnapshot>>& labeled);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, double> gauges_;
  size_t trace_capacity_ = 256;
  std::deque<RequestTrace> traces_;
};

}  // namespace comparesets
