// Lightweight operational metrics for the serving layer: named
// monotonic counters and latency histograms with a text dump hook.
// Counters are lock-free; histograms take a short lock per observation.
// Registered instruments live as long as the registry and are safe to
// update from any engine worker thread.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace comparesets {

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Summary snapshot of a histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Observations per power-of-ten bucket; bucket b counts values in
  /// [10^(b + kMinExponent), 10^(b + kMinExponent + 1)).
  std::vector<uint64_t> buckets;
};

/// Histogram over positive values (latencies in seconds), bucketed by
/// decade from 1µs to 1000s; out-of-range values clamp to the edges.
class Histogram {
 public:
  static constexpr int kMinExponent = -6;  ///< First bucket: 1µs.
  static constexpr int kNumBuckets = 10;   ///< Last bucket: ≥ 1000s.

  void Observe(double value);
  HistogramSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  uint64_t buckets_[kNumBuckets] = {};
};

/// Named instrument registry. Lookup interns the instrument on first
/// use; returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time gauge (set, not accumulated) for sizes/footprints.
  void SetGauge(const std::string& name, double value);

  /// Human-readable dump, one instrument per line, sorted by name.
  std::string Dump() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, double> gauges_;
};

}  // namespace comparesets
