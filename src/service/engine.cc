#include "service/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/greedy_selector.h"
#include "opinion/opinion_model.h"
#include "util/timer.h"

namespace comparesets {

namespace {

/// Cache key: epoch | opinion | target | explicit comparative ids.
/// Unit separator (US, 0x1f) cannot appear in product ids.
std::string CacheKey(uint64_t epoch, OpinionDefinition opinion,
                     const SelectRequest& request) {
  std::string key = std::to_string(epoch);
  key += '\x1f';
  key += OpinionDefinitionName(opinion);
  key += '\x1f';
  key += request.target_id;
  for (const std::string& id : request.comparative_ids) {
    key += '\x1f';
    key += id;
  }
  return key;
}

/// Round-trip-exact double rendering for cache keys.
std::string ExactDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Result-memo key: the vector-cache key extended with the selector name
/// and EVERY SelectorOptions field — a field added to SelectorOptions
/// must be appended here, or the memo would serve stale responses for
/// requests differing only in that field. (deadline_seconds / cancel /
/// priority / options.parallel are runtime controls, not options: they
/// never change a completed solve's answer — parallel solves are
/// bit-identical to serial, and priority only reorders scheduling — so
/// they are deliberately left out.)
std::string ResultKey(const std::string& prepare_key,
                      const SelectRequest& request) {
  std::string key = prepare_key;
  key += '\x1f';
  key += request.selector;
  key += '\x1f';
  key += std::to_string(request.options.m);
  key += '\x1f';
  key += ExactDouble(request.options.lambda);
  key += '\x1f';
  key += ExactDouble(request.options.mu);
  key += '\x1f';
  key += std::to_string(request.options.seed);
  key += '\x1f';
  key += std::to_string(request.options.extra_sync_rounds);
  key += '\x1f';
  key += request.options.dense_reference_solver ? "dense" : "gram";
  key += '\x1f';
  key += QualityTierName(request.options.min_tier);
  key += '\x1f';
  key += std::to_string(request.options.sample_threshold);
  key += '\x1f';
  key += std::to_string(request.options.sample_size);
  return key;
}

}  // namespace

SelectionEngine::SelectionEngine(std::shared_ptr<const IndexedCorpus> corpus,
                                 EngineOptions options)
    : options_(options),
      corpus_(std::move(corpus)),
      cache_(options.cache_capacity),
      pool_(options.threads) {
  if (options_.pipeline == nullptr) {
    // Standalone engine: a private pipeline from the engine's own
    // knobs, behaving exactly like the pre-extraction admission/retry.
    PipelineOptions pipeline_options;
    pipeline_options.max_in_flight = options_.max_in_flight;
    pipeline_options.max_queue = options_.max_queue;
    pipeline_options.max_batch_queue = options_.max_batch_queue;
    pipeline_options.max_attempts = options_.max_attempts;
    pipeline_options.retry_backoff_seconds = options_.retry_backoff_seconds;
    options_.pipeline = std::make_shared<RequestPipeline>(pipeline_options);
  }
  quality_floor_.store(static_cast<int>(options_.min_quality_tier),
                       std::memory_order_relaxed);
  metrics_.SetTraceCapacity(options_.trace_capacity);
}

void SelectionEngine::SetQualityFloor(QualityTier floor, bool slo_driven) {
  quality_floor_.store(static_cast<int>(floor), std::memory_order_relaxed);
  slo_shedding_.store(slo_driven, std::memory_order_relaxed);
  metrics_.SetGauge("engine.slo_shedding", slo_driven ? 1.0 : 0.0);
}

std::shared_ptr<const IndexedCorpus> SelectionEngine::corpus() const {
  std::lock_guard<std::mutex> lock(corpus_mutex_);
  return corpus_;
}

uint64_t SelectionEngine::corpus_epoch() const {
  std::lock_guard<std::mutex> lock(corpus_mutex_);
  return corpus_epoch_;
}

Status SelectionEngine::SwapCorpus(
    std::shared_ptr<const IndexedCorpus> corpus) {
  if (options_.fault_injector) {
    Status injected = options_.fault_injector->Inject(FaultSite::kCorpusSwap);
    if (!injected.ok()) {
      // Swap refused before the snapshot flipped: the engine keeps
      // serving the old catalog, caches intact.
      metrics_.counter("engine.corpus_swap_failures").Increment();
      return injected;
    }
  }
  {
    std::lock_guard<std::mutex> lock(corpus_mutex_);
    corpus_ = std::move(corpus);
    ++corpus_epoch_;
  }
  // Entries of the old epoch can no longer match any key; drop them now
  // so the capacity serves the new snapshot. A racing Put from an in-
  // flight request re-inserts under its old epoch key at worst — dead
  // weight that LRU eviction reclaims, never a stale answer.
  cache_.Clear();
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    result_lru_.clear();
    result_index_.clear();
  }
  metrics_.counter("engine.corpus_swaps").Increment();
  return Status::OK();
}

Status SelectionEngine::ApplyCorpusDelta(
    std::shared_ptr<const IndexedCorpus> corpus, size_t reviews_added) {
  if (options_.fault_injector) {
    Status injected = options_.fault_injector->Inject(FaultSite::kCorpusSwap);
    if (!injected.ok()) {
      // Refused before the snapshot flipped — same contract as a failed
      // SwapCorpus: the engine keeps serving the old snapshot, caches
      // intact, and the ingestion driver may retry the batch.
      metrics_.counter("engine.corpus_swap_failures").Increment();
      return injected;
    }
  }
  {
    std::lock_guard<std::mutex> lock(corpus_mutex_);
    corpus_ = std::move(corpus);
    ++corpus_epoch_;
  }
  // Same invalidation discipline as SwapCorpus: the epoch moved, so no
  // old-epoch entry can match a new key; reclaim the capacity now.
  cache_.Clear();
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    result_lru_.clear();
    result_index_.clear();
  }
  ingested_reviews_.fetch_add(reviews_added, std::memory_order_relaxed);
  metrics_.counter("engine.delta_applies").Increment();
  metrics_.counter("engine.ingest_reviews_applied").Increment(reviews_added);
  return Status::OK();
}

bool SelectionEngine::ResultLookup(const std::string& key,
                                   SelectResponse* out) const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  auto it = result_index_.find(key);
  if (it == result_index_.end()) return false;
  result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
  *out = result_lru_.front().response;
  return true;
}

void SelectionEngine::ResultStore(const std::string& key,
                                  const SelectResponse& response) const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  auto it = result_index_.find(key);
  if (it != result_index_.end()) {
    it->second->response = response;
    result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
    return;
  }
  if (result_lru_.size() >= options_.result_capacity) {
    result_index_.erase(result_lru_.back().key);
    result_lru_.pop_back();
  }
  result_lru_.push_front(ResultEntry{key, response});
  result_index_[key] = result_lru_.begin();
}

Result<std::shared_ptr<const PreparedInstance>> SelectionEngine::Prepare(
    std::shared_ptr<const IndexedCorpus> corpus, const std::string& key,
    const SelectRequest& request, bool* cache_hit) const {
  if (options_.fault_injector) {
    COMPARESETS_RETURN_NOT_OK(
        options_.fault_injector->Inject(FaultSite::kCacheLookup));
  }
  if (auto cached = cache_.Get(key)) {
    *cache_hit = true;
    return cached;
  }
  *cache_hit = false;

  // Miss: resolve the instance against the snapshot.
  ProblemInstance instance;
  if (request.comparative_ids.empty()) {
    const ProblemInstance* found = corpus->FindInstance(request.target_id);
    if (found == nullptr) {
      return Status::NotFound("no problem instance with target id '" +
                              request.target_id + "'");
    }
    instance = *found;
  } else {
    const Product* target = corpus->FindProduct(request.target_id);
    if (target == nullptr) {
      return Status::NotFound("unknown target product id '" +
                              request.target_id + "'");
    }
    instance.items.push_back(target);
    for (const std::string& id : request.comparative_ids) {
      const Product* item = corpus->FindProduct(id);
      if (item == nullptr) {
        return Status::NotFound("unknown comparative product id '" + id + "'");
      }
      if (item == target) {
        return Status::InvalidArgument(
            "comparative id '" + id + "' is the target itself");
      }
      instance.items.push_back(item);
    }
  }

  OpinionModel model(options_.opinion, corpus->num_aspects());
  auto bundle =
      PreparedInstance::Create(std::move(corpus), std::move(instance), model);
  cache_.Put(key, bundle);
  return std::shared_ptr<const PreparedInstance>(std::move(bundle));
}

Result<SelectResponse> SelectionEngine::SelectAttempt(
    const SelectRequest& request,
    std::shared_ptr<const IndexedCorpus> corpus,
    const std::string& prepare_key, const std::string& result_key,
    const ExecControl& control, const ParallelContext& parallel,
    RequestTrace* trace) const {
  COMPARESETS_RETURN_NOT_OK(CheckLive(control, "prepare"));

  Timer prepare_timer;
  bool cache_hit = false;
  auto prepared =
      Prepare(std::move(corpus), prepare_key, request, &cache_hit);
  double prepare_seconds = prepare_timer.ElapsedSeconds();
  metrics_.counter(cache_hit ? "engine.cache_hits" : "engine.cache_misses")
      .Increment();
  trace->cache_hit = cache_hit;
  trace->prepare_seconds = prepare_seconds;
  if (!prepared.ok()) return prepared.status();
  metrics_.histogram("engine.prepare_seconds").Observe(prepare_seconds);

  auto selector = MakeSelector(request.selector);
  if (!selector.ok()) return selector.status();

  COMPARESETS_RETURN_NOT_OK(CheckLive(control, "solve"));
  if (options_.fault_injector) {
    COMPARESETS_RETURN_NOT_OK(
        options_.fault_injector->Inject(FaultSite::kSolve));
  }

  const PreparedInstance& bundle = *prepared.value();
  // The engine decides pool lending, not the caller: the request's
  // options get the context chosen by the nesting rule (empty inside a
  // pooled batch, the whole pool for a lone Select). The degradation
  // floor combines the request's with the engine-wide policy — either
  // side may loosen. At the default kExact floor SelectTiered IS
  // Select: same call, same bits.
  SelectorOptions solve_options = request.options;
  solve_options.parallel = parallel;
  solve_options.min_tier =
      LooserTier(request.options.min_tier, quality_floor());
  Timer solve_timer;
  auto solved =
      selector.value()->SelectTiered(bundle.vectors, solve_options, &control);
  double solve_seconds = solve_timer.ElapsedSeconds();
  trace->solve_seconds = solve_seconds;
  if (!solved.ok()) return solved.status();
  metrics_.histogram("engine.solve_seconds").Observe(solve_seconds);

  SelectResponse response;
  response.target_id = bundle.instance.target().id;
  response.item_ids.reserve(bundle.instance.num_items());
  for (const Product* item : bundle.instance.items) {
    response.item_ids.push_back(item->id);
  }
  response.selections = std::move(solved.value().selections);
  response.objective = solved.value().objective;
  response.tier = solved.value().tier;
  response.objective_gap = solved.value().objective_gap;
  trace->tier = QualityTierName(response.tier);
  trace->objective_gap = response.objective_gap;
  if (options_.measure_alignment) {
    response.alignment =
        MeasureAlignment(bundle.instance, response.selections);
  }
  response.cache_hit = cache_hit;
  response.prepare_seconds = prepare_seconds;
  response.solve_seconds = solve_seconds;
  // The memoized copy keeps a default trace: a later memo hit gets a
  // fresh trace for ITS lifecycle, never the solving request's.
  // kAnytime answers are never stored: they depend on the deadline, a
  // runtime control deliberately outside the key — memoizing one would
  // let a degraded answer shadow the exact one forever. kExact and
  // kSampled are deterministic functions of the key (the sampling draw
  // is seeded), so they memoize like before.
  if (options_.result_capacity > 0 && response.tier != QualityTier::kAnytime) {
    ResultStore(result_key, response);
  }
  return response;
}

Result<SelectResponse> SelectionEngine::DegradedAttempt(
    const SelectRequest& request,
    std::shared_ptr<const IndexedCorpus> corpus,
    const std::string& prepare_key, const ExecControl& control,
    const ParallelContext& parallel, RequestTrace* trace) const {
  COMPARESETS_RETURN_NOT_OK(CheckLive(control, "degraded prepare"));

  Timer prepare_timer;
  bool cache_hit = false;
  auto prepared =
      Prepare(std::move(corpus), prepare_key, request, &cache_hit);
  double prepare_seconds = prepare_timer.ElapsedSeconds();
  metrics_.counter(cache_hit ? "engine.cache_hits" : "engine.cache_misses")
      .Increment();
  trace->cache_hit = cache_hit;
  trace->prepare_seconds = prepare_seconds;
  if (!prepared.ok()) return prepared.status();
  metrics_.histogram("engine.prepare_seconds").Observe(prepare_seconds);

  COMPARESETS_RETURN_NOT_OK(CheckLive(control, "degraded solve"));

  const PreparedInstance& bundle = *prepared.value();
  SelectorOptions solve_options = request.options;
  solve_options.parallel = parallel;
  // Greedy under the FULL control (deadline and cancel both honored):
  // degradation buys a cheap answer, not an unbounded one.
  CompareSetsGreedySelector greedy;
  Timer solve_timer;
  auto solved = greedy.Select(bundle.vectors, solve_options, &control);
  double solve_seconds = solve_timer.ElapsedSeconds();
  trace->solve_seconds = solve_seconds;
  if (!solved.ok()) return solved.status();
  metrics_.histogram("engine.solve_seconds").Observe(solve_seconds);

  SelectResponse response;
  response.target_id = bundle.instance.target().id;
  response.item_ids.reserve(bundle.instance.num_items());
  for (const Product* item : bundle.instance.items) {
    response.item_ids.push_back(item->id);
  }
  response.selections = std::move(solved.value().selections);
  response.objective = solved.value().objective;
  response.tier = QualityTier::kAnytime;
  response.objective_gap = 0.0;
  trace->tier = QualityTierName(response.tier);
  trace->objective_gap = response.objective_gap;
  if (options_.measure_alignment) {
    response.alignment =
        MeasureAlignment(bundle.instance, response.selections);
  }
  response.cache_hit = cache_hit;
  response.prepare_seconds = prepare_seconds;
  response.solve_seconds = solve_seconds;
  // Deliberately not memoized: this answer reflects load, not the key.
  return response;
}

Status SelectionEngine::FinishError(RequestTrace trace, Status status,
                                    const Timer& total) const {
  metrics_.counter("engine.errors").Increment();
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      metrics_.counter("engine.deadline_exceeded").Increment();
      break;
    case StatusCode::kCancelled:
      metrics_.counter("engine.cancelled").Increment();
      break;
    case StatusCode::kResourceExhausted:
      metrics_.counter("engine.rejected").Increment();
      break;
    default:
      break;
  }
  trace.status = StatusCodeName(status.code());
  trace.total_seconds = total.ElapsedSeconds();
  metrics_.RecordTrace(std::move(trace));
  return status;
}

Result<SelectResponse> SelectionEngine::Select(
    const SelectRequest& request) const {
  // A lone request gets the whole pool for its internal fan-out,
  // capped by max_intra_request_threads (docs/execution-model.md), and
  // keeps its own priority class (interactive by default).
  return SelectWithParallel(
      request,
      ParallelContext{&pool_, options_.max_intra_request_threads,
                      request.priority},
      request.priority);
}

Result<SelectResponse> SelectionEngine::SelectWithParallel(
    const SelectRequest& request, const ParallelContext& parallel,
    RequestPriority priority) const {
  metrics_.counter("engine.requests").Increment();
  Timer total;

  RequestTrace trace;
  trace.request_id = next_request_id_.fetch_add(1) + 1;
  trace.shard_id = options_.shard_id;
  trace.target_id = request.target_id;
  trace.selector = request.selector;
  trace.priority = RequestPriorityName(priority);

  Deadline deadline(request.deadline_seconds);
  std::atomic<uint64_t> iterations{0};
  std::atomic<uint64_t> nnls_nonconverged{0};
  std::atomic<uint64_t> parallel_fanouts{0};
  std::atomic<uint64_t> parallel_tasks{0};
  SpanSink span_sink;
  ExecControl control{&deadline,         request.cancel,  &iterations,
                      &nnls_nonconverged, &parallel_fanouts, &parallel_tasks,
                      &span_sink};
  // Folds the per-request solver tallies into the trace and the
  // registry; non-convergence is counted even on failed requests.
  auto record_solver_stats = [&] {
    trace.solver_iterations = iterations.load(std::memory_order_relaxed);
    trace.nnls_nonconverged =
        nnls_nonconverged.load(std::memory_order_relaxed);
    trace.intra_parallel_fanouts =
        parallel_fanouts.load(std::memory_order_relaxed);
    trace.intra_parallel_tasks =
        parallel_tasks.load(std::memory_order_relaxed);
    trace.spans = span_sink.Take();
    if (trace.nnls_nonconverged > 0) {
      metrics_.counter("solver.nnls_nonconverged")
          .Increment(trace.nnls_nonconverged);
    }
    if (trace.intra_parallel_fanouts > 0) {
      metrics_.counter("solver.intra_parallel_fanouts")
          .Increment(trace.intra_parallel_fanouts);
      metrics_.counter("solver.intra_parallel_tasks")
          .Increment(trace.intra_parallel_tasks);
    }
  };
  auto fail = [&](Status status) -> Status {
    record_solver_stats();
    return FinishError(std::move(trace), std::move(status), total);
  };

  if (request.target_id.empty()) {
    return fail(Status::InvalidArgument("request has no target_id"));
  }

  std::shared_ptr<const IndexedCorpus> corpus;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(corpus_mutex_);
    corpus = corpus_;
    epoch = corpus_epoch_;
  }
  trace.corpus_epoch = epoch;
  trace.ingest_records = ingested_reviews_.load(std::memory_order_relaxed);
  std::string prepare_key = CacheKey(epoch, options_.opinion, request);

  // An exactly repeated request is answered from the result memo —
  // selectors are deterministic, so the memoized response is the one a
  // fresh solve would produce, bit for bit. Memo hits bypass admission:
  // they do no solving work, so they never contend for a slot.
  std::string result_key;
  if (options_.result_capacity > 0) {
    result_key = ResultKey(prepare_key, request);
    SelectResponse memoized;
    if (ResultLookup(result_key, &memoized)) {
      metrics_.counter("engine.result_hits").Increment();
      memoized.cache_hit = true;
      memoized.result_cache_hit = true;
      memoized.prepare_seconds = 0.0;
      memoized.solve_seconds = 0.0;
      trace.cache_hit = true;
      trace.result_cache_hit = true;
      trace.tier = QualityTierName(memoized.tier);
      trace.objective_gap = memoized.objective_gap;
      metrics_.counter(std::string("engine.tier_") + trace.tier).Increment();
      trace.total_seconds = total.ElapsedSeconds();
      memoized.trace = trace;
      metrics_.RecordTrace(std::move(trace));
      metrics_.histogram("engine.request_seconds")
          .Observe(memoized.trace.total_seconds);
      return memoized;
    }
    metrics_.counter("engine.result_misses").Increment();
  }

  // Every response — solved, degraded, or memoized — finishes through
  // the same success bookkeeping: per-tier counter, trace, latency.
  auto finish_ok = [&](SelectResponse response) -> SelectResponse {
    trace.status = "ok";
    record_solver_stats();
    trace.total_seconds = total.ElapsedSeconds();
    metrics_.counter(std::string("engine.tier_") + trace.tier).Increment();
    response.trace = trace;
    metrics_.RecordTrace(std::move(trace));
    metrics_.histogram("engine.request_seconds")
        .Observe(response.trace.total_seconds);
    return response;
  };

  // Admission: take a slot or wait in the bounded queue. The pipeline
  // may be shared across shard engines, in which case the slot budget
  // spans all of them.
  RequestPipeline& pipeline = *options_.pipeline;
  RequestPipeline::Slot slot;
  if (pipeline.throttled()) {
    Timer queue_timer;
    Status admitted = pipeline.Admit(deadline, request.cancel, priority);
    trace.queue_seconds = queue_timer.ElapsedSeconds();
    metrics_.histogram("engine.queue_seconds").Observe(trace.queue_seconds);
    if (!admitted.ok()) {
      if (admitted.code() == StatusCode::kResourceExhausted &&
          priority == RequestPriority::kBatch) {
        // Batch sheds first: count its refusals separately so the SLO
        // controller's shrinking of the batch budget is observable.
        metrics_.counter("pipeline.batch_shed").Increment();
      }
      // Overload degradation: a full pipeline used to mean rejection.
      // When the effective floor admits kAnytime, answer with a greedy
      // solve instead — run WITHOUT a slot, because the greedy pass is
      // far cheaper than the exact path the slots were sized for, and
      // queueing it behind the very overload it is escaping would defeat
      // the point. Any failure inside the degraded attempt reports the
      // original rejection, the honest cause. The floor is the DYNAMIC
      // one: the SloController may have loosened it under SLO pressure.
      QualityTier floor =
          LooserTier(request.options.min_tier, quality_floor());
      if (admitted.code() == StatusCode::kResourceExhausted &&
          floor != QualityTier::kExact) {
        auto degraded = DegradedAttempt(request, corpus, prepare_key,
                                        control, parallel, &trace);
        if (degraded.ok()) {
          metrics_.counter("engine.degraded").Increment();
          if (slo_shedding_.load(std::memory_order_relaxed)) {
            metrics_.counter("engine.slo_degrades").Increment();
          }
          return finish_ok(std::move(degraded).value());
        }
      }
      return fail(std::move(admitted));
    }
    slot.Arm(&pipeline);
  }

  // Attempt loop: transient failures (injected faults, backend errors)
  // retry with exponential backoff; everything else is final.
  auto outcome = pipeline.RunWithRetries(
      control, deadline,
      [&](int attempt) {
        trace.attempts = attempt;
        return SelectAttempt(request, corpus, prepare_key, result_key,
                             control, parallel, &trace);
      },
      [&](double slept_seconds) {
        metrics_.counter("engine.retries").Increment();
        trace.backoff_seconds += slept_seconds;
      });
  if (!outcome.ok()) return fail(outcome.status());
  return finish_ok(std::move(outcome).value());
}

void SelectionEngine::PrefetchWindow(
    const std::vector<SelectRequest>& requests, size_t begin,
    size_t end) const {
  // Chaos drills want the cold path: a prefetch would consume injected
  // cache-lookup faults aimed at the requests themselves.
  if (options_.fault_injector != nullptr) return;
  std::shared_ptr<const IndexedCorpus> corpus;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(corpus_mutex_);
    corpus = corpus_;
    epoch = corpus_epoch_;
  }
  // One warm-up per unique (instance, selector, λ): Prepare stages the
  // vectors under the same key the request will look up, and the
  // selector's PrefetchSystems fills the instance's design-system cache
  // in one batched Gram kernel pass. Requests arriving after a
  // mid-batch SwapCorpus read a newer epoch and simply miss cold —
  // never a stale answer.
  std::unordered_set<std::string> warmed;
  for (size_t i = begin; i < end; ++i) {
    const SelectRequest& request = requests[i];
    if (request.target_id.empty()) continue;
    std::string prepare_key = CacheKey(epoch, options_.opinion, request);
    std::string warm_key = prepare_key;
    warm_key += '\x1f';
    warm_key += request.selector;
    warm_key += '\x1f';
    warm_key += ExactDouble(request.options.lambda);
    if (!warmed.insert(std::move(warm_key)).second) continue;
    bool cache_hit = false;
    auto prepared = Prepare(corpus, prepare_key, request, &cache_hit);
    if (!prepared.ok()) continue;
    auto selector = MakeSelector(request.selector);
    if (!selector.ok()) continue;
    selector.value()->PrefetchSystems(prepared.value()->vectors,
                                      request.options);
    metrics_.counter("engine.batch_prefetches").Increment();
  }
}

void SelectionEngine::RunWindow(
    const std::vector<SelectRequest>& requests, size_t begin, size_t end,
    std::vector<std::optional<Result<SelectResponse>>>* slots) const {
  if (pool_.num_threads() <= 1) {
    // Same inline in-order contract as an unwindowed single-threaded
    // batch (see SelectBatch), under the batch-demoted priority.
    for (size_t i = begin; i < end; ++i) {
      RequestPriority effective =
          DemotePriority(requests[i].priority, options_.batch_priority);
      (*slots)[i] = SelectWithParallel(
          requests[i],
          ParallelContext{&pool_, options_.max_intra_request_threads,
                          effective},
          effective);
    }
    return;
  }
  // Pooled window: coalesce exact repeats onto their head's lane — the
  // head solves, its duplicates replay in order behind it and
  // deterministically memo-hit, instead of racing the head on sibling
  // lanes (which would nondeterministically re-solve).
  std::vector<std::vector<size_t>> groups;
  std::unordered_map<std::string, size_t> group_of;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(corpus_mutex_);
    epoch = corpus_epoch_;
  }
  for (size_t i = begin; i < end; ++i) {
    const SelectRequest& request = requests[i];
    if (options_.result_capacity == 0 || request.target_id.empty()) {
      groups.push_back({i});
      continue;
    }
    std::string key =
        ResultKey(CacheKey(epoch, options_.opinion, request), request);
    auto [it, inserted] = group_of.emplace(std::move(key), groups.size());
    if (inserted) {
      groups.push_back({i});
    } else {
      groups[it->second].push_back(i);
    }
  }
  pool_.ParallelFor(
      groups.size(),
      [&](size_t g) {
        for (size_t i : groups[g]) {
          RequestPriority effective =
              DemotePriority(requests[i].priority, options_.batch_priority);
          (*slots)[i] = SelectWithParallel(
              requests[i], ParallelContext{nullptr, 0, effective}, effective);
        }
      },
      0, options_.batch_priority);
}

std::vector<Result<SelectResponse>> SelectionEngine::SelectBatch(
    const std::vector<SelectRequest>& requests) const {
  metrics_.counter("engine.batches").Increment();
  std::vector<std::optional<Result<SelectResponse>>> slots(requests.size());
  size_t window = options_.batch_kernel_window;
  if (window >= 2 && requests.size() > 1) {
    // Windowed batching: stage each window's shared kernel work (unique
    // prepares + batched Gram builds) before any of its requests
    // solves. Payloads are bit-identical to the unwindowed path; only
    // warm-state flags change (prefetched requests report cache_hit).
    for (size_t begin = 0; begin < requests.size(); begin += window) {
      size_t end = std::min(begin + window, requests.size());
      PrefetchWindow(requests, begin, end);
      RunWindow(requests, begin, end, &slots);
    }
    std::vector<Result<SelectResponse>> responses;
    responses.reserve(slots.size());
    for (auto& slot : slots) responses.push_back(std::move(*slot));
    return responses;
  }
  if (pool_.num_threads() <= 1) {
    // ParallelFor lets the caller thread participate, so even a 1-worker
    // pool runs two concurrent lanes. A single-threaded engine promises
    // serial in-order batches (so e.g. a repeated target is guaranteed to
    // warm-hit the vector cache) — run inline instead. The requests run
    // one at a time, so each may still lend the (idle) pool to its
    // internal fan-out, exactly like a lone Select — but under the
    // batch-demoted priority class.
    for (size_t i = 0; i < requests.size(); ++i) {
      RequestPriority effective =
          DemotePriority(requests[i].priority, options_.batch_priority);
      slots[i] = SelectWithParallel(
          requests[i],
          ParallelContext{&pool_, options_.max_intra_request_threads,
                          effective},
          effective);
    }
  } else {
    // Nesting rule: the batch fan-out owns the pool, so the requests
    // inside it solve with an empty context (intra-request fan-out from
    // a pool worker would deadlock-prone re-enter the pool for no
    // gain — the workers are already busy with sibling requests). The
    // fan-out tasks themselves run in the batch class, so a concurrent
    // interactive Select's helpers jump ahead of them in the deques.
    pool_.ParallelFor(
        requests.size(),
        [&](size_t i) {
          RequestPriority effective =
              DemotePriority(requests[i].priority, options_.batch_priority);
          slots[i] = SelectWithParallel(
              requests[i], ParallelContext{nullptr, 0, effective}, effective);
        },
        0, options_.batch_priority);
  }

  std::vector<Result<SelectResponse>> responses;
  responses.reserve(slots.size());
  for (auto& slot : slots) responses.push_back(std::move(*slot));
  return responses;
}

void SelectionEngine::RefreshGauges() const {
  VectorCacheStats stats = cache_.Stats();
  metrics_.SetGauge("cache.entries", static_cast<double>(stats.entries));
  metrics_.SetGauge("cache.approx_bytes",
                    static_cast<double>(stats.approx_bytes));
  metrics_.SetGauge("cache.evictions", static_cast<double>(stats.evictions));
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    metrics_.SetGauge("result_cache.entries",
                      static_cast<double>(result_lru_.size()));
  }
}

std::string SelectionEngine::DumpMetrics() const {
  RefreshGauges();
  return metrics_.Dump();
}

MetricsSnapshot SelectionEngine::SnapshotMetrics() const {
  RefreshGauges();
  return metrics_.Snapshot();
}

std::string SelectionEngine::RenderPrometheus() const {
  RefreshGauges();
  return metrics_.RenderPrometheus("shard=\"" +
                                   std::to_string(options_.shard_id) + "\"");
}

Result<std::vector<InstanceSolve>> SelectionEngine::SolveInstances(
    const ReviewSelector& selector,
    const std::vector<InstanceVectors>& vectors,
    const SelectorOptions& options, ThreadPool* pool,
    const ExecControl* control) {
  size_t n = vectors.size();
  std::vector<InstanceSolve> solves(n);

  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      Timer timer;
      COMPARESETS_ASSIGN_OR_RETURN(
          solves[i].result, selector.Select(vectors[i], options, control));
      solves[i].seconds = timer.ElapsedSeconds();
    }
    return solves;
  }

  std::mutex error_mutex;
  Status first_error = Status::OK();
  size_t first_error_index = n;
  pool->ParallelFor(n, [&](size_t i) {
    Timer timer;
    auto result = selector.Select(vectors[i], options, control);
    solves[i].seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex);
      // Report the lowest failing index so the error is deterministic
      // regardless of completion order.
      if (i < first_error_index) {
        first_error = result.status();
        first_error_index = i;
      }
      return;
    }
    solves[i].result = std::move(result).value();
  });
  if (!first_error.ok()) return first_error;
  return solves;
}

}  // namespace comparesets
