#include "service/engine.h"

#include <cstdio>
#include <optional>
#include <utility>

#include "opinion/opinion_model.h"
#include "util/timer.h"

namespace comparesets {

namespace {

/// Cache key: epoch | opinion | target | explicit comparative ids.
/// Unit separator (US, 0x1f) cannot appear in product ids.
std::string CacheKey(uint64_t epoch, OpinionDefinition opinion,
                     const SelectRequest& request) {
  std::string key = std::to_string(epoch);
  key += '\x1f';
  key += OpinionDefinitionName(opinion);
  key += '\x1f';
  key += request.target_id;
  for (const std::string& id : request.comparative_ids) {
    key += '\x1f';
    key += id;
  }
  return key;
}

/// Round-trip-exact double rendering for cache keys.
std::string ExactDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Result-memo key: the vector-cache key extended with the selector name
/// and EVERY SelectorOptions field — a field added to SelectorOptions
/// must be appended here, or the memo would serve stale responses for
/// requests differing only in that field.
std::string ResultKey(const std::string& prepare_key,
                      const SelectRequest& request) {
  std::string key = prepare_key;
  key += '\x1f';
  key += request.selector;
  key += '\x1f';
  key += std::to_string(request.options.m);
  key += '\x1f';
  key += ExactDouble(request.options.lambda);
  key += '\x1f';
  key += ExactDouble(request.options.mu);
  key += '\x1f';
  key += std::to_string(request.options.seed);
  key += '\x1f';
  key += std::to_string(request.options.extra_sync_rounds);
  return key;
}

}  // namespace

SelectionEngine::SelectionEngine(std::shared_ptr<const IndexedCorpus> corpus,
                                 EngineOptions options)
    : options_(options),
      corpus_(std::move(corpus)),
      cache_(options.cache_capacity),
      pool_(options.threads) {}

std::shared_ptr<const IndexedCorpus> SelectionEngine::corpus() const {
  std::lock_guard<std::mutex> lock(corpus_mutex_);
  return corpus_;
}

void SelectionEngine::SwapCorpus(std::shared_ptr<const IndexedCorpus> corpus) {
  {
    std::lock_guard<std::mutex> lock(corpus_mutex_);
    corpus_ = std::move(corpus);
    ++corpus_epoch_;
  }
  // Entries of the old epoch can no longer match any key; drop them now
  // so the capacity serves the new snapshot. A racing Put from an in-
  // flight request re-inserts under its old epoch key at worst — dead
  // weight that LRU eviction reclaims, never a stale answer.
  cache_.Clear();
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    result_lru_.clear();
    result_index_.clear();
  }
  metrics_.counter("engine.corpus_swaps").Increment();
}

bool SelectionEngine::ResultLookup(const std::string& key,
                                   SelectResponse* out) const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  auto it = result_index_.find(key);
  if (it == result_index_.end()) return false;
  result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
  *out = result_lru_.front().response;
  return true;
}

void SelectionEngine::ResultStore(const std::string& key,
                                  const SelectResponse& response) const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  auto it = result_index_.find(key);
  if (it != result_index_.end()) {
    it->second->response = response;
    result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
    return;
  }
  if (result_lru_.size() >= options_.result_capacity) {
    result_index_.erase(result_lru_.back().key);
    result_lru_.pop_back();
  }
  result_lru_.push_front(ResultEntry{key, response});
  result_index_[key] = result_lru_.begin();
}

Result<std::shared_ptr<const PreparedInstance>> SelectionEngine::Prepare(
    std::shared_ptr<const IndexedCorpus> corpus, const std::string& key,
    const SelectRequest& request, bool* cache_hit) const {
  if (auto cached = cache_.Get(key)) {
    *cache_hit = true;
    return cached;
  }
  *cache_hit = false;

  // Miss: resolve the instance against the snapshot.
  ProblemInstance instance;
  if (request.comparative_ids.empty()) {
    const ProblemInstance* found = corpus->FindInstance(request.target_id);
    if (found == nullptr) {
      return Status::NotFound("no problem instance with target id '" +
                              request.target_id + "'");
    }
    instance = *found;
  } else {
    const Product* target = corpus->FindProduct(request.target_id);
    if (target == nullptr) {
      return Status::NotFound("unknown target product id '" +
                              request.target_id + "'");
    }
    instance.items.push_back(target);
    for (const std::string& id : request.comparative_ids) {
      const Product* item = corpus->FindProduct(id);
      if (item == nullptr) {
        return Status::NotFound("unknown comparative product id '" + id + "'");
      }
      if (item == target) {
        return Status::InvalidArgument(
            "comparative id '" + id + "' is the target itself");
      }
      instance.items.push_back(item);
    }
  }

  OpinionModel model(options_.opinion, corpus->num_aspects());
  auto bundle =
      PreparedInstance::Create(std::move(corpus), std::move(instance), model);
  cache_.Put(key, bundle);
  return std::shared_ptr<const PreparedInstance>(std::move(bundle));
}

Result<SelectResponse> SelectionEngine::Select(
    const SelectRequest& request) const {
  metrics_.counter("engine.requests").Increment();
  Timer total;

  if (request.target_id.empty()) {
    metrics_.counter("engine.errors").Increment();
    return Status::InvalidArgument("request has no target_id");
  }

  std::shared_ptr<const IndexedCorpus> corpus;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(corpus_mutex_);
    corpus = corpus_;
    epoch = corpus_epoch_;
  }
  std::string prepare_key = CacheKey(epoch, options_.opinion, request);

  // An exactly repeated request is answered from the result memo —
  // selectors are deterministic, so the memoized response is the one a
  // fresh solve would produce, bit for bit.
  std::string result_key;
  if (options_.result_capacity > 0) {
    result_key = ResultKey(prepare_key, request);
    SelectResponse memoized;
    if (ResultLookup(result_key, &memoized)) {
      metrics_.counter("engine.result_hits").Increment();
      memoized.cache_hit = true;
      memoized.result_cache_hit = true;
      memoized.prepare_seconds = 0.0;
      memoized.solve_seconds = 0.0;
      metrics_.histogram("engine.request_seconds")
          .Observe(total.ElapsedSeconds());
      return memoized;
    }
    metrics_.counter("engine.result_misses").Increment();
  }

  Timer prepare_timer;
  bool cache_hit = false;
  auto prepared =
      Prepare(std::move(corpus), prepare_key, request, &cache_hit);
  double prepare_seconds = prepare_timer.ElapsedSeconds();
  metrics_.counter(cache_hit ? "engine.cache_hits" : "engine.cache_misses")
      .Increment();
  if (!prepared.ok()) {
    metrics_.counter("engine.errors").Increment();
    return prepared.status();
  }
  metrics_.histogram("engine.prepare_seconds").Observe(prepare_seconds);

  auto selector = MakeSelector(request.selector);
  if (!selector.ok()) {
    metrics_.counter("engine.errors").Increment();
    return selector.status();
  }

  const PreparedInstance& bundle = *prepared.value();
  Timer solve_timer;
  auto solved = selector.value()->Select(bundle.vectors, request.options);
  double solve_seconds = solve_timer.ElapsedSeconds();
  if (!solved.ok()) {
    metrics_.counter("engine.errors").Increment();
    return solved.status();
  }
  metrics_.histogram("engine.solve_seconds").Observe(solve_seconds);

  SelectResponse response;
  response.target_id = bundle.instance.target().id;
  response.item_ids.reserve(bundle.instance.num_items());
  for (const Product* item : bundle.instance.items) {
    response.item_ids.push_back(item->id);
  }
  response.selections = std::move(solved.value().selections);
  response.objective = solved.value().objective;
  if (options_.measure_alignment) {
    response.alignment =
        MeasureAlignment(bundle.instance, response.selections);
  }
  response.cache_hit = cache_hit;
  response.prepare_seconds = prepare_seconds;
  response.solve_seconds = solve_seconds;
  if (options_.result_capacity > 0) ResultStore(result_key, response);
  metrics_.histogram("engine.request_seconds").Observe(total.ElapsedSeconds());
  return response;
}

std::vector<Result<SelectResponse>> SelectionEngine::SelectBatch(
    const std::vector<SelectRequest>& requests) const {
  metrics_.counter("engine.batches").Increment();
  std::vector<std::optional<Result<SelectResponse>>> slots(requests.size());
  pool_.ParallelFor(requests.size(),
                    [&](size_t i) { slots[i] = Select(requests[i]); });

  std::vector<Result<SelectResponse>> responses;
  responses.reserve(slots.size());
  for (auto& slot : slots) responses.push_back(std::move(*slot));
  return responses;
}

std::string SelectionEngine::DumpMetrics() const {
  VectorCacheStats stats = cache_.Stats();
  metrics_.SetGauge("cache.entries", static_cast<double>(stats.entries));
  metrics_.SetGauge("cache.approx_bytes",
                    static_cast<double>(stats.approx_bytes));
  metrics_.SetGauge("cache.evictions", static_cast<double>(stats.evictions));
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    metrics_.SetGauge("result_cache.entries",
                      static_cast<double>(result_lru_.size()));
  }
  return metrics_.Dump();
}

Result<std::vector<InstanceSolve>> SelectionEngine::SolveInstances(
    const ReviewSelector& selector,
    const std::vector<InstanceVectors>& vectors,
    const SelectorOptions& options, ThreadPool* pool) {
  size_t n = vectors.size();
  std::vector<InstanceSolve> solves(n);

  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      Timer timer;
      COMPARESETS_ASSIGN_OR_RETURN(solves[i].result,
                                   selector.Select(vectors[i], options));
      solves[i].seconds = timer.ElapsedSeconds();
    }
    return solves;
  }

  std::mutex error_mutex;
  Status first_error = Status::OK();
  size_t first_error_index = n;
  pool->ParallelFor(n, [&](size_t i) {
    Timer timer;
    auto result = selector.Select(vectors[i], options);
    solves[i].seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex);
      // Report the lowest failing index so the error is deterministic
      // regardless of completion order.
      if (i < first_error_index) {
        first_error = result.status();
        first_error_index = i;
      }
      return;
    }
    solves[i].result = std::move(result).value();
  });
  if (!first_error.ok()) return first_error;
  return solves;
}

}  // namespace comparesets
