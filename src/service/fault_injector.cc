#include "service/fault_injector.h"

#include <chrono>
#include <string>
#include <thread>

namespace comparesets {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kCacheLookup:
      return "cache_lookup";
    case FaultSite::kSolve:
      return "solve";
    case FaultSite::kCorpusSwap:
      return "corpus_swap";
    case FaultSite::kRoute:
      return "route";
    case FaultSite::kGather:
      return "gather";
    case FaultSite::kConnect:
      return "connect";
    case FaultSite::kSend:
      return "send";
    case FaultSite::kRecv:
      return "recv";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  const SiteFaults* faults[8] = {&plan_.cache_lookup, &plan_.solve,
                                 &plan_.corpus_swap,  &plan_.route,
                                 &plan_.gather,       &plan_.connect,
                                 &plan_.send,         &plan_.recv};
  for (int i = 0; i < 8; ++i) {
    sites_[i].faults = *faults[i];
    // One PCG stream per site: the seam index picks the stream, so the
    // dice at one seam are independent of how often the others roll.
    sites_[i].rng = Rng(plan_.seed, static_cast<uint64_t>(i) + 1);
  }
}

FaultInjector::SiteState& FaultInjector::state(FaultSite site) {
  return sites_[static_cast<int>(site)];
}

Status FaultInjector::Inject(FaultSite site) {
  double delay_seconds = 0.0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SiteState& s = state(site);
    if (s.faults.delay_rate > 0.0 && s.rng.Bernoulli(s.faults.delay_rate)) {
      delay_seconds = s.faults.delay_seconds;
    }
    if (s.failures_dealt < s.faults.fail_first) {
      ++s.failures_dealt;
      fail = true;
    } else if (s.faults.error_rate > 0.0 &&
               s.rng.Bernoulli(s.faults.error_rate)) {
      fail = true;
    }
  }
  // Sleep outside the lock so a slow seam never serializes the others.
  if (delay_seconds > 0.0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_seconds));
  }
  if (fail) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal(std::string("injected fault at ") +
                            FaultSiteName(site));
  }
  return Status::OK();
}

}  // namespace comparesets
