#include "service/rpc_router.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "util/timer.h"

namespace comparesets {

RpcShardRouter::RpcShardRouter(
    std::vector<std::string> bounds,
    std::vector<std::unique_ptr<ShardBackend>> backends,
    RpcRouterOptions options)
    : options_(std::move(options)),
      bounds_(std::move(bounds)),
      backends_(std::move(backends)),
      pool_(options_.router_threads) {}

Result<std::unique_ptr<RpcShardRouter>> RpcShardRouter::Create(
    std::vector<std::string> bounds,
    std::vector<std::unique_ptr<ShardBackend>> backends,
    RpcRouterOptions options) {
  if (backends.empty()) {
    return Status::InvalidArgument("RpcShardRouter requires backends");
  }
  if (bounds.size() != backends.size()) {
    return Status::InvalidArgument(
        "RpcShardRouter needs one bound per backend: " +
        std::to_string(bounds.size()) + " bounds, " +
        std::to_string(backends.size()) + " backends");
  }
  if (bounds[0] != "") {
    return Status::InvalidArgument("bounds[0] must be the empty string");
  }
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    return Status::InvalidArgument("bounds must be sorted");
  }
  for (const auto& backend : backends) {
    if (backend == nullptr) {
      return Status::InvalidArgument("RpcShardRouter backend is null");
    }
  }
  return std::unique_ptr<RpcShardRouter>(new RpcShardRouter(
      std::move(bounds), std::move(backends), std::move(options)));
}

size_t RpcShardRouter::ShardForTarget(const std::string& target_id) const {
  // bounds_[0] == "", so upper_bound never returns begin(): every id
  // lands in exactly one range (ShardRouter::ShardForTarget verbatim).
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), target_id);
  return static_cast<size_t>(it - bounds_.begin()) - 1;
}

Result<SelectResponse> RpcShardRouter::Select(
    const SelectRequest& request) const {
  if (options_.fault_injector) {
    Status injected = options_.fault_injector->Inject(FaultSite::kRoute);
    if (!injected.ok()) return injected;
  }
  size_t shard = ShardForTarget(request.target_id);
  return backends_[shard]->Select(request);
}

std::vector<Result<SelectResponse>> RpcShardRouter::SelectBatch(
    const std::vector<SelectRequest>& requests) const {
  std::vector<std::optional<Result<SelectResponse>>> slots(requests.size());

  // Scatter: route every request up front; router-level refusals land
  // in their slots, the rest are grouped per shard in original order —
  // ShardRouter::SelectBatch's structure, backend call for engine call.
  std::vector<std::vector<size_t>> by_shard(backends_.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (options_.fault_injector) {
      Status injected = options_.fault_injector->Inject(FaultSite::kRoute);
      if (!injected.ok()) {
        slots[i] = injected;
        continue;
      }
    }
    by_shard[ShardForTarget(requests[i].target_id)].push_back(i);
  }

  // Gather: one task per shard with work. Time lost before a shard
  // dispatches is charged against each of its requests' deadlines, and
  // an expired request is dropped HERE — with the SAME message the
  // in-process router uses, because the transport oracle compares
  // Status bytes across transports.
  Timer gather_timer;
  auto run_shard = [&](size_t shard) {
    if (options_.fault_injector) {
      Status injected = options_.fault_injector->Inject(FaultSite::kGather);
      if (!injected.ok()) {
        for (size_t i : by_shard[shard]) slots[i] = injected;
        return;
      }
    }
    double elapsed = gather_timer.ElapsedSeconds();
    std::vector<SelectRequest> sub;
    std::vector<size_t> sub_index;
    sub.reserve(by_shard[shard].size());
    sub_index.reserve(by_shard[shard].size());
    for (size_t i : by_shard[shard]) {
      if (requests[i].deadline_seconds > 0.0 &&
          requests[i].deadline_seconds <= elapsed) {
        slots[i] = Status::DeadlineExceeded(
            "deadline exceeded before gather dispatch to shard " +
            std::to_string(shard));
        continue;
      }
      sub.push_back(requests[i]);
      if (sub.back().deadline_seconds > 0.0) {
        sub.back().deadline_seconds -= elapsed;
      }
      sub_index.push_back(i);
    }
    if (sub.empty()) return;
    std::vector<Result<SelectResponse>> sub_responses =
        backends_[shard]->SelectBatch(sub);
    for (size_t j = 0; j < sub_index.size(); ++j) {
      slots[sub_index[j]] = std::move(sub_responses[j]);
    }
  };

  std::vector<size_t> active;
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (!by_shard[s].empty()) active.push_back(s);
  }
  if (active.size() <= 1 || pool_.num_threads() <= 1) {
    for (size_t s : active) run_shard(s);
  } else {
    pool_.ParallelFor(active.size(), [&](size_t k) { run_shard(active[k]); });
  }

  std::vector<Result<SelectResponse>> responses;
  responses.reserve(slots.size());
  for (auto& slot : slots) responses.push_back(std::move(*slot));
  return responses;
}

std::vector<Result<ShardHealth>> RpcShardRouter::ProbeAll() const {
  std::vector<Result<ShardHealth>> health;
  health.reserve(backends_.size());
  for (const auto& backend : backends_) {
    health.push_back(backend->Probe());
  }
  return health;
}

Status RpcShardRouter::WaitReady(double timeout_seconds) const {
  Timer timer;
  for (size_t s = 0; s < backends_.size(); ++s) {
    for (;;) {
      Result<ShardHealth> health = backends_[s]->Probe();
      if (health.ok() && health.value().ready) break;
      if (timer.ElapsedSeconds() >= timeout_seconds) {
        Status last = health.ok()
                          ? Status::Unavailable("shard not ready, state=" +
                                                health.value().state)
                          : health.status();
        return Status::Timeout("shard " + std::to_string(s) + " (" +
                               backends_[s]->name() + ") not ready: " +
                               last.ToString());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return Status::OK();
}

}  // namespace comparesets
