#include "service/vector_cache.h"

#include <algorithm>

namespace comparesets {

std::shared_ptr<const PreparedInstance> PreparedInstance::Create(
    std::shared_ptr<const IndexedCorpus> corpus, ProblemInstance instance,
    const OpinionModel& model) {
  // Wire in two steps: the bundle's own `instance` and `systems` must be
  // at their final addresses before BuildInstanceVectors captures a
  // pointer to the former and vectors.system_cache points at the latter.
  auto bundle = std::make_shared<PreparedInstance>(PreparedInstance{
      std::move(corpus), std::move(instance),
      InstanceVectors{model, nullptr, {}, {}, {}, {}},
      std::make_unique<DesignSystemCache>()});
  bundle->vectors = BuildInstanceVectors(model, bundle->instance);
  bundle->vectors.system_cache = bundle->systems.get();
  return bundle;
}

VectorCache::VectorCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::shared_ptr<const PreparedInstance> VectorCache::Get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // Promote to MRU.
  return it->second->value;
}

void VectorCache::Put(const std::string& key,
                      std::shared_ptr<const PreparedInstance> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_.emplace(key, lru_.begin());
}

void VectorCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  index_.clear();
  lru_.clear();
}

size_t VectorCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

VectorCacheStats VectorCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  VectorCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  for (const Entry& entry : lru_) {
    stats.approx_bytes += entry.value->vectors.ApproxMemoryBytes();
    if (entry.value->systems != nullptr) {
      stats.approx_bytes += entry.value->systems->ApproxMemoryBytes();
    }
  }
  return stats;
}

}  // namespace comparesets
