#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/jsonl.h"

namespace comparesets {

std::string RequestTrace::ToJson() const {
  // Built through JsonValue so string fields are escaped correctly;
  // std::map member order gives stable, diffable key order.
  JsonValue::Object object;
  object["request_id"] = static_cast<int64_t>(request_id);
  object["shard_id"] = static_cast<int64_t>(shard_id);
  object["corpus_epoch"] = static_cast<int64_t>(corpus_epoch);
  object["ingest_records"] = static_cast<int64_t>(ingest_records);
  object["target_id"] = target_id;
  object["selector"] = selector;
  object["status"] = status;
  object["tier"] = tier;
  object["objective_gap"] = objective_gap;
  object["priority"] = priority;
  object["attempts"] = attempts;
  object["cache_hit"] = cache_hit;
  object["result_cache_hit"] = result_cache_hit;
  object["solver_iterations"] = static_cast<int64_t>(solver_iterations);
  object["nnls_nonconverged"] = static_cast<int64_t>(nnls_nonconverged);
  object["intra_parallel_fanouts"] = static_cast<int64_t>(intra_parallel_fanouts);
  object["intra_parallel_tasks"] = static_cast<int64_t>(intra_parallel_tasks);
  if (!spans.empty()) {
    // Aggregate by name: parallel phases record spans in scheduling
    // order, and a JSON object keyed by name keeps the line diffable.
    JsonValue::Object span_object;
    for (const TraceSpan& span : spans) {
      auto it = span_object.find(span.name);
      if (it == span_object.end()) {
        span_object[span.name] = span.seconds;
      } else {
        it->second = JsonValue(it->second.as_number() + span.seconds);
      }
    }
    object["spans"] = JsonValue(std::move(span_object));
  }
  object["queue_seconds"] = queue_seconds;
  object["backoff_seconds"] = backoff_seconds;
  object["prepare_seconds"] = prepare_seconds;
  object["solve_seconds"] = solve_seconds;
  object["total_seconds"] = total_seconds;
  return JsonValue(std::move(object)).Dump();
}

void Histogram::Observe(double value) {
  int bucket = 0;
  if (value > 0.0) {
    bucket = static_cast<int>(std::floor(std::log10(value))) - kMinExponent;
    bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  ++buckets_[bucket];
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  snapshot.mean = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  snapshot.buckets.assign(buckets_, buckets_ + kNumBuckets);
  return snapshot;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::SetTraceCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_capacity_ = capacity;
  while (traces_.size() > trace_capacity_) traces_.pop_front();
}

void MetricsRegistry::RecordTrace(RequestTrace trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (trace_capacity_ == 0) return;
  if (traces_.size() >= trace_capacity_) traces_.pop_front();
  traces_.push_back(std::move(trace));
}

std::vector<RequestTrace> MetricsRegistry::Traces() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<RequestTrace>(traces_.begin(), traces_.end());
}

std::string MetricsRegistry::DumpTracesJsonl() const {
  std::string out;
  for (const RequestTrace& trace : Traces()) {
    out += trace.ToJson();
    out += '\n';
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Copy instrument pointers under the lock, then read them unlocked
  // (counters are atomic; histograms snapshot under their own lock).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    for (const auto& [name, v] : gauges_) snapshot.gauges.emplace_back(name, v);
  }
  for (const auto& [name, c] : counters) {
    snapshot.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, h] : histograms) {
    snapshot.histograms.emplace_back(name, h->Snapshot());
  }
  return snapshot;
}

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:] only; the registry's
/// dotted names map dots (and anything else exotic) to underscores.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// `name{labels}` or bare `name` when the label set is empty.
std::string Labeled(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

/// Same, with `le` appended to whatever labels are present.
std::string LabeledLe(const std::string& name, const std::string& labels,
                      const std::string& le) {
  std::string inner = labels.empty() ? "" : labels + ",";
  return name + "{" + inner + "le=\"" + le + "\"}";
}

/// One rendered metric family: the `# TYPE` header plus every labeled
/// sample, accumulated across label sets in insertion order.
struct Family {
  std::string type;
  std::string samples;
};

void RenderInto(std::map<std::string, Family>* families,
                const std::string& labels, const MetricsSnapshot& snapshot) {
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    // The `_total` suffix is the Prometheus counter convention.
    std::string family = PrometheusName(name) + "_total";
    Family& slot = (*families)[family];
    slot.type = "counter";
    std::snprintf(line, sizeof(line), "%s %llu\n",
                  Labeled(family, labels).c_str(),
                  static_cast<unsigned long long>(value));
    slot.samples += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string family = PrometheusName(name);
    Family& slot = (*families)[family];
    slot.type = "gauge";
    std::snprintf(line, sizeof(line), "%s %g\n",
                  Labeled(family, labels).c_str(), value);
    slot.samples += line;
  }
  for (const auto& [name, s] : snapshot.histograms) {
    std::string family = PrometheusName(name);
    Family& slot = (*families)[family];
    slot.type = "histogram";
    uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      cumulative += b < static_cast<int>(s.buckets.size()) ? s.buckets[b] : 0;
      // Bucket b spans [10^(b+kMin), 10^(b+kMin+1)); the last one clamps
      // everything above, so its upper bound is +Inf.
      std::string le;
      if (b == Histogram::kNumBuckets - 1) {
        le = "+Inf";
      } else {
        char bound[32];
        std::snprintf(bound, sizeof(bound), "%g",
                      std::pow(10.0, b + Histogram::kMinExponent + 1));
        le = bound;
      }
      std::snprintf(line, sizeof(line), "%s %llu\n",
                    LabeledLe(family + "_bucket", labels, le).c_str(),
                    static_cast<unsigned long long>(cumulative));
      slot.samples += line;
    }
    std::snprintf(line, sizeof(line), "%s %g\n",
                  Labeled(family + "_sum", labels).c_str(), s.sum);
    slot.samples += line;
    std::snprintf(line, sizeof(line), "%s %llu\n",
                  Labeled(family + "_count", labels).c_str(),
                  static_cast<unsigned long long>(s.count));
    slot.samples += line;
  }
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus(
    const std::vector<std::pair<std::string, MetricsSnapshot>>& labeled) {
  // std::map keys the families by name, so the document is stable no
  // matter how the label sets interleave their instruments.
  std::map<std::string, Family> families;
  for (const auto& [labels, snapshot] : labeled) {
    RenderInto(&families, labels, snapshot);
  }
  std::string out;
  for (const auto& [name, family] : families) {
    out += "# TYPE " + name + " " + family.type + "\n";
    out += family.samples;
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus(
    const std::string& labels) const {
  return RenderPrometheus({{labels, Snapshot()}});
}

std::string MetricsRegistry::Dump() const {
  // Copy instrument pointers under the lock, then read them unlocked
  // (counters are atomic; histograms snapshot under their own lock).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, double>> gauges;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    for (const auto& [name, v] : gauges_) gauges.emplace_back(name, v);
  }

  std::string out;
  char line[256];
  for (const auto& [name, c] : counters) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "gauge %s %.6g\n", name.c_str(), value);
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot s = h->Snapshot();
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%llu mean=%.6gs min=%.6gs max=%.6gs\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean, s.min, s.max);
    out += line;
  }
  return out;
}

}  // namespace comparesets
