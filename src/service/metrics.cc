#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/jsonl.h"

namespace comparesets {

std::string RequestTrace::ToJson() const {
  // Built through JsonValue so string fields are escaped correctly;
  // std::map member order gives stable, diffable key order.
  JsonValue::Object object;
  object["request_id"] = static_cast<int64_t>(request_id);
  object["target_id"] = target_id;
  object["selector"] = selector;
  object["status"] = status;
  object["attempts"] = attempts;
  object["cache_hit"] = cache_hit;
  object["result_cache_hit"] = result_cache_hit;
  object["solver_iterations"] = static_cast<int64_t>(solver_iterations);
  object["nnls_nonconverged"] = static_cast<int64_t>(nnls_nonconverged);
  object["intra_parallel_fanouts"] = static_cast<int64_t>(intra_parallel_fanouts);
  object["intra_parallel_tasks"] = static_cast<int64_t>(intra_parallel_tasks);
  if (!spans.empty()) {
    // Aggregate by name: parallel phases record spans in scheduling
    // order, and a JSON object keyed by name keeps the line diffable.
    JsonValue::Object span_object;
    for (const TraceSpan& span : spans) {
      auto it = span_object.find(span.name);
      if (it == span_object.end()) {
        span_object[span.name] = span.seconds;
      } else {
        it->second = JsonValue(it->second.as_number() + span.seconds);
      }
    }
    object["spans"] = JsonValue(std::move(span_object));
  }
  object["queue_seconds"] = queue_seconds;
  object["backoff_seconds"] = backoff_seconds;
  object["prepare_seconds"] = prepare_seconds;
  object["solve_seconds"] = solve_seconds;
  object["total_seconds"] = total_seconds;
  return JsonValue(std::move(object)).Dump();
}

void Histogram::Observe(double value) {
  int bucket = 0;
  if (value > 0.0) {
    bucket = static_cast<int>(std::floor(std::log10(value))) - kMinExponent;
    bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  ++buckets_[bucket];
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  snapshot.mean = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  snapshot.buckets.assign(buckets_, buckets_ + kNumBuckets);
  return snapshot;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::SetTraceCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_capacity_ = capacity;
  while (traces_.size() > trace_capacity_) traces_.pop_front();
}

void MetricsRegistry::RecordTrace(RequestTrace trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (trace_capacity_ == 0) return;
  if (traces_.size() >= trace_capacity_) traces_.pop_front();
  traces_.push_back(std::move(trace));
}

std::vector<RequestTrace> MetricsRegistry::Traces() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<RequestTrace>(traces_.begin(), traces_.end());
}

std::string MetricsRegistry::DumpTracesJsonl() const {
  std::string out;
  for (const RequestTrace& trace : Traces()) {
    out += trace.ToJson();
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::Dump() const {
  // Copy instrument pointers under the lock, then read them unlocked
  // (counters are atomic; histograms snapshot under their own lock).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, double>> gauges;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    for (const auto& [name, v] : gauges_) gauges.emplace_back(name, v);
  }

  std::string out;
  char line[256];
  for (const auto& [name, c] : counters) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "gauge %s %.6g\n", name.c_str(), value);
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot s = h->Snapshot();
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%llu mean=%.6gs min=%.6gs max=%.6gs\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean, s.min, s.max);
    out += line;
  }
  return out;
}

}  // namespace comparesets
