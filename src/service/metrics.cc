#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace comparesets {

void Histogram::Observe(double value) {
  int bucket = 0;
  if (value > 0.0) {
    bucket = static_cast<int>(std::floor(std::log10(value))) - kMinExponent;
    bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  ++buckets_[bucket];
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  snapshot.mean = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  snapshot.buckets.assign(buckets_, buckets_ + kNumBuckets);
  return snapshot;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

std::string MetricsRegistry::Dump() const {
  // Copy instrument pointers under the lock, then read them unlocked
  // (counters are atomic; histograms snapshot under their own lock).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, double>> gauges;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    for (const auto& [name, v] : gauges_) gauges.emplace_back(name, v);
  }

  std::string out;
  char line[256];
  for (const auto& [name, c] : counters) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "gauge %s %.6g\n", name.c_str(), value);
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot s = h->Snapshot();
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%llu mean=%.6gs min=%.6gs max=%.6gs\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean, s.min, s.max);
    out += line;
  }
  return out;
}

}  // namespace comparesets
