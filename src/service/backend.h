// ShardBackend: the transport seam of the sharded serving layer.
//
// PR 5's ShardRouter talks to its shards through direct SelectionEngine
// calls — one process, one address space. The jump to a fleet keeps the
// routing layer but swaps what a "shard" is: this interface is the
// contract a router needs from a shard and nothing more (answer one
// request, answer a sub-batch, report health), so the same
// RpcShardRouter code serves
//   * LocalShardBackend — an in-process SelectionEngine (today's path,
//     byte-for-byte), and
//   * RpcShardBackend (net/client.h) — a pool of connections to a
//     shard_server process hosting that engine behind the wire
//     protocol.
// The transport oracle (tests/net_transport_oracle_test.cc) holds the
// two implementations to byte-identical responses.
//
// Deadlines cross the seam as data (SelectRequest::deadline_seconds);
// CancelTokens do not — they are process-local (docs/execution-model.md
// covers how cancellation degrades to a deadline across a socket).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "service/engine.h"
#include "service/indexed_corpus.h"
#include "util/status.h"

namespace comparesets {

/// Health/readiness of one shard, as a probe answers it. Local backends
/// synthesize it from the engine; RPC backends decode it off the wire.
struct ShardHealth {
  bool ready = false;  ///< Engine built and serving.
  uint64_t shard_id = 0;
  std::string state;  ///< ShardStateName-style string ("serving").
  ShardKeyRange range;
  uint64_t corpus_epoch = 0;
  uint64_t num_instances = 0;
  uint64_t num_products = 0;
};

/// One shard, behind some transport. Implementations are thread-safe:
/// a router fans sub-batches out over backends concurrently.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Answers one request. Transport failures surface as kUnavailable /
  /// kTimeout / kIOError; application failures are the engine's own
  /// Status, carried with full code + message fidelity.
  virtual Result<SelectResponse> Select(const SelectRequest& request) = 0;

  /// Answers a whole sub-batch. Shipping the sub-batch as one unit (one
  /// frame, for RPC) preserves the engine's batch semantics — kernel
  /// windowing, in-order memo hits — exactly as the local router does.
  virtual std::vector<Result<SelectResponse>> SelectBatch(
      const std::vector<SelectRequest>& requests) = 0;

  /// Health/readiness probe. Cheap; routers poll it at startup
  /// (WaitReady) and ops surfaces print it.
  virtual Result<ShardHealth> Probe() = 0;

  /// Transport description for logs/errors ("local:0",
  /// "rpc:unix:/run/shard0.sock").
  virtual std::string name() const = 0;
};

/// In-process backend: wraps one shard's SelectionEngine.
class LocalShardBackend : public ShardBackend {
 public:
  /// `range` is the key range the engine's snapshot covers (from the
  /// partition bounds); surfaced by Probe.
  LocalShardBackend(std::shared_ptr<SelectionEngine> engine,
                    ShardKeyRange range);

  Result<SelectResponse> Select(const SelectRequest& request) override;
  std::vector<Result<SelectResponse>> SelectBatch(
      const std::vector<SelectRequest>& requests) override;
  Result<ShardHealth> Probe() override;
  std::string name() const override;

  SelectionEngine& engine() { return *engine_; }

 private:
  std::shared_ptr<SelectionEngine> engine_;
  ShardKeyRange range_;
};

/// A partitioned set of local backends plus the bounds that route to
/// them — everything RpcShardRouter::Create needs for the in-process
/// transport.
struct LocalBackendSet {
  std::vector<std::string> bounds;
  std::vector<std::unique_ptr<ShardBackend>> backends;
};

/// Partitions `corpus` into `num_shards` ranges and builds one
/// LocalShardBackend per shard, mirroring ShardRouter::Create exactly:
/// same partitioner, same ONE shared RequestPipeline across all shard
/// engines (admission stays a machine-wide budget), same per-shard
/// EngineOptions stamping. A router over these backends is therefore
/// byte-identical to the PR 5 ShardRouter.
Result<LocalBackendSet> CreateLocalBackends(
    std::shared_ptr<const IndexedCorpus> corpus, size_t num_shards,
    EngineOptions engine_options);

}  // namespace comparesets
