#include "service/slo_controller.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace comparesets {

SloController::SloController(SloControllerOptions options,
                             RequestPipeline* pipeline,
                             std::vector<SelectionEngine*> engines)
    : options_(options), pipeline_(pipeline), engines_(std::move(engines)) {}

SloController::~SloController() { Stop(); }

void SloController::ShedLevers() {
  for (SelectionEngine* engine : engines_) {
    // Shedding only ever loosens: an engine already configured looser
    // than shed_floor keeps its own floor.
    engine->SetQualityFloor(
        LooserTier(engine->options().min_quality_tier, options_.shed_floor),
        /*slo_driven=*/true);
  }
  if (pipeline_ != nullptr) {
    pipeline_->SetBatchQueueLimit(options_.shed_batch_queue);
  }
}

void SloController::Shed() {
  ShedLevers();
  if (!shedding_.exchange(true, std::memory_order_relaxed)) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SloController::RestoreLevers() {
  for (SelectionEngine* engine : engines_) {
    engine->SetQualityFloor(engine->options().min_quality_tier,
                            /*slo_driven=*/false);
  }
  if (pipeline_ != nullptr) {
    pipeline_->SetBatchQueueLimit(pipeline_->configured_batch_queue());
  }
}

SloSample SloController::TickOnce() {
  SloSample sample;
  // Rolling window: the tail of every engine's trace ring (the ring is
  // already newest-capped, so the tail IS the most recent traffic).
  std::vector<double> ok_seconds;
  size_t degraded = 0;
  size_t rejected = 0;
  size_t total = 0;
  for (SelectionEngine* engine : engines_) {
    std::vector<RequestTrace> traces = engine->Traces();
    size_t begin = traces.size() > options_.window
                       ? traces.size() - options_.window
                       : 0;
    for (size_t i = begin; i < traces.size(); ++i) {
      const RequestTrace& trace = traces[i];
      ++total;
      if (trace.status == "ok") {
        ok_seconds.push_back(trace.total_seconds);
        if (trace.tier != "exact") ++degraded;
      } else if (trace.status == "resource exhausted") {
        ++rejected;
      }
    }
  }
  sample.samples = total;
  if (total > 0) {
    sample.degraded_rate =
        static_cast<double>(degraded) / static_cast<double>(total);
    sample.rejected_rate =
        static_cast<double>(rejected) / static_cast<double>(total);
  }
  if (!ok_seconds.empty()) {
    std::sort(ok_seconds.begin(), ok_seconds.end());
    size_t index = static_cast<size_t>(
        std::ceil(0.99 * static_cast<double>(ok_seconds.size())));
    if (index > 0) --index;
    index = std::min(index, ok_seconds.size() - 1);
    sample.p99_seconds = ok_seconds[index];
  }

  if (options_.slo_seconds <= 0.0 || sample.samples < options_.min_samples) {
    sample.shedding = shedding();
    return sample;
  }
  if (!shedding() && sample.p99_seconds > options_.slo_seconds) {
    ShedLevers();
    shedding_.store(true, std::memory_order_relaxed);
    sheds_.fetch_add(1, std::memory_order_relaxed);
  } else if (shedding() &&
             sample.p99_seconds <
                 options_.recover_ratio * options_.slo_seconds) {
    RestoreLevers();
    shedding_.store(false, std::memory_order_relaxed);
    restores_.fetch_add(1, std::memory_order_relaxed);
  }
  sample.shedding = shedding();
  return sample;
}

void SloController::Start() {
  std::lock_guard<std::mutex> lock(poll_mutex_);
  if (poller_.joinable()) return;
  stop_requested_ = false;
  poller_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(poll_mutex_);
    while (!stop_requested_) {
      lock.unlock();
      (void)TickOnce();
      lock.lock();
      poll_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                        [this] { return stop_requested_; });
    }
  });
}

void SloController::Stop() {
  {
    std::lock_guard<std::mutex> lock(poll_mutex_);
    if (!poller_.joinable()) return;
    stop_requested_ = true;
  }
  poll_cv_.notify_all();
  poller_.join();
}

}  // namespace comparesets
