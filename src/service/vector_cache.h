// VectorCache: a bounded, thread-safe LRU cache of prepared instance
// contexts. Building InstanceVectors (τ, Γ and the per-review design
// columns) costs O(reviews × dims) per instance — the dominant setup
// cost of a query — so repeated queries against the same catalog should
// pay it once, not per request.
//
// Entries are immutable PreparedInstance bundles held by shared_ptr:
// a lookup hands out shared ownership, so an entry evicted (or
// invalidated by a catalog swap) while a request is still computing on
// it stays alive until that request finishes.
//
// Concurrency contract (docs/execution-model.md): the cache itself is
// mutex-guarded, and a handed-out bundle is safe for any number of
// concurrent readers — including the lanes of one request's
// intra-request fan-out. The only mutation behind a bundle is the lazy
// design-system memo (DesignSystemCache), which takes its own lock and
// memoizes values that are pure functions of the immutable vectors, so
// racing lanes at worst build the same system twice and keep one;
// results are unaffected either way.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/design_matrix.h"
#include "opinion/vectors.h"
#include "service/indexed_corpus.h"

namespace comparesets {

/// One cached, fully prepared problem instance. The bundle owns every
/// layer a selector needs: the corpus snapshot (kept alive across
/// catalog swaps), the instance (whose Product pointers reach into the
/// snapshot), the derived vectors (whose `instance` pointer reaches
/// into this same bundle), and a memo of built design systems (sparse
/// Ṽ + Gram block, reached through vectors.system_cache). Never moved
/// after wiring — always heap-allocated behind shared_ptr.
struct PreparedInstance {
  std::shared_ptr<const IndexedCorpus> corpus;
  ProblemInstance instance;
  InstanceVectors vectors;
  /// Per-instance design-system memo; selectors fill it lazily through
  /// GetOrBuild*System. Heap-held so the bundle stays movable while the
  /// cache's mutex stays put.
  std::unique_ptr<DesignSystemCache> systems;

  /// Allocates a bundle and wires vectors.instance / vectors.system_cache
  /// to the owned members.
  static std::shared_ptr<const PreparedInstance> Create(
      std::shared_ptr<const IndexedCorpus> corpus, ProblemInstance instance,
      const OpinionModel& model);
};

/// Monotonic counters exposed by the cache (snapshot semantics).
struct VectorCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  /// Sum of cached footprints: InstanceVectors plus memoized systems.
  size_t approx_bytes = 0;
};

class VectorCache {
 public:
  /// A cache that holds at most `capacity` entries (>= 1).
  explicit VectorCache(size_t capacity);

  /// Returns the entry for `key` and marks it most-recently-used;
  /// nullptr on miss. Every call counts as exactly one hit or miss.
  std::shared_ptr<const PreparedInstance> Get(const std::string& key);

  /// Inserts (or replaces) the entry for `key`, evicting the least-
  /// recently-used entry when at capacity. Not counted as a hit/miss.
  void Put(const std::string& key,
           std::shared_ptr<const PreparedInstance> value);

  /// Drops every entry (catalog swap). Counters are retained.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  VectorCacheStats Stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const PreparedInstance> value;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace comparesets
