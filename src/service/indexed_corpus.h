// IndexedCorpus: the immutable, shareable catalog snapshot the serving
// layer answers from. Wraps a finalized Corpus together with its
// enumerated problem instances (one per eligible target, §4.1.1) and a
// target-id → instance index, so per-request resolution is O(1) instead
// of re-running BuildInstances per query.
//
// Instances are built once at construction and never mutated; the
// object is always held behind shared_ptr<const IndexedCorpus>, so
// concurrent readers (engine worker threads, cached vector entries that
// outlive a catalog swap) need no locking.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/corpus.h"
#include "util/status.h"

namespace comparesets {

class IndexedCorpus {
 public:
  /// Takes ownership of `corpus` (finalizing it if needed), enumerates
  /// its problem instances under `options`, and freezes the result.
  /// Fails when the corpus yields no instances.
  static Result<std::shared_ptr<const IndexedCorpus>> Build(
      Corpus corpus, const InstanceOptions& options = {});

  const Corpus& corpus() const { return corpus_; }
  const std::string& name() const { return corpus_.name(); }
  size_t num_aspects() const { return corpus_.num_aspects(); }

  /// All enumerated instances, in BuildInstances order.
  const std::vector<ProblemInstance>& instances() const { return instances_; }
  size_t num_instances() const { return instances_.size(); }

  /// The also-bought instance whose target has `target_id`; nullptr
  /// when no instance has that target.
  const ProblemInstance* FindInstance(const std::string& target_id) const;

  /// Product lookup by id; nullptr when absent.
  const Product* FindProduct(const std::string& product_id) const {
    return corpus_.Find(product_id);
  }

 private:
  IndexedCorpus() = default;

  Corpus corpus_;
  std::vector<ProblemInstance> instances_;
  std::unordered_map<std::string, size_t> by_target_;
};

}  // namespace comparesets
