// IndexedCorpus: the immutable, shareable catalog snapshot the serving
// layer answers from. Wraps a finalized Corpus together with its
// enumerated problem instances (one per eligible target, §4.1.1) and a
// target-id → instance index, so per-request resolution is O(1) instead
// of re-running BuildInstances per query.
//
// Instances are built once at construction and never mutated; the
// object is always held behind shared_ptr<const IndexedCorpus>, so
// concurrent readers (engine worker threads, cached vector entries that
// outlive a catalog swap) need no locking.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/corpus.h"
#include "util/status.h"

namespace comparesets {

/// Half-open lexicographic product-id range [begin, end). An empty
/// bound is unbounded on that side, so {"", ""} covers the whole key
/// space — the range of an unsharded snapshot.
struct ShardKeyRange {
  std::string begin;  ///< Inclusive; "" = from the start of the key space.
  std::string end;    ///< Exclusive; "" = to the end of the key space.

  bool Contains(const std::string& id) const {
    if (!begin.empty() && id < begin) return false;
    if (!end.empty() && id >= end) return false;
    return true;
  }

  /// "[begin, end)" with empty bounds rendered as -inf/+inf.
  std::string ToString() const;
};

/// Which slice of a partitioned catalog a snapshot covers. The default
/// spec describes an unsharded corpus: shard 0 of 1, unbounded range.
struct ShardSpec {
  size_t shard_id = 0;
  size_t num_shards = 1;
  /// Targets (routing keys) this shard owns. The shard corpus may hold
  /// *more* products than the range — the closure of products its
  /// instances reference as comparatives.
  ShardKeyRange range;
};

class IndexedCorpus {
 public:
  /// Takes ownership of `corpus` (finalizing it if needed), enumerates
  /// its problem instances under `options`, and freezes the result.
  /// Fails when the corpus yields no instances.
  static Result<std::shared_ptr<const IndexedCorpus>> Build(
      Corpus corpus, const InstanceOptions& options = {});

  /// Builds a snapshot from a pre-enumerated instance list instead of
  /// re-running BuildInstances: each entry is one instance's item-id
  /// list (target first), re-resolved against `corpus`'s own product
  /// storage. This is how CorpusPartitioner guarantees shard instances
  /// are bit-identical to the full corpus's enumeration — the filter
  /// ran once, globally, and shards only re-point the ids. Fails when
  /// the list is empty or references a product absent from `corpus`.
  static Result<std::shared_ptr<const IndexedCorpus>> BuildFromInstances(
      Corpus corpus,
      const std::vector<std::vector<std::string>>& instance_item_ids,
      const ShardSpec& shard = {});

  const Corpus& corpus() const { return corpus_; }
  const std::string& name() const { return corpus_.name(); }
  size_t num_aspects() const { return corpus_.num_aspects(); }

  /// All enumerated instances, in BuildInstances order.
  const std::vector<ProblemInstance>& instances() const { return instances_; }
  size_t num_instances() const { return instances_.size(); }

  /// The also-bought instance whose target has `target_id`; nullptr
  /// when no instance has that target.
  const ProblemInstance* FindInstance(const std::string& target_id) const;

  /// Product lookup by id; nullptr when absent.
  const Product* FindProduct(const std::string& product_id) const {
    return corpus_.Find(product_id);
  }

  /// Which slice of a partitioned catalog this snapshot covers
  /// (the default unbounded spec for an unsharded corpus).
  const ShardSpec& shard() const { return shard_; }

 private:
  IndexedCorpus() = default;

  Corpus corpus_;
  std::vector<ProblemInstance> instances_;
  std::unordered_map<std::string, size_t> by_target_;
  ShardSpec shard_;
};

}  // namespace comparesets
