#include "service/backend.h"

#include <utility>

#include "service/partitioner.h"
#include "service/request_pipeline.h"
#include "service/router.h"

namespace comparesets {

LocalShardBackend::LocalShardBackend(std::shared_ptr<SelectionEngine> engine,
                                     ShardKeyRange range)
    : engine_(std::move(engine)), range_(std::move(range)) {}

Result<SelectResponse> LocalShardBackend::Select(const SelectRequest& request) {
  return engine_->Select(request);
}

std::vector<Result<SelectResponse>> LocalShardBackend::SelectBatch(
    const std::vector<SelectRequest>& requests) {
  return engine_->SelectBatch(requests);
}

Result<ShardHealth> LocalShardBackend::Probe() {
  ShardHealth health;
  health.ready = true;
  health.shard_id = engine_->options().shard_id;
  health.state = ShardStateName(ShardState::kServing);
  health.range = range_;
  health.corpus_epoch = engine_->corpus_epoch();
  std::shared_ptr<const IndexedCorpus> snapshot = engine_->corpus();
  health.num_instances = snapshot->num_instances();
  health.num_products = snapshot->corpus().num_products();
  return health;
}

std::string LocalShardBackend::name() const {
  return "local:" + std::to_string(engine_->options().shard_id);
}

Result<LocalBackendSet> CreateLocalBackends(
    std::shared_ptr<const IndexedCorpus> corpus, size_t num_shards,
    EngineOptions engine_options) {
  if (corpus == nullptr) {
    return Status::InvalidArgument("CreateLocalBackends requires a corpus");
  }
  COMPARESETS_ASSIGN_OR_RETURN(
      std::vector<std::string> bounds,
      CorpusPartitioner::ComputeBounds(*corpus, num_shards));

  std::vector<std::shared_ptr<const IndexedCorpus>> shards;
  shards.reserve(num_shards);
  if (num_shards == 1) {
    // The unsharded snapshot IS the one-shard partition: serve it
    // as-is so the single-shard set shares every byte with a plain
    // engine.
    shards.push_back(std::move(corpus));
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      COMPARESETS_ASSIGN_OR_RETURN(
          auto shard, CorpusPartitioner::ExtractShard(*corpus, bounds, s));
      shards.push_back(std::move(shard));
    }
  }

  // ONE admission pipeline across all shard engines, exactly as
  // ShardRouter::Create does: max_in_flight stays a machine budget.
  PipelineOptions pipeline_options;
  pipeline_options.max_in_flight = engine_options.max_in_flight;
  pipeline_options.max_queue = engine_options.max_queue;
  pipeline_options.max_attempts = engine_options.max_attempts;
  pipeline_options.retry_backoff_seconds = engine_options.retry_backoff_seconds;
  auto pipeline = std::make_shared<RequestPipeline>(pipeline_options);

  LocalBackendSet set;
  set.bounds = bounds;
  set.backends.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    EngineOptions shard_options = engine_options;
    shard_options.shard_id = s;
    shard_options.pipeline = pipeline;
    auto engine = std::make_shared<SelectionEngine>(std::move(shards[s]),
                                                    std::move(shard_options));
    ShardKeyRange range;
    range.begin = bounds[s];
    if (s + 1 < bounds.size()) range.end = bounds[s + 1];
    set.backends.push_back(
        std::make_unique<LocalShardBackend>(std::move(engine), range));
  }
  return set;
}

}  // namespace comparesets
