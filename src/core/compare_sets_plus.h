// CompaReSetS+ — Problem 2 (Eq. 5) via Algorithm 1: initialize with the
// per-item CompaReSetS solutions, then sweep items, re-solving each
// against the target [τ_i ; λΓ ; μφ(S₋ᵢ)…] built from the *current*
// selections of the other items. Each accepted update can only lower the
// global Eq. 5 objective (the current selection is always kept as a
// candidate), so the sweep is monotone.

#pragma once

#include "core/selector.h"

namespace comparesets {

class CompareSetsPlusSelector : public ReviewSelector {
 public:
  using ReviewSelector::Select;
  std::string name() const override { return "CompaReSetS+"; }
  Result<SelectionResult> Select(const InstanceVectors& vectors,
                                 const SelectorOptions& options,
                                 const ExecControl* control) const override;
  void PrefetchSystems(const InstanceVectors& vectors,
                       const SelectorOptions& options) const override;
};

}  // namespace comparesets
