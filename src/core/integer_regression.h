// The Integer-Regression engine (Lappas et al. KDD'12; paper §2.2,
// Algorithm 1 lines 6–12): solve the continuous sparse non-negative
// relaxation with NOMP for every sparsity budget ℓ = 1..m, round each
// continuous solution to the nearest feasible integer selection, and
// keep the candidate with the lowest *true* set objective.

#pragma once

#include <functional>
#include <vector>

#include "core/design_matrix.h"
#include "linalg/solver_options.h"
#include "util/cancellation.h"
#include "util/parallel.h"
#include "util/status.h"

namespace comparesets {

/// Exact objective of a candidate selection (review indices into
/// Product::reviews). Selectors pass Eq. 3 / Algorithm-1-line-10 costs.
using TrueCostFn = std::function<double(const Selection&)>;

struct IntegerRegressionResult {
  Selection selection;  ///< Chosen review indices, sorted ascending.
  double cost = 0.0;    ///< TrueCostFn value of the winner.
};

/// Rounds a continuous NOMP solution x to integer group counts ν
/// minimizing ‖ν/‖ν‖₁ − x/‖x‖₁‖₁ subject to ν_g ≤ caps[g] and
/// ‖ν‖₁ ≤ max_total (Algorithm 1 line 8). Exposed for testing.
std::vector<int> RoundToIntegerCounts(const Vector& x,
                                      const std::vector<int>& caps,
                                      size_t max_total);

/// Runs the engine on a deduplicated system; selects at most m reviews.
/// `true_cost` is consulted once per distinct rounded candidate.
/// `control` is checked at each sparsity budget ℓ and inside the NOMP
/// relaxation; cancellation/deadline aborts with the matching status.
/// `solver` picks the numeric backend: the sparse Gram/Cholesky path
/// (default) or the dense reference stack, which densifies the system
/// once and runs the original NOMP/NNLS/QR kernels.
Result<IntegerRegressionResult> SolveIntegerRegression(
    const DesignSystem& system, size_t m, const TrueCostFn& true_cost,
    const ExecControl* control = nullptr, const SolverOptions& solver = {});

/// Fans `n` independent per-item solves out over `parallel` (serial, in
/// index order, when the context is empty) and merges the results in
/// index order. `solve_item(i)` must be self-contained: it builds (or
/// fetches from a thread-safe cache) item i's system and runs
/// SolveIntegerRegression with `SolverOptions::workspace == nullptr` so
/// each lane uses its own SolverWorkspace::ThreadLocal().
///
/// Determinism contract: every solve_item(i) runs to completion whether
/// or not a sibling failed, and the merge returns the *lowest-index*
/// non-OK status — so a parallel run returns exactly the value (or
/// exactly the error) the serial run would. `control` is checked before
/// each item on top of solve_item's own iteration-boundary checks.
Result<std::vector<IntegerRegressionResult>> SolveItemsParallel(
    size_t n, const ParallelContext& parallel, const ExecControl* control,
    const char* where,
    const std::function<Result<IntegerRegressionResult>(size_t)>& solve_item);

}  // namespace comparesets
