#include "core/integer_regression.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <set>
#include <utility>

#include "linalg/nomp.h"
#include "util/logging.h"

namespace comparesets {

namespace {

/// L1 distance between ν/‖ν‖₁ and the normalized continuous solution.
double NormalizedL1Distance(const std::vector<int>& nu,
                            const std::vector<double>& x_normalized) {
  double total_nu = 0.0;
  for (int v : nu) total_nu += v;
  if (total_nu == 0.0) return std::numeric_limits<double>::infinity();
  double dist = 0.0;
  for (size_t g = 0; g < nu.size(); ++g) {
    dist += std::fabs(nu[g] / total_nu - x_normalized[g]);
  }
  return dist;
}

}  // namespace

std::vector<int> RoundToIntegerCounts(const Vector& x,
                                      const std::vector<int>& caps,
                                      size_t max_total) {
  COMPARESETS_CHECK(x.size() == caps.size()) << "caps size mismatch";
  size_t q = x.size();
  std::vector<int> best(q, 0);
  double best_dist = std::numeric_limits<double>::infinity();

  double x_sum = 0.0;
  for (size_t g = 0; g < q; ++g) {
    COMPARESETS_CHECK(x[g] >= 0.0) << "rounding expects non-negative x";
    x_sum += x[g];
  }
  if (x_sum <= 0.0 || max_total == 0) return best;

  std::vector<double> x_normalized(q);
  for (size_t g = 0; g < q; ++g) x_normalized[g] = x[g] / x_sum;

  // Try every admissible total t; the normalized L1 criterion is not
  // monotone in t, so an exhaustive scan over t (m is small) is both
  // simple and exact given the per-t largest-remainder rounding.
  for (size_t t = 1; t <= max_total; ++t) {
    std::vector<int> nu(q, 0);
    std::vector<std::pair<double, size_t>> remainders;
    int assigned = 0;
    for (size_t g = 0; g < q; ++g) {
      double desired = x_normalized[g] * static_cast<double>(t);
      int base = std::min(static_cast<int>(std::floor(desired)), caps[g]);
      nu[g] = base;
      assigned += base;
      if (base < caps[g]) {
        remainders.emplace_back(desired - base, g);
      }
    }
    int remaining = static_cast<int>(t) - assigned;
    // Distribute leftovers to the largest fractional remainders first,
    // honoring the per-group caps (stable tie-break by group index).
    std::stable_sort(remainders.begin(), remainders.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (const auto& [remainder, g] : remainders) {
      if (remaining <= 0) break;
      int room = caps[g] - nu[g];
      if (room <= 0) continue;
      int take = std::min(room, remaining);
      nu[g] += take;
      remaining -= take;
    }
    double dist = NormalizedL1Distance(nu, x_normalized);
    if (dist < best_dist) {
      best_dist = dist;
      best = nu;
    }
  }
  return best;
}

Result<IntegerRegressionResult> SolveIntegerRegression(
    const DesignSystem& system, size_t m, const TrueCostFn& true_cost,
    const ExecControl* control, const SolverOptions& solver) {
  if (m == 0) return Status::InvalidArgument("m must be >= 1");
  if (system.v.cols() == 0) {
    return Status::InvalidArgument("empty design system");
  }
  COMPARESETS_CHECK(system.dup_counts.size() == system.v.cols())
      << "dedup bookkeeping mismatch";

  IntegerRegressionResult best;
  best.cost = std::numeric_limits<double>::infinity();
  std::set<Selection> evaluated;

  auto consider = [&](Selection candidate) {
    if (candidate.empty()) return;
    std::sort(candidate.begin(), candidate.end());
    if (!evaluated.insert(candidate).second) return;
    double cost = true_cost(candidate);
    if (cost < best.cost) {
      best.cost = cost;
      best.selection = candidate;
    }
  };

  auto round_and_consider = [&](const NompResult& nomp) {
    if (nomp.support.empty()) return;
    std::vector<int> nu = RoundToIntegerCounts(nomp.x, system.dup_counts, m);
    Selection candidate;
    for (size_t g = 0; g < nu.size(); ++g) {
      // ν_g copies of group g: any ν_g members are equivalent (identical
      // annotation signature), take the first ones deterministically.
      for (int c = 0; c < nu[g]; ++c) {
        candidate.push_back(system.group_reviews[g][static_cast<size_t>(c)]);
      }
    }
    consider(std::move(candidate));
  };

  // The dense reference path densifies Ṽ once, outside the ℓ loop.
  bool dense = solver.backend == SolverBackend::kDenseReference;
  size_t max_ell = std::min(m, system.v.cols());
  if (dense) {
    Matrix dense_v = system.v.ToDense();
    for (size_t ell = 1; ell <= max_ell; ++ell) {
      auto nomp = SolveNomp(dense_v, system.target, ell, control);
      if (!nomp.ok()) {
        // Deadline/cancellation must surface; a degenerate system at
        // this ℓ is recoverable — try the other budgets.
        StatusCode code = nomp.status().code();
        if (code == StatusCode::kDeadlineExceeded ||
            code == StatusCode::kCancelled) {
          return nomp.status();
        }
        continue;
      }
      round_and_consider(nomp.value());
    }
  } else {
    // The Gram path batches all budgets into one pursuit: the sweep's
    // per-ℓ snapshots are bit-identical to per-ℓ SolveNompGram calls
    // (linalg/nomp.h), with O(max_ell) refits instead of O(max_ell²).
    auto sweep =
        SolveNompGramSweep(system.gram, max_ell, control, solver.workspace);
    if (!sweep.ok()) {
      StatusCode code = sweep.status().code();
      if (code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kCancelled) {
        return sweep.status();
      }
      // Degenerate system: no candidates — the fallback below answers.
    } else {
      for (const NompResult& nomp : sweep.value()) {
        // The per-ℓ path crossed a control boundary per budget; keep
        // that cadence so cancellation between true-cost calls lands.
        COMPARESETS_RETURN_NOT_OK(CheckExec(control, "integer_regression"));
        round_and_consider(nomp);
      }
    }
  }

  if (!std::isfinite(best.cost)) {
    // Every relaxation degenerated (e.g. all-zero design rows). Fall back
    // to the first review so callers always get a non-empty selection.
    Selection fallback = {system.group_reviews[0][0]};
    best.cost = true_cost(fallback);
    best.selection = std::move(fallback);
  }
  return best;
}

Result<std::vector<IntegerRegressionResult>> SolveItemsParallel(
    size_t n, const ParallelContext& parallel, const ExecControl* control,
    const char* where,
    const std::function<Result<IntegerRegressionResult>(size_t)>& solve_item) {
  // Every lane writes only its own slot; the index-ordered merge below
  // makes the outcome independent of scheduling. Each body runs to
  // completion even if a sibling already failed — skipping would let
  // the parallel run return a different (higher-index) error than the
  // serial run on the same instance.
  std::vector<std::optional<Result<IntegerRegressionResult>>> slots(n);
  RunParallel(
      parallel, n,
      [&](size_t i) {
        Status exec = CheckExec(control, where);
        if (!exec.ok()) {
          slots[i] = exec;
          return;
        }
        slots[i] = solve_item(i);
      },
      control);

  std::vector<IntegerRegressionResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    COMPARESETS_CHECK(slots[i].has_value()) << "parallel item slot unset";
    if (!slots[i]->ok()) return slots[i]->status();
    results.push_back(std::move(slots[i]->value()));
  }
  return results;
}

}  // namespace comparesets
