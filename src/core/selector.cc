#include "core/selector.h"

#include "core/compare_sets.h"
#include "core/compare_sets_plus.h"
#include "core/crs.h"
#include "core/greedy_selector.h"
#include "core/random_selector.h"

namespace comparesets {

Result<std::unique_ptr<ReviewSelector>> MakeSelector(const std::string& name) {
  if (name == "Random") return std::unique_ptr<ReviewSelector>(new RandomSelector());
  if (name == "Crs") return std::unique_ptr<ReviewSelector>(new CrsSelector());
  if (name == "CompaReSetSGreedy") {
    return std::unique_ptr<ReviewSelector>(new CompareSetsGreedySelector());
  }
  if (name == "CompaReSetS") {
    return std::unique_ptr<ReviewSelector>(new CompareSetsSelector());
  }
  if (name == "CompaReSetS+") {
    return std::unique_ptr<ReviewSelector>(new CompareSetsPlusSelector());
  }
  return Status::NotFound("unknown selector: " + name);
}

const std::vector<std::string>& AllSelectorNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "Random", "Crs", "CompaReSetSGreedy", "CompaReSetS", "CompaReSetS+",
  };
  return *kNames;
}

}  // namespace comparesets
