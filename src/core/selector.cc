#include "core/selector.h"

#include <utility>

#include "core/compare_sets.h"
#include "core/compare_sets_plus.h"
#include "core/crs.h"
#include "core/greedy_selector.h"
#include "core/random_selector.h"

namespace comparesets {

const char* QualityTierName(QualityTier tier) {
  switch (tier) {
    case QualityTier::kSampled:
      return "sampled";
    case QualityTier::kAnytime:
      return "anytime";
    case QualityTier::kExact:
      return "exact";
  }
  return "unknown";
}

Result<QualityTier> ParseQualityTier(const std::string& name) {
  if (name == "sampled") return QualityTier::kSampled;
  if (name == "anytime") return QualityTier::kAnytime;
  if (name == "exact") return QualityTier::kExact;
  return Status::InvalidArgument("unknown quality tier: '" + name +
                                 "' (want exact, anytime, or sampled)");
}

Result<SelectionResult> ReviewSelector::SelectTiered(
    const InstanceVectors& vectors, const SelectorOptions& options,
    const ExecControl* control) const {
  // The anytime protocol only matters when degradation is allowed AND a
  // deadline can actually fire; everywhere else it would just burn a
  // greedy solve. This branch is what keeps the default path
  // bit-identical to the pre-tier engine: same Select call, same bits.
  bool bounded = control != nullptr && control->deadline != nullptr &&
                 control->deadline->limited();
  if (options.min_tier == QualityTier::kExact || !bounded) {
    return Select(vectors, options, control);
  }

  // Incumbent of last resort: the greedy baseline, deadline stripped so
  // an already-tight budget cannot leave us with nothing. Cancellation
  // stays honored — a caller that went away wants no answer at all.
  ExecControl incumbent_control = *control;
  incumbent_control.deadline = nullptr;
  CompareSetsGreedySelector greedy;
  COMPARESETS_ASSIGN_OR_RETURN(
      SelectionResult incumbent,
      greedy.Select(vectors, options, &incumbent_control));
  incumbent.tier = QualityTier::kAnytime;
  incumbent.objective_gap = 0.0;

  // Refine under the full control. Deadline expiry falls back to the
  // incumbent; every other failure (cancellation, bad arguments) is a
  // real error and propagates.
  auto refined = Select(vectors, options, control);
  if (!refined.ok()) {
    if (refined.status().code() == StatusCode::kDeadlineExceeded) {
      return incumbent;
    }
    return refined.status();
  }
  // Monotonicity: Integer Regression is a heuristic, so a completed
  // refinement may still lose to the greedy incumbent; never return the
  // worse of the two.
  if (refined.value().objective <= incumbent.objective) {
    return refined;
  }
  return incumbent;
}

Result<std::unique_ptr<ReviewSelector>> MakeSelector(const std::string& name) {
  if (name == "Random") return std::unique_ptr<ReviewSelector>(new RandomSelector());
  if (name == "Crs") return std::unique_ptr<ReviewSelector>(new CrsSelector());
  if (name == "CompaReSetSGreedy") {
    return std::unique_ptr<ReviewSelector>(new CompareSetsGreedySelector());
  }
  if (name == "CompaReSetS") {
    return std::unique_ptr<ReviewSelector>(new CompareSetsSelector());
  }
  if (name == "CompaReSetS+") {
    return std::unique_ptr<ReviewSelector>(new CompareSetsPlusSelector());
  }
  return Status::NotFound("unknown selector: " + name);
}

const std::vector<std::string>& AllSelectorNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "Random", "Crs", "CompaReSetSGreedy", "CompaReSetS", "CompaReSetS+",
  };
  return *kNames;
}

}  // namespace comparesets
