// Random baseline (§4.1.2): samples min(m, |R_i|) reviews uniformly
// without replacement, per item. Deterministic given the options seed.

#pragma once

#include "core/selector.h"

namespace comparesets {

class RandomSelector : public ReviewSelector {
 public:
  using ReviewSelector::Select;
  std::string name() const override { return "Random"; }
  Result<SelectionResult> Select(const InstanceVectors& vectors,
                                 const SelectorOptions& options,
                                 const ExecControl* control) const override;
};

}  // namespace comparesets
