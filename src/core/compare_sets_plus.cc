#include "core/compare_sets_plus.h"

#include "core/compare_sets.h"
#include "core/integer_regression.h"
#include "eval/objective.h"

namespace comparesets {

Result<SelectionResult> CompareSetsPlusSelector::Select(
    const InstanceVectors& vectors, const SelectorOptions& options,
    const ExecControl* control) const {
  // Algorithm 1 input: S_1..S_n from solving CompaReSetS per item.
  CompareSetsSelector bootstrap;
  COMPARESETS_ASSIGN_OR_RETURN(SelectionResult state,
                               bootstrap.Select(vectors, options, control));

  size_t n = vectors.num_items();
  double mu2 = options.mu * options.mu;

  // Cache φ(S_i) of the current state; refreshed on accepted updates.
  std::vector<Vector> phis(n);
  for (size_t i = 0; i < n; ++i) {
    phis[i] = vectors.AspectOf(i, state.selections[i]);
  }

  SolverOptions solver;
  if (options.dense_reference_solver) {
    solver.backend = SolverBackend::kDenseReference;
  }

  int sweeps = 1 + std::max(0, options.extra_sync_rounds);
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (size_t i = 0; i < n; ++i) {
      COMPARESETS_RETURN_NOT_OK(CheckExec(control, "comparesets+ sweep"));
      // Target blocks φ(S_1)…φ(S_{i-1}), φ(S_{i+1})…φ(S_n) in item order.
      std::vector<Vector> other_phis;
      other_phis.reserve(n - 1);
      for (size_t j = 0; j < n; ++j) {
        if (j != i) other_phis.push_back(phis[j]);
      }

      DesignSystem system = BuildCompareSetsPlusSystem(
          vectors, i, options.lambda, options.mu, other_phis);

      // Item i's full contribution to Eq. 5 holding the others fixed:
      // own Eq. 3 cost + μ² Σ_{j≠i} Δ(φ(S̃_i), φ(S_j)). Minimizing this
      // coordinate-wise minimizes the global objective.
      auto cost = [&](const Selection& selection) {
        Vector phi = vectors.AspectOf(i, selection);
        double total = ItemCost(vectors, i, selection, options.lambda);
        for (size_t j = 0; j < n; ++j) {
          if (j != i) total += mu2 * SquaredDistance(phi, phis[j]);
        }
        return total;
      };

      COMPARESETS_ASSIGN_OR_RETURN(
          IntegerRegressionResult solved,
          SolveIntegerRegression(system, options.m, cost, control, solver));

      // Keep the incumbent when the heuristic fails to improve on it, so
      // the sweep never degrades the objective (Algorithm 1's min_Δ
      // bookkeeping, extended with the incumbent as a candidate).
      double incumbent_cost = cost(state.selections[i]);
      if (solved.cost < incumbent_cost) {
        state.selections[i] = std::move(solved.selection);
        phis[i] = vectors.AspectOf(i, state.selections[i]);
      }
    }
  }

  state.objective = CompareSetsPlusObjective(vectors, state.selections,
                                             options.lambda, options.mu);
  return state;
}

}  // namespace comparesets
