#include "core/compare_sets_plus.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/compare_sets.h"
#include "core/design_matrix.h"
#include "core/integer_regression.h"
#include "core/review_sampling.h"
#include "eval/objective.h"
#include "util/timer.h"

namespace comparesets {

Result<SelectionResult> CompareSetsPlusSelector::Select(
    const InstanceVectors& vectors, const SelectorOptions& options,
    const ExecControl* control) const {
  // Algorithm 1 input: S_1..S_n from solving CompaReSetS per item
  // (itself parallel across items under the same context).
  CompareSetsSelector bootstrap;
  COMPARESETS_ASSIGN_OR_RETURN(SelectionResult state,
                               bootstrap.Select(vectors, options, control));

  size_t n = vectors.num_items();
  double mu2 = options.mu * options.mu;

  // Cache φ(S_i) of the current state; refreshed on accepted updates.
  std::vector<Vector> phis(n);
  for (size_t i = 0; i < n; ++i) {
    phis[i] = vectors.AspectOf(i, state.selections[i]);
  }

  SolverOptions solver;
  if (options.dense_reference_solver) {
    solver.backend = SolverBackend::kDenseReference;
  }

  // Sync rounds are the coupling, so they stay sequential; *within* a
  // round the n refits are independent because each one is proposed
  // against a frozen snapshot of the round-start φ blocks (Jacobi
  // style), then committed sequentially in item order against the live
  // φs. The snapshot makes the proposals order-free — a parallel round
  // is bit-identical to a serial one — and the ordered commit keeps the
  // sweep monotone: a proposal is accepted only if it strictly improves
  // item i's full coordinate cost under the *current* state.
  int sweeps = 1 + std::max(0, options.extra_sync_rounds);

  // Per-item systems persist across sweeps: the column structure — and
  // with it the dedup grouping, G, and the column norms — depends only
  // on (vectors, item, λ, μ); the evolving φs appear solely in the
  // target. Later sweeps therefore refresh each system's target in
  // place (RefreshDesignTarget: bit-identical to a rebuild) instead of
  // re-running dedup and the O(q · nnz) Gram build. Each lane touches
  // only its own slot, and sweeps are sequential.
  std::vector<std::unique_ptr<DesignSystem>> systems(n);

  // Sampled items restrict their sweep system once, at first build —
  // the seeded draw depends only on (seed, item, review count), so the
  // restricted skeleton is the same one every sweep would produce. The
  // bootstrap above already sampled consistently (same options reached
  // CompareSetsSelector), and it carries the tier/gap of its items.
  std::vector<double> uncovered(n, 0.0);
  std::vector<char> restricted(n, 0);

  for (int sweep = 0; sweep < sweeps; ++sweep) {
    Timer round_timer;
    const std::vector<Vector> sweep_phis = phis;

    COMPARESETS_ASSIGN_OR_RETURN(
        std::vector<IntegerRegressionResult> proposals,
        SolveItemsParallel(
            n, options.parallel, control, "comparesets+ sweep",
            [&](size_t i) {
              // Target blocks φ(S_1)…φ(S_{i-1}), φ(S_{i+1})…φ(S_n) in
              // item order, all taken from the round-start snapshot.
              std::vector<Vector> other_phis;
              other_phis.reserve(n - 1);
              for (size_t j = 0; j < n; ++j) {
                if (j != i) other_phis.push_back(sweep_phis[j]);
              }
              if (systems[i] == nullptr) {
                systems[i] = std::make_unique<DesignSystem>(
                    BuildCompareSetsPlusSystem(vectors, i, options.lambda,
                                               options.mu, other_phis));
                bool item_restricted = false;
                uncovered[i] = RestrictSystemInPlace(
                    systems[i].get(), options, i, vectors.num_reviews(i),
                    &item_restricted);
                restricted[i] = item_restricted ? 1 : 0;
              } else {
                RefreshDesignTarget(
                    systems[i].get(),
                    BuildCompareSetsPlusTarget(vectors, i, options.lambda,
                                               options.mu, other_phis));
              }
              const DesignSystem& system = *systems[i];

              // Item i's full contribution to Eq. 5 holding the others
              // at their round-start values: own Eq. 3 cost +
              // μ² Σ_{j≠i} Δ(φ(S̃_i), φ(S_j)).
              auto cost = [&](const Selection& selection) {
                Vector phi = vectors.AspectOf(i, selection);
                double total = ItemCost(vectors, i, selection, options.lambda);
                for (size_t j = 0; j < n; ++j) {
                  if (j != i) total += mu2 * SquaredDistance(phi, sweep_phis[j]);
                }
                return total;
              };
              return SolveIntegerRegression(system, options.m, cost, control,
                                            solver);
            }));

    // Ordered commit: re-evaluate each proposal against the live φs and
    // keep the incumbent unless the proposal strictly improves item i's
    // coordinate cost — so the round never degrades the objective
    // (Algorithm 1's min_Δ bookkeeping, extended with the incumbent as
    // a candidate), even though proposals were made against the
    // snapshot.
    for (size_t i = 0; i < n; ++i) {
      auto live_cost = [&](const Selection& selection) {
        Vector phi = vectors.AspectOf(i, selection);
        double total = ItemCost(vectors, i, selection, options.lambda);
        for (size_t j = 0; j < n; ++j) {
          if (j != i) total += mu2 * SquaredDistance(phi, phis[j]);
        }
        return total;
      };
      double candidate_cost = live_cost(proposals[i].selection);
      double incumbent_cost = live_cost(state.selections[i]);
      if (candidate_cost < incumbent_cost) {
        state.selections[i] = std::move(proposals[i].selection);
        phis[i] = vectors.AspectOf(i, state.selections[i]);
      }
    }
    RecordSpan(control, "compare_sets_plus.round", round_timer.ElapsedSeconds());
  }

  state.objective = CompareSetsPlusObjective(vectors, state.selections,
                                             options.lambda, options.mu);
  // Fold the sweep systems' restriction outcome into the tier/gap the
  // bootstrap already reported; keep the larger of the two bounds.
  SelectionResult sweep_outcome;
  ApplySamplingOutcome(uncovered, restricted, &sweep_outcome);
  if (sweep_outcome.tier == QualityTier::kSampled) {
    state.tier = QualityTier::kSampled;
    state.objective_gap =
        std::max(state.objective_gap, sweep_outcome.objective_gap);
  }
  return state;
}

void CompareSetsPlusSelector::PrefetchSystems(
    const InstanceVectors& vectors, const SelectorOptions& options) const {
  // The cacheable work is the bootstrap's per-item CompaReSetS systems;
  // the sweep's own systems embed evolving φ targets and are not
  // memoized (they persist across sweeps locally instead).
  PrefetchCompareSetsSystems(vectors, options.lambda);
}

}  // namespace comparesets
