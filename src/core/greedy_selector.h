// CompaReSetSGreedy baseline (§4.1.2): per item, grow the selection one
// review at a time, always adding the review whose inclusion minimizes
// the Eq. 3 distance cost; stop at m reviews or when no addition
// improves the cost.

#pragma once

#include "core/selector.h"

namespace comparesets {

class CompareSetsGreedySelector : public ReviewSelector {
 public:
  using ReviewSelector::Select;
  std::string name() const override { return "CompaReSetSGreedy"; }
  Result<SelectionResult> Select(const InstanceVectors& vectors,
                                 const SelectorOptions& options,
                                 const ExecControl* control) const override;
};

}  // namespace comparesets
