// Review-sampled solves for huge items (the kSampled quality tier).
//
// The paper's instances have n ≈ 10–40 reviews per item; the serving
// system sees products far beyond that, where even the sparse Gram
// build is O(q · nnz) over every review. When a request's floor admits
// kSampled and an item exceeds SelectorOptions::sample_threshold, the
// selectors solve over a seeded without-replacement sample of the
// item's reviews instead, with a coverage check that bounds what the
// sample may have missed:
//
//   * The sample is drawn at the DesignSystem level — the restricted
//     system keeps the FULL target (the τ / λΓ rows depend only on the
//     item, not on which reviews are candidates) and real review
//     indices in its groups, so selections and the true-cost evaluation
//     need no index translation and stay exact over the sampled
//     candidate set.
//   * A dedup group g (multiplicity c_g) is "covered" when the sample
//     holds at least min(c_g, m) of its members: no budget <= m can
//     then want more copies of g than the sample offers. The
//     uncovered mass Σ_{uncovered g} c_g / n is the reported gap bound.
//   * When every group is covered the restriction is lossless and the
//     item PROMOTES back to the full system — same columns, same group
//     representatives, bit-identical to the unsampled solve — which is
//     how a sampled request over small items still reports kExact.
//
// Sampling is deterministic: the draw depends only on (seed, item,
// review count), never on timing or thread count.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/design_matrix.h"
#include "core/selector.h"

namespace comparesets {

/// Whether `options` ask for item with `num_reviews` reviews to be
/// solved over a sample: the floor admits kSampled, a threshold is set,
/// the item exceeds it, and the sample would actually shrink it.
bool ShouldSampleItem(const SelectorOptions& options, size_t num_reviews);

/// The seeded without-replacement draw for one item: sorted review
/// indices, |result| = min(options.sample_size, num_reviews). The
/// stream is derived from the item index so items sample independently
/// under one request seed.
std::vector<size_t> SampleReviewIndices(const SelectorOptions& options,
                                        size_t item, size_t num_reviews);

/// A possibly-restricted view of one item's design system.
struct RestrictedSystem {
  /// The system to solve: the restricted one, or the original `full`
  /// when the sample covered every group (the promotion path).
  std::shared_ptr<const DesignSystem> system;
  /// Fraction of the item's review mass in under-covered groups
  /// (the per-item gap bound); 0 exactly when not restricted.
  double uncovered_mass = 0.0;
  /// Whether `system` differs from `full`.
  bool restricted = false;
};

/// Restricts `full` to the sampled reviews: groups keep full-system
/// order, their multiplicities and members shrink to the sampled
/// subset, empty groups drop, and the Gram is rebuilt over the surviving
/// columns against the unchanged target. `sample` must be sorted.
/// `m` is the selection budget the coverage rule is relative to.
RestrictedSystem RestrictToSample(std::shared_ptr<const DesignSystem> full,
                                  const std::vector<size_t>& sample, size_t m);

/// One-stop per-item hook for the Gram-backed selectors: returns the
/// system to solve plus the item's gap bound. Equals {full, 0, false}
/// whenever ShouldSampleItem says no.
RestrictedSystem MaybeSampleSystem(std::shared_ptr<const DesignSystem> full,
                                   const SelectorOptions& options, size_t item,
                                   size_t num_reviews);

/// Value-level variant for callers that own a mutable system and
/// refresh its target across sweeps (CompaReSetS+): restricts *system
/// in place when the item should sample and the sample is lossy.
/// Returns the item's uncovered mass (0 when left unrestricted) and
/// reports via *restricted whether the system was replaced. The
/// restricted skeleton stays valid across RefreshDesignTarget calls —
/// the draw depends only on (seed, item, review count), never on the
/// evolving target.
double RestrictSystemInPlace(DesignSystem* system,
                             const SelectorOptions& options, size_t item,
                             size_t num_reviews, bool* restricted);

/// Folds per-item restriction outcomes into a SelectionResult: tier
/// drops to kSampled and objective_gap becomes the largest per-item
/// uncovered mass when any item was actually restricted.
void ApplySamplingOutcome(const std::vector<double>& uncovered,
                          const std::vector<char>& restricted,
                          SelectionResult* result);

}  // namespace comparesets
