#include "core/design_matrix.h"

#include <map>

#include "util/logging.h"

namespace comparesets {

namespace {

/// Deduplicates raw per-review columns into a DesignSystem. Signature
/// equality is exact double equality, which is correct here: columns are
/// built from identical integer indicators scaled by the same constants.
DesignSystem Deduplicate(std::vector<Vector> columns, Vector target) {
  // Map column payload -> group index (ordered map gives deterministic
  // group order independent of hashing).
  std::map<std::vector<double>, size_t> groups;
  DesignSystem out;
  out.target = std::move(target);

  std::vector<const Vector*> representatives;
  for (size_t j = 0; j < columns.size(); ++j) {
    auto [it, inserted] =
        groups.emplace(columns[j].data(), representatives.size());
    if (inserted) {
      representatives.push_back(&columns[j]);
      out.dup_counts.push_back(0);
      out.group_reviews.emplace_back();
    }
    ++out.dup_counts[it->second];
    out.group_reviews[it->second].push_back(j);
  }

  size_t rows = out.target.size();
  out.v = Matrix(rows, representatives.size());
  for (size_t g = 0; g < representatives.size(); ++g) {
    COMPARESETS_CHECK(representatives[g]->size() == rows)
        << "design column size mismatch";
    out.v.SetColumn(g, *representatives[g]);
  }
  return out;
}

}  // namespace

DesignSystem BuildCrsSystem(const InstanceVectors& vectors, size_t item) {
  COMPARESETS_CHECK(item < vectors.num_items()) << "item out of range";
  std::vector<Vector> columns;
  size_t reviews = vectors.num_reviews(item);
  columns.reserve(reviews);
  for (size_t j = 0; j < reviews; ++j) {
    columns.push_back(vectors.opinion_columns[item][j]);
  }
  return Deduplicate(std::move(columns), vectors.tau[item]);
}

DesignSystem BuildCompareSetsSystem(const InstanceVectors& vectors,
                                    size_t item, double lambda) {
  COMPARESETS_CHECK(item < vectors.num_items()) << "item out of range";
  std::vector<Vector> columns;
  size_t reviews = vectors.num_reviews(item);
  columns.reserve(reviews);
  for (size_t j = 0; j < reviews; ++j) {
    Vector column = vectors.opinion_columns[item][j];
    column.AppendScaled(lambda, vectors.aspect_columns[item][j]);
    columns.push_back(std::move(column));
  }
  Vector target = vectors.tau[item];
  target.AppendScaled(lambda, vectors.gamma);
  return Deduplicate(std::move(columns), std::move(target));
}

DesignSystem BuildCompareSetsPlusSystem(
    const InstanceVectors& vectors, size_t item, double lambda, double mu,
    const std::vector<Vector>& other_phis) {
  COMPARESETS_CHECK(item < vectors.num_items()) << "item out of range";
  COMPARESETS_CHECK(other_phis.size() == vectors.num_items() - 1)
      << "expected one φ per other item";

  std::vector<Vector> columns;
  size_t reviews = vectors.num_reviews(item);
  columns.reserve(reviews);
  for (size_t j = 0; j < reviews; ++j) {
    Vector column = vectors.opinion_columns[item][j];
    column.AppendScaled(lambda, vectors.aspect_columns[item][j]);
    // One μ-scaled aspect block per other item (identical rows; the
    // corresponding target blocks differ — Algorithm 1 line 4).
    for (size_t t = 0; t < other_phis.size(); ++t) {
      column.AppendScaled(mu, vectors.aspect_columns[item][j]);
    }
    columns.push_back(std::move(column));
  }

  Vector target = vectors.tau[item];
  target.AppendScaled(lambda, vectors.gamma);
  for (const Vector& phi : other_phis) {
    target.AppendScaled(mu, phi);
  }
  return Deduplicate(std::move(columns), std::move(target));
}

}  // namespace comparesets
