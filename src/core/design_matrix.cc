#include "core/design_matrix.h"

#include <bit>
#include <utility>

#include "linalg/kernels/kernels.h"
#include "util/logging.h"

namespace comparesets {

namespace {

/// Appends `scale * block` to a sparse column at row offset `offset`,
/// skipping exact zeros (so λ = 0 blocks collapse away, exactly as the
/// historical dense columns compared equal there).
void AppendBlock(SparseColumn* column, size_t offset, double scale,
                 const Vector& block) {
  for (size_t i = 0; i < block.size(); ++i) {
    double value = scale * block[i];
    if (value != 0.0) column->push_back({offset + i, value});
  }
}

/// Strict weak order on sparse columns equal to lexicographic order of
/// their dense payloads — a merge walk over the two nonzero lists where
/// a missing row compares as 0.0. Keeps the dedup group numbering
/// bit-identical to the historical std::map<std::vector<double>, …>.
bool DenseLexLess(const SparseColumn& a, const SparseColumn& b) {
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.size() || ib < b.size()) {
    size_t ra = ia < a.size() ? a[ia].row : static_cast<size_t>(-1);
    size_t rb = ib < b.size() ? b[ib].row : static_cast<size_t>(-1);
    if (ra == rb) {
      if (a[ia].value != b[ib].value) return a[ia].value < b[ib].value;
      ++ia;
      ++ib;
    } else if (ra < rb) {
      // First difference is at row ra, where b is implicitly zero.
      if (a[ia].value != 0.0) return a[ia].value < 0.0;
      ++ia;
    } else {
      if (b[ib].value != 0.0) return b[ib].value > 0.0;
      ++ib;
    }
  }
  return false;
}

/// Deduplicates raw per-review sparse columns into a DesignSystem.
/// Signature equality is exact double equality, which is correct here:
/// columns are built from identical integer indicators scaled by the
/// same constants. When `build_gram` is false the caller fills the Gram
/// itself (the batched prefetch path runs one BuildGramSystemBatch over
/// many skeletons instead of one build per system).
DesignSystem Deduplicate(size_t rows, std::vector<SparseColumn> columns,
                         Vector target, bool build_gram = true) {
  COMPARESETS_CHECK(target.size() == rows) << "design target size mismatch";
  // Map column payload -> group index (ordered map under the dense-
  // lexicographic comparator gives deterministic group order independent
  // of hashing, matching the historical dense dedup exactly).
  struct ColumnLess {
    bool operator()(const SparseColumn* a, const SparseColumn* b) const {
      return DenseLexLess(*a, *b);
    }
  };
  std::map<const SparseColumn*, size_t, ColumnLess> groups;
  DesignSystem out;
  out.target = std::move(target);

  std::vector<const SparseColumn*> representatives;
  for (size_t j = 0; j < columns.size(); ++j) {
    auto [it, inserted] = groups.emplace(&columns[j], representatives.size());
    if (inserted) {
      representatives.push_back(&columns[j]);
      out.dup_counts.push_back(0);
      out.group_reviews.emplace_back();
    }
    ++out.dup_counts[it->second];
    out.group_reviews[it->second].push_back(j);
  }

  out.v = SparseMatrix(rows);
  for (const SparseColumn* representative : representatives) {
    out.v.AppendColumn(*representative);
  }
  if (build_gram) out.gram = BuildGramSystem(out.v, out.target);
  return out;
}

/// BuildCrsSystem minus the Gram (filled by the caller).
DesignSystem BuildCrsSkeleton(const InstanceVectors& vectors, size_t item) {
  COMPARESETS_CHECK(item < vectors.num_items()) << "item out of range";
  std::vector<SparseColumn> columns;
  size_t reviews = vectors.num_reviews(item);
  columns.reserve(reviews);
  for (size_t j = 0; j < reviews; ++j) {
    SparseColumn column;
    AppendBlock(&column, 0, 1.0, vectors.opinion_columns[item][j]);
    columns.push_back(std::move(column));
  }
  return Deduplicate(vectors.tau[item].size(), std::move(columns),
                     vectors.tau[item], /*build_gram=*/false);
}

/// BuildCompareSetsSystem minus the Gram (filled by the caller).
DesignSystem BuildCompareSetsSkeleton(const InstanceVectors& vectors,
                                      size_t item, double lambda) {
  COMPARESETS_CHECK(item < vectors.num_items()) << "item out of range";
  std::vector<SparseColumn> columns;
  size_t reviews = vectors.num_reviews(item);
  size_t opinion_rows = vectors.tau[item].size();
  columns.reserve(reviews);
  for (size_t j = 0; j < reviews; ++j) {
    SparseColumn column;
    AppendBlock(&column, 0, 1.0, vectors.opinion_columns[item][j]);
    AppendBlock(&column, opinion_rows, lambda, vectors.aspect_columns[item][j]);
    columns.push_back(std::move(column));
  }
  Vector target = vectors.tau[item];
  target.AppendScaled(lambda, vectors.gamma);
  size_t rows = target.size();
  return Deduplicate(rows, std::move(columns), std::move(target),
                     /*build_gram=*/false);
}

}  // namespace

DesignSystem BuildCrsSystem(const InstanceVectors& vectors, size_t item) {
  DesignSystem out = BuildCrsSkeleton(vectors, item);
  out.gram = BuildGramSystem(out.v, out.target);
  return out;
}

DesignSystem BuildCompareSetsSystem(const InstanceVectors& vectors,
                                    size_t item, double lambda) {
  DesignSystem out = BuildCompareSetsSkeleton(vectors, item, lambda);
  out.gram = BuildGramSystem(out.v, out.target);
  return out;
}

DesignSystem BuildCompareSetsPlusSystem(
    const InstanceVectors& vectors, size_t item, double lambda, double mu,
    const std::vector<Vector>& other_phis) {
  COMPARESETS_CHECK(item < vectors.num_items()) << "item out of range";
  COMPARESETS_CHECK(other_phis.size() == vectors.num_items() - 1)
      << "expected one φ per other item";

  std::vector<SparseColumn> columns;
  size_t reviews = vectors.num_reviews(item);
  size_t opinion_rows = vectors.tau[item].size();
  size_t aspect_rows = vectors.gamma.size();
  columns.reserve(reviews);
  for (size_t j = 0; j < reviews; ++j) {
    SparseColumn column;
    AppendBlock(&column, 0, 1.0, vectors.opinion_columns[item][j]);
    AppendBlock(&column, opinion_rows, lambda, vectors.aspect_columns[item][j]);
    // One μ-scaled aspect block per other item (identical rows; the
    // corresponding target blocks differ — Algorithm 1 line 4).
    size_t offset = opinion_rows + aspect_rows;
    for (size_t t = 0; t < other_phis.size(); ++t) {
      AppendBlock(&column, offset, mu, vectors.aspect_columns[item][j]);
      offset += aspect_rows;
    }
    columns.push_back(std::move(column));
  }

  Vector target =
      BuildCompareSetsPlusTarget(vectors, item, lambda, mu, other_phis);
  size_t rows = target.size();
  return Deduplicate(rows, std::move(columns), std::move(target));
}

Vector BuildCompareSetsPlusTarget(const InstanceVectors& vectors, size_t item,
                                  double lambda, double mu,
                                  const std::vector<Vector>& other_phis) {
  Vector target = vectors.tau[item];
  target.AppendScaled(lambda, vectors.gamma);
  for (const Vector& phi : other_phis) {
    target.AppendScaled(mu, phi);
  }
  return target;
}

void RefreshDesignTarget(DesignSystem* system, Vector target) {
  COMPARESETS_CHECK(target.size() == system->target.size())
      << "refreshed target size mismatch";
  system->target = std::move(target);
  const SparseMatrix& v = system->v;
  GramSystem& gram = system->gram;
  const KernelDispatch& kernels = Kernels();
  // Each column of the transposed GEMV runs the same gather reduction a
  // full rebuild's per-column Ṽᵀy pass runs, so the bits match exactly;
  // G and the column norms never depended on the target.
  kernels.sparse_gemv_t(v.ColPtr(), v.RowIdx(), v.Values(), v.cols(),
                        system->target.raw(), gram.vty.raw());
  gram.target_norm2 = kernels.dot(system->target.raw(), system->target.raw(),
                                  system->target.size());
}

std::shared_ptr<const DesignSystem> DesignSystemCache::GetCrs(
    const InstanceVectors& vectors, size_t item) const {
  return GetOrBuild(Key{'r', item, 0}, vectors, 0.0);
}

std::shared_ptr<const DesignSystem> DesignSystemCache::GetCompareSets(
    const InstanceVectors& vectors, size_t item, double lambda) const {
  return GetOrBuild(Key{'c', item, std::bit_cast<uint64_t>(lambda)}, vectors,
                    lambda);
}

void DesignSystemCache::PrefetchCrs(const InstanceVectors& vectors) const {
  Prefetch('r', vectors, 0.0);
}

void DesignSystemCache::PrefetchCompareSets(const InstanceVectors& vectors,
                                            double lambda) const {
  Prefetch('c', vectors, lambda);
}

void DesignSystemCache::Prefetch(char kind, const InstanceVectors& vectors,
                                 double lambda) const {
  uint64_t lambda_bits = kind == 'r' ? 0 : std::bit_cast<uint64_t>(lambda);
  std::vector<size_t> missing;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t item = 0; item < vectors.num_items(); ++item) {
      if (!entries_.contains(Key{kind, item, lambda_bits})) {
        missing.push_back(item);
      }
    }
  }
  if (missing.empty()) return;

  // Skeletons first, then one batched Gram pass over a shared scatter
  // workspace — all outside the lock; racing on-demand builds of the
  // same keys produce identical systems and whichever inserts first
  // wins.
  std::vector<std::shared_ptr<DesignSystem>> built;
  built.reserve(missing.size());
  for (size_t item : missing) {
    built.push_back(std::make_shared<DesignSystem>(
        kind == 'r' ? BuildCrsSkeleton(vectors, item)
                    : BuildCompareSetsSkeleton(vectors, item, lambda)));
  }
  std::vector<GramBuildItem> gram_items;
  gram_items.reserve(built.size());
  for (const auto& system : built) {
    gram_items.push_back({&system->v, &system->target});
  }
  std::vector<GramSystem> grams = BuildGramSystemBatch(gram_items);
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t k = 0; k < built.size(); ++k) {
    built[k]->gram = std::move(grams[k]);
    if (entries_.size() >= kMaxEntries) entries_.clear();
    entries_.emplace(Key{kind, missing[k], lambda_bits}, std::move(built[k]));
  }
}

std::shared_ptr<const DesignSystem> DesignSystemCache::GetOrBuild(
    const Key& key, const InstanceVectors& vectors, double lambda) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) return it->second;
  }
  // Build outside the lock: systems are deterministic, so a racing
  // duplicate build produces an identical value and the first insert
  // wins below.
  auto built = std::make_shared<const DesignSystem>(
      key.kind == 'r' ? BuildCrsSystem(vectors, key.item)
                      : BuildCompareSetsSystem(vectors, key.item, lambda));
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= kMaxEntries) entries_.clear();
  auto [it, inserted] = entries_.emplace(key, std::move(built));
  return it->second;
}

size_t DesignSystemCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t DesignSystemCache::ApproxMemoryBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = 0;
  for (const auto& [key, system] : entries_) {
    bytes += system->ApproxMemoryBytes();
  }
  return bytes;
}

std::shared_ptr<const DesignSystem> GetOrBuildCrsSystem(
    const InstanceVectors& vectors, size_t item) {
  if (vectors.system_cache != nullptr) {
    return vectors.system_cache->GetCrs(vectors, item);
  }
  return std::make_shared<const DesignSystem>(BuildCrsSystem(vectors, item));
}

std::shared_ptr<const DesignSystem> GetOrBuildCompareSetsSystem(
    const InstanceVectors& vectors, size_t item, double lambda) {
  if (vectors.system_cache != nullptr) {
    return vectors.system_cache->GetCompareSets(vectors, item, lambda);
  }
  return std::make_shared<const DesignSystem>(
      BuildCompareSetsSystem(vectors, item, lambda));
}

void PrefetchCrsSystems(const InstanceVectors& vectors) {
  if (vectors.system_cache != nullptr) {
    vectors.system_cache->PrefetchCrs(vectors);
  }
}

void PrefetchCompareSetsSystems(const InstanceVectors& vectors,
                                double lambda) {
  if (vectors.system_cache != nullptr) {
    vectors.system_cache->PrefetchCompareSets(vectors, lambda);
  }
}

}  // namespace comparesets
