// CompaReSetS — Problem 1 (Eq. 1): per-item Integer-Regression against
// the concatenated target [τ_i ; λΓ], linking every item to the target
// item's aspect distribution.

#pragma once

#include "core/selector.h"

namespace comparesets {

class CompareSetsSelector : public ReviewSelector {
 public:
  using ReviewSelector::Select;
  std::string name() const override { return "CompaReSetS"; }
  Result<SelectionResult> Select(const InstanceVectors& vectors,
                                 const SelectorOptions& options,
                                 const ExecControl* control) const override;
  void PrefetchSystems(const InstanceVectors& vectors,
                       const SelectorOptions& options) const override;
};

}  // namespace comparesets
