#include "core/review_sampling.h"

#include <algorithm>
#include <utility>

#include "util/rng.h"

namespace comparesets {

namespace {

/// Shared restriction core: scans coverage and, when the sample is
/// lossy, fills *out with the restricted system and returns the
/// uncovered mass (> 0). Lossless samples return 0 with *out untouched
/// — the caller keeps the full system (the promotion path).
double RestrictCore(const DesignSystem& full, const std::vector<size_t>& sample,
                    size_t m, DesignSystem* out) {
  size_t q = full.group_reviews.size();
  std::vector<std::vector<size_t>> sampled_members(q);
  double total_mass = 0.0;
  double uncovered = 0.0;
  bool lossless = true;
  for (size_t g = 0; g < q; ++g) {
    for (size_t r : full.group_reviews[g]) {
      if (std::binary_search(sample.begin(), sample.end(), r)) {
        sampled_members[g].push_back(r);
      }
    }
    double mass = static_cast<double>(full.dup_counts[g]);
    total_mass += mass;
    // A budget <= m can want at most min(c_g, m) copies of group g; a
    // sample holding that many loses nothing for this group.
    size_t need = std::min(static_cast<size_t>(full.dup_counts[g]), m);
    if (sampled_members[g].size() < need) {
      lossless = false;
      uncovered += mass;
    }
  }
  if (lossless) return 0.0;

  out->v = SparseMatrix(full.v.rows());
  out->dup_counts.clear();
  out->group_reviews.clear();
  for (size_t g = 0; g < q; ++g) {
    if (sampled_members[g].empty()) continue;
    SparseColumn column;
    size_t nnz = full.v.ColumnNnz(g);
    const size_t* rows = full.v.ColumnRows(g);
    const double* values = full.v.ColumnValues(g);
    column.reserve(nnz);
    for (size_t k = 0; k < nnz; ++k) {
      column.push_back(SparseEntry{rows[k], values[k]});
    }
    out->v.AppendColumn(column);
    out->dup_counts.push_back(static_cast<int>(sampled_members[g].size()));
    out->group_reviews.push_back(std::move(sampled_members[g]));
  }
  // Column sampling leaves the row space — and with it the target —
  // untouched; only the normal equations shrink.
  out->target = full.target;
  out->gram = GramSystem::Build(out->v, out->target);
  return total_mass > 0.0 ? uncovered / total_mass : 0.0;
}

}  // namespace

bool ShouldSampleItem(const SelectorOptions& options, size_t num_reviews) {
  return options.min_tier == QualityTier::kSampled &&
         options.sample_threshold > 0 &&
         num_reviews > options.sample_threshold && options.sample_size > 0 &&
         options.sample_size < num_reviews;
}

std::vector<size_t> SampleReviewIndices(const SelectorOptions& options,
                                        size_t item, size_t num_reviews) {
  // Knuth-multiplicative stream separation: one request seed, one
  // independent draw per item, stable across thread counts.
  Rng rng(options.seed, item * 2654435761ull + 0x51edu);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(
      num_reviews, std::min(options.sample_size, num_reviews));
  std::sort(sample.begin(), sample.end());
  return sample;
}

RestrictedSystem RestrictToSample(std::shared_ptr<const DesignSystem> full,
                                  const std::vector<size_t>& sample,
                                  size_t m) {
  DesignSystem restricted;
  double mass = RestrictCore(*full, sample, m, &restricted);
  if (mass == 0.0) return RestrictedSystem{std::move(full), 0.0, false};
  return RestrictedSystem{
      std::make_shared<const DesignSystem>(std::move(restricted)), mass, true};
}

RestrictedSystem MaybeSampleSystem(std::shared_ptr<const DesignSystem> full,
                                   const SelectorOptions& options, size_t item,
                                   size_t num_reviews) {
  if (!ShouldSampleItem(options, num_reviews)) {
    return RestrictedSystem{std::move(full), 0.0, false};
  }
  std::vector<size_t> sample =
      SampleReviewIndices(options, item, num_reviews);
  return RestrictToSample(std::move(full), sample, options.m);
}

double RestrictSystemInPlace(DesignSystem* system,
                             const SelectorOptions& options, size_t item,
                             size_t num_reviews, bool* restricted) {
  *restricted = false;
  if (!ShouldSampleItem(options, num_reviews)) return 0.0;
  std::vector<size_t> sample =
      SampleReviewIndices(options, item, num_reviews);
  DesignSystem out;
  double mass = RestrictCore(*system, sample, options.m, &out);
  if (mass == 0.0) return 0.0;
  *system = std::move(out);
  *restricted = true;
  return mass;
}

void ApplySamplingOutcome(const std::vector<double>& uncovered,
                          const std::vector<char>& restricted,
                          SelectionResult* result) {
  double gap = 0.0;
  bool any = false;
  for (size_t i = 0; i < restricted.size(); ++i) {
    if (!restricted[i]) continue;
    any = true;
    gap = std::max(gap, uncovered[i]);
  }
  if (any) {
    result->tier = QualityTier::kSampled;
    result->objective_gap = gap;
  }
}

}  // namespace comparesets
