#include "core/random_selector.h"

#include <algorithm>

#include "eval/objective.h"
#include "util/rng.h"

namespace comparesets {

Result<SelectionResult> RandomSelector::Select(
    const InstanceVectors& vectors, const SelectorOptions& options,
    const ExecControl* control) const {
  if (options.m == 0) return Status::InvalidArgument("m must be >= 1");
  // Mix the seed with the instance's identity-free shape so different
  // instances draw different reviews under the same global seed.
  uint64_t stream = vectors.num_items() * 2654435761u +
                    vectors.num_reviews(0);
  Rng rng(options.seed, stream);

  SelectionResult out;
  out.selections.reserve(vectors.num_items());
  for (size_t i = 0; i < vectors.num_items(); ++i) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(control, "random item loop"));
    size_t num_reviews = vectors.num_reviews(i);
    size_t take = std::min(options.m, num_reviews);
    Selection selection = rng.SampleWithoutReplacement(num_reviews, take);
    std::sort(selection.begin(), selection.end());
    out.selections.push_back(std::move(selection));
  }
  out.objective = CompareSetsPlusObjective(vectors, out.selections,
                                           options.lambda, options.mu);
  return out;
}

}  // namespace comparesets
