// Common interface for comparative review-set selectors: the paper's
// CompaReSetS / CompaReSetS+ and the baselines Crs, CompaReSetSGreedy,
// and Random (§4.1.2).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "opinion/vectors.h"
#include "util/cancellation.h"
#include "util/parallel.h"
#include "util/status.h"

namespace comparesets {

/// Quality tier of a selection result — what the caller actually got,
/// ordered from most degraded to exact. The numeric order is the
/// contract: a request's `min_tier` is a FLOOR, and a smaller value is
/// a looser floor (accepts more degradation).
///   kExact   — the selector ran to completion over the full corpus.
///   kAnytime — the deadline fired mid-solve; the greedy incumbent was
///              returned instead of an error.
///   kSampled — huge items were solved over a seeded review sample;
///              `objective_gap` bounds what the sample may have missed.
enum class QualityTier : uint8_t {
  kSampled = 0,
  kAnytime = 1,
  kExact = 2,
};

/// Stable lowercase name ("sampled", "anytime", "exact").
const char* QualityTierName(QualityTier tier);

/// Inverse of QualityTierName; unknown names return kInvalidArgument.
Result<QualityTier> ParseQualityTier(const std::string& name);

/// The looser (more degraded) of two floors — how an engine-wide
/// degradation policy combines with a per-request one: either side may
/// loosen, neither may tighten the other.
inline QualityTier LooserTier(QualityTier a, QualityTier b) {
  return static_cast<uint8_t>(a) < static_cast<uint8_t>(b) ? a : b;
}

struct SelectorOptions {
  /// Maximum number of reviews to select per item (paper's m).
  size_t m = 3;
  /// Opinion-vs-aspect trade-off λ (best value in the paper: 1).
  double lambda = 1.0;
  /// Cross-item synchronization weight μ (best value in the paper: 0.1).
  double mu = 0.1;
  /// Seed for stochastic selectors (Random).
  uint64_t seed = 7;
  /// Extra coordinate-descent sweeps for CompaReSetS+ beyond Algorithm 1's
  /// single pass (0 reproduces the paper; more sweeps is an extension
  /// that can only improve the objective).
  int extra_sync_rounds = 0;
  /// Run the Integer-Regression relaxations on the legacy dense
  /// NOMP/NNLS/QR stack instead of the sparse Gram/Cholesky core. The
  /// reference implementation the equivalence tests compare against;
  /// selections are identical either way (up to floating-point ties).
  bool dense_reference_solver = false;
  /// Intra-request parallelism: the pool (if any) the selector may fan
  /// its independent per-item solves onto, and a lane cap. A *runtime
  /// control* like the deadline — it changes wall-clock, never the
  /// selections (parallel is bit-identical to serial; see
  /// docs/execution-model.md) — so the engine's result memo excludes it
  /// from the key. Default: empty (serial).
  ParallelContext parallel;
  /// Lowest quality tier the caller accepts (the degradation FLOOR).
  /// kExact (the default) is the pre-tier behaviour: deadline expiry
  /// and overload are errors. kAnytime additionally allows SelectTiered
  /// to answer with the greedy incumbent when the deadline fires.
  /// kSampled additionally allows review-sampled solves on items above
  /// `sample_threshold`. The floor never changes a completed exact
  /// solve — it only widens what counts as an answer.
  QualityTier min_tier = QualityTier::kExact;
  /// Items with more than this many reviews are solved over a seeded
  /// review sample when the floor admits kSampled (0 = never sample).
  size_t sample_threshold = 0;
  /// Reviews drawn per sampled item. Values >= the item's review count
  /// promote the item back to the full (exact) solve.
  size_t sample_size = 0;
};

struct SelectionResult {
  /// One selection (review indices, sorted) per item; index 0 = target.
  std::vector<Selection> selections;
  /// The Eq. 5 objective value of the selections (with the options' λ, μ),
  /// reported uniformly so all algorithms are comparable.
  double objective = 0.0;
  /// What the caller actually got (see QualityTier). Select fills
  /// kExact or kSampled; only SelectTiered ever returns kAnytime.
  QualityTier tier = QualityTier::kExact;
  /// Upper bound on the review mass the solve could not see: the
  /// largest per-item fraction of reviews in dedup groups the sample
  /// under-covered. 0 for exact and anytime results; in [0, 1] for
  /// sampled ones. A bound, not an objective delta — gap 0 with
  /// tier kSampled never happens (such items promote to exact).
  double objective_gap = 0.0;
};

class ReviewSelector {
 public:
  virtual ~ReviewSelector() = default;

  /// Stable display name used in benchmark tables.
  virtual std::string name() const = 0;

  /// Selects at most options.m reviews per item of the instance.
  /// `control` carries the caller's deadline/cancellation, checked at
  /// iteration boundaries (per item, per sweep, per NOMP/NNLS step);
  /// expiry returns kDeadlineExceeded / kCancelled instead of running
  /// on. A nullptr control (the convenience overload below) solves
  /// uncontrolled — completed runs are bit-identical either way.
  virtual Result<SelectionResult> Select(const InstanceVectors& vectors,
                                         const SelectorOptions& options,
                                         const ExecControl* control) const = 0;

  /// Uncontrolled solve (no deadline, not cancellable).
  Result<SelectionResult> Select(const InstanceVectors& vectors,
                                 const SelectorOptions& options) const {
    return Select(vectors, options, nullptr);
  }

  /// Tier-aware solve: Select, wrapped in the anytime protocol when the
  /// options' floor admits degradation AND the control carries a real
  /// deadline. The greedy incumbent is computed first (deadline
  /// stripped — it is the answer of last resort, so it must not itself
  /// expire; cancellation still aborts it), then this selector refines
  /// under the full control. A refinement that completes no worse than
  /// the incumbent is returned as-is (tier kExact / kSampled); deadline
  /// expiry — or a completed refinement that lost to the incumbent,
  /// which NOMP rounding permits — returns the incumbent as kAnytime.
  /// With the default kExact floor this IS Select: same call, same
  /// bits, same errors.
  Result<SelectionResult> SelectTiered(const InstanceVectors& vectors,
                                       const SelectorOptions& options,
                                       const ExecControl* control) const;

  /// Warms the instance's DesignSystemCache with every per-item system
  /// a Select under these options would build on demand, assembled as
  /// one batched Gram kernel pass instead of per-item builds. Purely a
  /// performance hook for the engine's batch window: Select results are
  /// bit-identical with or without it, and it is a no-op when the
  /// instance carries no cache. Selectors with nothing cacheable keep
  /// the empty default.
  virtual void PrefetchSystems(const InstanceVectors& vectors,
                               const SelectorOptions& options) const {
    (void)vectors;
    (void)options;
  }
};

/// Factory by table name: "Random", "Crs", "CompaReSetSGreedy",
/// "CompaReSetS", "CompaReSetS+". Unknown names return an error.
Result<std::unique_ptr<ReviewSelector>> MakeSelector(const std::string& name);

/// All selector names in the paper's table order.
const std::vector<std::string>& AllSelectorNames();

}  // namespace comparesets
