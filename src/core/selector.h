// Common interface for comparative review-set selectors: the paper's
// CompaReSetS / CompaReSetS+ and the baselines Crs, CompaReSetSGreedy,
// and Random (§4.1.2).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "opinion/vectors.h"
#include "util/cancellation.h"
#include "util/parallel.h"
#include "util/status.h"

namespace comparesets {

struct SelectorOptions {
  /// Maximum number of reviews to select per item (paper's m).
  size_t m = 3;
  /// Opinion-vs-aspect trade-off λ (best value in the paper: 1).
  double lambda = 1.0;
  /// Cross-item synchronization weight μ (best value in the paper: 0.1).
  double mu = 0.1;
  /// Seed for stochastic selectors (Random).
  uint64_t seed = 7;
  /// Extra coordinate-descent sweeps for CompaReSetS+ beyond Algorithm 1's
  /// single pass (0 reproduces the paper; more sweeps is an extension
  /// that can only improve the objective).
  int extra_sync_rounds = 0;
  /// Run the Integer-Regression relaxations on the legacy dense
  /// NOMP/NNLS/QR stack instead of the sparse Gram/Cholesky core. The
  /// reference implementation the equivalence tests compare against;
  /// selections are identical either way (up to floating-point ties).
  bool dense_reference_solver = false;
  /// Intra-request parallelism: the pool (if any) the selector may fan
  /// its independent per-item solves onto, and a lane cap. A *runtime
  /// control* like the deadline — it changes wall-clock, never the
  /// selections (parallel is bit-identical to serial; see
  /// docs/execution-model.md) — so the engine's result memo excludes it
  /// from the key. Default: empty (serial).
  ParallelContext parallel;
};

struct SelectionResult {
  /// One selection (review indices, sorted) per item; index 0 = target.
  std::vector<Selection> selections;
  /// The Eq. 5 objective value of the selections (with the options' λ, μ),
  /// reported uniformly so all algorithms are comparable.
  double objective = 0.0;
};

class ReviewSelector {
 public:
  virtual ~ReviewSelector() = default;

  /// Stable display name used in benchmark tables.
  virtual std::string name() const = 0;

  /// Selects at most options.m reviews per item of the instance.
  /// `control` carries the caller's deadline/cancellation, checked at
  /// iteration boundaries (per item, per sweep, per NOMP/NNLS step);
  /// expiry returns kDeadlineExceeded / kCancelled instead of running
  /// on. A nullptr control (the convenience overload below) solves
  /// uncontrolled — completed runs are bit-identical either way.
  virtual Result<SelectionResult> Select(const InstanceVectors& vectors,
                                         const SelectorOptions& options,
                                         const ExecControl* control) const = 0;

  /// Uncontrolled solve (no deadline, not cancellable).
  Result<SelectionResult> Select(const InstanceVectors& vectors,
                                 const SelectorOptions& options) const {
    return Select(vectors, options, nullptr);
  }

  /// Warms the instance's DesignSystemCache with every per-item system
  /// a Select under these options would build on demand, assembled as
  /// one batched Gram kernel pass instead of per-item builds. Purely a
  /// performance hook for the engine's batch window: Select results are
  /// bit-identical with or without it, and it is a no-op when the
  /// instance carries no cache. Selectors with nothing cacheable keep
  /// the empty default.
  virtual void PrefetchSystems(const InstanceVectors& vectors,
                               const SelectorOptions& options) const {
    (void)vectors;
    (void)options;
  }
};

/// Factory by table name: "Random", "Crs", "CompaReSetSGreedy",
/// "CompaReSetS", "CompaReSetS+". Unknown names return an error.
Result<std::unique_ptr<ReviewSelector>> MakeSelector(const std::string& name);

/// All selector names in the paper's table order.
const std::vector<std::string>& AllSelectorNames();

}  // namespace comparesets
