// Design-matrix construction for the Integer-Regression algorithm
// (paper §2.2 and Algorithm 1, Figure 3).
//
// For item p_i, each review r_j contributes one column:
//   CompaReSetS:   [ b(r_j) ; λ·a(r_j) ]               target [τ_i ; λΓ]
//   CompaReSetS+:  [ b(r_j) ; λ·a(r_j) ; μ·a(r_j) ×(n−1) ]
//                  target [τ_i ; λΓ ; μφ(S_1) ; … ; μφ(S_n)] (skipping i)
// where b(r) is the opinion block and a(r) the 0/1 aspect block. Scaling
// both the rows and the target by λ (resp. μ) realizes the λ²/μ² weights
// of the squared objective.
//
// Identical columns (reviews with the same annotation signature) are
// deduplicated, keeping multiplicities c_1..c_q (Algorithm 1 line 5).

#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "opinion/vectors.h"

namespace comparesets {

/// A deduplicated least-squares system for one item.
struct DesignSystem {
  /// Deduplicated design matrix Ṽ (rows = target dims, cols = q groups).
  Matrix v;
  /// Target vector Υ.
  Vector target;
  /// Multiplicity c_g of each deduplicated column group.
  std::vector<int> dup_counts;
  /// Review indices (into Product::reviews) in each group.
  std::vector<std::vector<size_t>> group_reviews;
};

/// System for the plain CompaReSetS objective on `item` (Eq. 3/4).
DesignSystem BuildCompareSetsSystem(const InstanceVectors& vectors,
                                    size_t item, double lambda);

/// System for Crs (single-item characteristic selection: opinion rows
/// only — the λ = 0, single-item special case the paper reduces to).
DesignSystem BuildCrsSystem(const InstanceVectors& vectors, size_t item);

/// System for the synchronized CompaReSetS+ objective on `item`
/// (Algorithm 1 lines 3–4) given the other items' current selections.
DesignSystem BuildCompareSetsPlusSystem(
    const InstanceVectors& vectors, size_t item, double lambda, double mu,
    const std::vector<Vector>& other_phis);

}  // namespace comparesets
