// Design-matrix construction for the Integer-Regression algorithm
// (paper §2.2 and Algorithm 1, Figure 3).
//
// For item p_i, each review r_j contributes one column:
//   CompaReSetS:   [ b(r_j) ; λ·a(r_j) ]               target [τ_i ; λΓ]
//   CompaReSetS+:  [ b(r_j) ; λ·a(r_j) ; μ·a(r_j) ×(n−1) ]
//                  target [τ_i ; λΓ ; μφ(S_1) ; … ; μφ(S_n)] (skipping i)
// where b(r) is the opinion block and a(r) the 0/1 aspect block. Scaling
// both the rows and the target by λ (resp. μ) realizes the λ²/μ² weights
// of the squared objective.
//
// Identical columns (reviews with the same annotation signature) are
// deduplicated, keeping multiplicities c_1..c_q (Algorithm 1 line 5).
// Columns are assembled and deduplicated sparsely — the aspect blocks
// are 0/1 indicators, so no dense per-review column is ever formed —
// and every system carries its precomputed GramSystem (G = ṼᵀṼ, Ṽᵀy,
// ‖y‖²), which the Gram-path solvers run on.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/gram.h"
#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "opinion/vectors.h"

namespace comparesets {

/// A deduplicated least-squares system for one item.
struct DesignSystem {
  /// Deduplicated design matrix Ṽ (rows = target dims, cols = q groups).
  SparseMatrix v;
  /// Target vector Υ.
  Vector target;
  /// Multiplicity c_g of each deduplicated column group.
  std::vector<int> dup_counts;
  /// Review indices (into Product::reviews) in each group.
  std::vector<std::vector<size_t>> group_reviews;
  /// Precomputed normal equations of (v, target), built once per system.
  GramSystem gram;

  /// Approximate heap footprint (for the service cache accounting).
  size_t ApproxMemoryBytes() const {
    return v.ApproxMemoryBytes() + gram.ApproxMemoryBytes() +
           target.size() * sizeof(double) + dup_counts.size() * sizeof(int);
  }
};

/// System for the plain CompaReSetS objective on `item` (Eq. 3/4).
DesignSystem BuildCompareSetsSystem(const InstanceVectors& vectors,
                                    size_t item, double lambda);

/// System for Crs (single-item characteristic selection: opinion rows
/// only — the λ = 0, single-item special case the paper reduces to).
DesignSystem BuildCrsSystem(const InstanceVectors& vectors, size_t item);

/// System for the synchronized CompaReSetS+ objective on `item`
/// (Algorithm 1 lines 3–4) given the other items' current selections.
DesignSystem BuildCompareSetsPlusSystem(
    const InstanceVectors& vectors, size_t item, double lambda, double mu,
    const std::vector<Vector>& other_phis);

/// Just the target [τ_i ; λΓ ; μφ(S_1) ; … ; μφ(S_n)] (skipping i) of
/// BuildCompareSetsPlusSystem — assembled by the same operations, so the
/// bits match the full builder's target exactly.
Vector BuildCompareSetsPlusTarget(const InstanceVectors& vectors, size_t item,
                                  double lambda, double mu,
                                  const std::vector<Vector>& other_phis);

/// Swaps a new target (same size) into an existing system and refreshes
/// the target-dependent Gram entries (Ṽᵀy in one sparse_gemv_t kernel
/// pass, ‖y‖² in one kernel dot). The column structure — and with it the
/// dedup grouping, G, and the column norms — depends only on the
/// columns, so the result is bit-identical to rebuilding the system
/// from scratch with the new target. This is how the CompaReSetS+ sweep
/// carries each item's system across sync rounds: only the φ target
/// blocks evolve; the Ṽ skeleton and G never change.
void RefreshDesignTarget(DesignSystem* system, Vector target);

/// Bounded, thread-safe memo of built design systems for one prepared
/// instance. Crs and CompaReSetS systems depend only on (item, λ) given
/// fixed vectors, so the service layer builds each once per cached
/// instance instead of once per request. (CompaReSetS+ systems embed the
/// sweep's evolving φ targets and are deliberately not memoized.)
class DesignSystemCache {
 public:
  std::shared_ptr<const DesignSystem> GetCrs(const InstanceVectors& vectors,
                                             size_t item) const;
  std::shared_ptr<const DesignSystem> GetCompareSets(
      const InstanceVectors& vectors, size_t item, double lambda) const;

  /// Builds every item's system that is not already cached, in one pass:
  /// the column skeletons are assembled first, then all the Grams are
  /// filled by a single BuildGramSystemBatch call over one shared
  /// scatter workspace. Each inserted system is bit-identical to what
  /// the per-item getter would have built on demand; already-present
  /// entries win over prefetched ones. Purely a warm-up for the batch
  /// window — never required for correctness.
  void PrefetchCrs(const InstanceVectors& vectors) const;
  void PrefetchCompareSets(const InstanceVectors& vectors,
                           double lambda) const;

  size_t size() const;
  size_t ApproxMemoryBytes() const;

 private:
  struct Key {
    char kind;             ///< 'r' = Crs, 'c' = CompaReSetS.
    size_t item;
    uint64_t lambda_bits;  ///< bit_cast of λ: exact, hashable, orderable.
    auto operator<=>(const Key&) const = default;
  };

  std::shared_ptr<const DesignSystem> GetOrBuild(
      const Key& key, const InstanceVectors& vectors, double lambda) const;

  void Prefetch(char kind, const InstanceVectors& vectors,
                double lambda) const;

  /// Safety valve, far above any real working set (items × λ values).
  static constexpr size_t kMaxEntries = 1024;

  mutable std::mutex mutex_;
  mutable std::map<Key, std::shared_ptr<const DesignSystem>> entries_;
};

/// Cache-aware accessors the selectors use: served from
/// `vectors.system_cache` when the instance came through the service
/// layer's PreparedInstance, built fresh otherwise.
std::shared_ptr<const DesignSystem> GetOrBuildCrsSystem(
    const InstanceVectors& vectors, size_t item);
std::shared_ptr<const DesignSystem> GetOrBuildCompareSetsSystem(
    const InstanceVectors& vectors, size_t item, double lambda);

/// Batched warm-up counterparts (selector PrefetchSystems hooks): build
/// every per-item system into `vectors.system_cache` in one batched
/// Gram pass. No-ops when the instance carries no cache — uncached
/// instances build per item exactly as before.
void PrefetchCrsSystems(const InstanceVectors& vectors);
void PrefetchCompareSetsSystems(const InstanceVectors& vectors, double lambda);

}  // namespace comparesets
