#include "core/greedy_selector.h"

#include <algorithm>
#include <limits>

#include "eval/objective.h"

namespace comparesets {

Result<SelectionResult> CompareSetsGreedySelector::Select(
    const InstanceVectors& vectors, const SelectorOptions& options,
    const ExecControl* control) const {
  if (options.m == 0) return Status::InvalidArgument("m must be >= 1");

  SelectionResult out;
  out.selections.reserve(vectors.num_items());

  for (size_t i = 0; i < vectors.num_items(); ++i) {
    size_t num_reviews = vectors.num_reviews(i);
    Selection selection;
    std::vector<bool> used(num_reviews, false);
    double current_cost = std::numeric_limits<double>::infinity();

    while (selection.size() < std::min(options.m, num_reviews)) {
      COMPARESETS_RETURN_NOT_OK(CheckExec(control, "greedy growth"));
      double best_cost = std::numeric_limits<double>::infinity();
      size_t best_j = num_reviews;
      for (size_t j = 0; j < num_reviews; ++j) {
        if (used[j]) continue;
        selection.push_back(j);
        double cost = ItemCost(vectors, i, selection, options.lambda);
        selection.pop_back();
        if (cost < best_cost) {
          best_cost = cost;
          best_j = j;
        }
      }
      // First pick is always taken; afterwards only accept improvements,
      // since a characteristic subset can be strictly worse when padded.
      if (best_j == num_reviews ||
          (!selection.empty() && best_cost >= current_cost)) {
        break;
      }
      used[best_j] = true;
      selection.push_back(best_j);
      current_cost = best_cost;
    }
    std::sort(selection.begin(), selection.end());
    out.selections.push_back(std::move(selection));
  }

  out.objective = CompareSetsPlusObjective(vectors, out.selections,
                                           options.lambda, options.mu);
  return out;
}

}  // namespace comparesets
