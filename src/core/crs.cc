#include "core/crs.h"

#include <utility>

#include "core/integer_regression.h"
#include "core/review_sampling.h"
#include "eval/objective.h"
#include "util/timer.h"

namespace comparesets {

Result<SelectionResult> CrsSelector::Select(
    const InstanceVectors& vectors, const SelectorOptions& options,
    const ExecControl* control) const {
  SolverOptions solver;
  if (options.dense_reference_solver) {
    solver.backend = SolverBackend::kDenseReference;
  }
  // Each item's characteristic system is independent — fan the solves
  // out over the request's pool; the index-ordered merge keeps parallel
  // selections bit-identical to serial. Each lane writes only its own
  // sampling slot, so the outcome fold below is race-free.
  size_t n = vectors.num_items();
  std::vector<double> uncovered(n, 0.0);
  std::vector<char> restricted(n, 0);
  Timer timer;
  COMPARESETS_ASSIGN_OR_RETURN(
      std::vector<IntegerRegressionResult> items,
      SolveItemsParallel(
          n, options.parallel, control, "crs item loop",
          [&](size_t i) {
            RestrictedSystem system = MaybeSampleSystem(
                GetOrBuildCrsSystem(vectors, i), options, i,
                vectors.num_reviews(i));
            uncovered[i] = system.uncovered_mass;
            restricted[i] = system.restricted ? 1 : 0;
            auto cost = [&](const Selection& selection) {
              // Pure characteristic objective: match the item's own opinion
              // distribution only.
              return SquaredDistance(vectors.tau[i],
                                     vectors.OpinionOf(i, selection));
            };
            return SolveIntegerRegression(*system.system, options.m, cost,
                                          control, solver);
          }));
  RecordSpan(control, "crs.items", timer.ElapsedSeconds());

  SelectionResult out;
  out.selections.reserve(items.size());
  for (IntegerRegressionResult& item : items) {
    out.selections.push_back(std::move(item.selection));
  }
  out.objective = CompareSetsPlusObjective(vectors, out.selections,
                                           options.lambda, options.mu);
  ApplySamplingOutcome(uncovered, restricted, &out);
  return out;
}

void CrsSelector::PrefetchSystems(const InstanceVectors& vectors,
                                  const SelectorOptions& options) const {
  (void)options;  // Crs systems depend on the vectors only.
  PrefetchCrsSystems(vectors);
}

}  // namespace comparesets
