#include "core/crs.h"

#include "core/integer_regression.h"
#include "eval/objective.h"

namespace comparesets {

Result<SelectionResult> CrsSelector::Select(
    const InstanceVectors& vectors, const SelectorOptions& options,
    const ExecControl* control) const {
  SelectionResult out;
  out.selections.reserve(vectors.num_items());
  SolverOptions solver;
  if (options.dense_reference_solver) {
    solver.backend = SolverBackend::kDenseReference;
  }
  for (size_t i = 0; i < vectors.num_items(); ++i) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(control, "crs item loop"));
    std::shared_ptr<const DesignSystem> system = GetOrBuildCrsSystem(vectors, i);
    auto cost = [&](const Selection& selection) {
      // Pure characteristic objective: match the item's own opinion
      // distribution only.
      return SquaredDistance(vectors.tau[i], vectors.OpinionOf(i, selection));
    };
    COMPARESETS_ASSIGN_OR_RETURN(
        IntegerRegressionResult item,
        SolveIntegerRegression(*system, options.m, cost, control, solver));
    out.selections.push_back(std::move(item.selection));
  }
  out.objective = CompareSetsPlusObjective(vectors, out.selections,
                                           options.lambda, options.mu);
  return out;
}

}  // namespace comparesets
