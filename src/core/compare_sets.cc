#include "core/compare_sets.h"

#include <utility>

#include "core/integer_regression.h"
#include "core/review_sampling.h"
#include "eval/objective.h"
#include "util/timer.h"

namespace comparesets {

Result<SelectionResult> CompareSetsSelector::Select(
    const InstanceVectors& vectors, const SelectorOptions& options,
    const ExecControl* control) const {
  SolverOptions solver;
  if (options.dense_reference_solver) {
    solver.backend = SolverBackend::kDenseReference;
  }
  // Problem 1 decomposes per item: every product's NOMP/rounding run is
  // independent of the others', so fan them out over the request's pool.
  // Each lane builds/fetches its own system (DesignSystemCache locks)
  // and solves with workspace == nullptr, i.e. its own thread-local
  // scratch; the index-ordered merge keeps selections bit-identical.
  // Each lane writes only its own sampling slot, so the outcome fold
  // below is race-free.
  size_t n = vectors.num_items();
  std::vector<double> uncovered(n, 0.0);
  std::vector<char> restricted(n, 0);
  Timer timer;
  COMPARESETS_ASSIGN_OR_RETURN(
      std::vector<IntegerRegressionResult> items,
      SolveItemsParallel(
          n, options.parallel, control, "comparesets item loop",
          [&](size_t i) {
            RestrictedSystem system = MaybeSampleSystem(
                GetOrBuildCompareSetsSystem(vectors, i, options.lambda),
                options, i, vectors.num_reviews(i));
            uncovered[i] = system.uncovered_mass;
            restricted[i] = system.restricted ? 1 : 0;
            auto cost = [&](const Selection& selection) {
              return ItemCost(vectors, i, selection, options.lambda);
            };
            return SolveIntegerRegression(*system.system, options.m, cost,
                                          control, solver);
          }));
  RecordSpan(control, "compare_sets.items", timer.ElapsedSeconds());

  SelectionResult out;
  out.selections.reserve(items.size());
  for (IntegerRegressionResult& item : items) {
    out.selections.push_back(std::move(item.selection));
  }
  out.objective = CompareSetsPlusObjective(vectors, out.selections,
                                           options.lambda, options.mu);
  ApplySamplingOutcome(uncovered, restricted, &out);
  return out;
}

void CompareSetsSelector::PrefetchSystems(const InstanceVectors& vectors,
                                          const SelectorOptions& options) const {
  PrefetchCompareSetsSystems(vectors, options.lambda);
}

}  // namespace comparesets
