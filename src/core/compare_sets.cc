#include "core/compare_sets.h"

#include "core/integer_regression.h"
#include "eval/objective.h"

namespace comparesets {

Result<SelectionResult> CompareSetsSelector::Select(
    const InstanceVectors& vectors, const SelectorOptions& options,
    const ExecControl* control) const {
  SelectionResult out;
  out.selections.reserve(vectors.num_items());
  SolverOptions solver;
  if (options.dense_reference_solver) {
    solver.backend = SolverBackend::kDenseReference;
  }
  for (size_t i = 0; i < vectors.num_items(); ++i) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(control, "comparesets item loop"));
    std::shared_ptr<const DesignSystem> system =
        GetOrBuildCompareSetsSystem(vectors, i, options.lambda);
    auto cost = [&](const Selection& selection) {
      return ItemCost(vectors, i, selection, options.lambda);
    };
    COMPARESETS_ASSIGN_OR_RETURN(
        IntegerRegressionResult item,
        SolveIntegerRegression(*system, options.m, cost, control, solver));
    out.selections.push_back(std::move(item.selection));
  }
  out.objective = CompareSetsPlusObjective(vectors, out.selections,
                                           options.lambda, options.mu);
  return out;
}

}  // namespace comparesets
