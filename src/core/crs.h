// Crs — Characteristic Review Selection baseline (Lappas et al. KDD'12).
//
// Selects, independently per item, a subset whose opinion distribution
// matches the item's overall τ_i. This is the paper's single-item special
// case (one item, λ = 0): no aspect-coverage or cross-item terms.

#pragma once

#include "core/selector.h"

namespace comparesets {

class CrsSelector : public ReviewSelector {
 public:
  using ReviewSelector::Select;
  std::string name() const override { return "Crs"; }
  Result<SelectionResult> Select(const InstanceVectors& vectors,
                                 const SelectorOptions& options,
                                 const ExecControl* control) const override;
  void PrefetchSystems(const InstanceVectors& vectors,
                       const SelectorOptions& options) const override;
};

}  // namespace comparesets
