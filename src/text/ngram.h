// N-gram multiset extraction for ROUGE-N.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace comparesets {

/// Multiset of n-grams: joined-token key -> count.
using NgramCounts = std::unordered_map<std::string, int>;

/// Extracts order-n n-grams from a token sequence. Tokens are joined
/// with '\x1f' so that multi-token grams cannot collide with each other.
NgramCounts CountNgrams(const std::vector<std::string>& tokens, size_t n);

/// Size of the clipped intersection of two n-gram multisets
/// (Σ_g min(a[g], b[g])) — the ROUGE-N overlap numerator.
int ClippedOverlap(const NgramCounts& a, const NgramCounts& b);

/// Total count in a multiset.
int TotalCount(const NgramCounts& counts);

}  // namespace comparesets
