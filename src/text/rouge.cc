#include "text/rouge.h"

#include "text/lcs.h"
#include "text/tokenizer.h"

namespace comparesets {

namespace {

RougeScore FromCounts(int overlap, int candidate_total, int reference_total) {
  RougeScore score;
  if (candidate_total > 0) {
    score.precision = static_cast<double>(overlap) / candidate_total;
  }
  if (reference_total > 0) {
    score.recall = static_cast<double>(overlap) / reference_total;
  }
  if (score.precision + score.recall > 0.0) {
    score.f1 = 2.0 * score.precision * score.recall /
               (score.precision + score.recall);
  }
  return score;
}

}  // namespace

RougeTriple& RougeTriple::operator+=(const RougeTriple& other) {
  auto add = [](RougeScore& a, const RougeScore& b) {
    a.precision += b.precision;
    a.recall += b.recall;
    a.f1 += b.f1;
  };
  add(rouge1, other.rouge1);
  add(rouge2, other.rouge2);
  add(rougeL, other.rougeL);
  return *this;
}

RougeTriple& RougeTriple::operator/=(double denom) {
  auto div = [denom](RougeScore& s) {
    s.precision /= denom;
    s.recall /= denom;
    s.f1 /= denom;
  };
  div(rouge1);
  div(rouge2);
  div(rougeL);
  return *this;
}

RougeDocument::RougeDocument(std::string_view text)
    : tokens_(Tokenize(text)),
      unigrams_(CountNgrams(tokens_, 1)),
      bigrams_(CountNgrams(tokens_, 2)) {}

RougeTriple RougeDocument::ScoreAgainst(const RougeDocument& reference) const {
  RougeTriple out;
  out.rouge1 =
      FromCounts(ClippedOverlap(unigrams_, reference.unigrams_),
                 static_cast<int>(tokens_.size()),
                 static_cast<int>(reference.tokens_.size()));
  int bigram_candidate = tokens_.size() >= 2
                             ? static_cast<int>(tokens_.size()) - 1
                             : 0;
  int bigram_reference = reference.tokens_.size() >= 2
                             ? static_cast<int>(reference.tokens_.size()) - 1
                             : 0;
  out.rouge2 = FromCounts(ClippedOverlap(bigrams_, reference.bigrams_),
                          bigram_candidate, bigram_reference);
  int lcs = static_cast<int>(LcsLength(tokens_, reference.tokens_));
  out.rougeL = FromCounts(lcs, static_cast<int>(tokens_.size()),
                          static_cast<int>(reference.tokens_.size()));
  return out;
}

RougeScore Rouge1(std::string_view candidate, std::string_view reference) {
  return RougeDocument(candidate).ScoreAgainst(RougeDocument(reference)).rouge1;
}

RougeScore Rouge2(std::string_view candidate, std::string_view reference) {
  return RougeDocument(candidate).ScoreAgainst(RougeDocument(reference)).rouge2;
}

RougeScore RougeL(std::string_view candidate, std::string_view reference) {
  return RougeDocument(candidate).ScoreAgainst(RougeDocument(reference)).rougeL;
}

RougeTriple RougeAll(std::string_view candidate, std::string_view reference) {
  return RougeDocument(candidate).ScoreAgainst(RougeDocument(reference));
}

}  // namespace comparesets
