// Longest common subsequence length over token sequences (ROUGE-L core).

#pragma once

#include <string>
#include <vector>

namespace comparesets {

/// Length of the LCS of two token sequences. O(|a|·|b|) time,
/// O(min(|a|,|b|)) space (two-row dynamic program).
size_t LcsLength(const std::vector<std::string>& a,
                 const std::vector<std::string>& b);

}  // namespace comparesets
