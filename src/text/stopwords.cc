#include "text/stopwords.h"

namespace comparesets {

const std::unordered_set<std::string>& EnglishStopwords() {
  static const std::unordered_set<std::string>* kStopwords =
      new std::unordered_set<std::string>{
          "a", "about", "above", "after", "again", "against", "all", "am",
          "an", "and", "any", "are", "arent", "as", "at", "be", "because",
          "been", "before", "being", "below", "between", "both", "but", "by",
          "can", "cannot", "cant", "could", "couldnt", "did", "didnt", "do",
          "does", "doesnt", "doing", "dont", "down", "during", "each", "few",
          "for", "from", "further", "get", "got", "had", "hadnt", "has",
          "hasnt", "have", "havent", "having", "he", "hed", "hell", "her",
          "here", "heres", "hers", "herself", "hes", "him", "himself", "his",
          "how", "hows", "i", "id", "if", "ill", "im", "in", "into", "is",
          "isnt", "it", "its", "itself", "ive", "just", "lets", "me", "more",
          "most", "much", "my", "myself", "no", "nor", "not", "of", "off",
          "on", "once", "only", "or", "other", "ought", "our", "ours",
          "ourselves", "out", "over", "own", "same", "shant", "she", "shed",
          "shell", "shes", "should", "shouldnt", "so", "some", "such", "than",
          "that", "thats", "the", "their", "theirs", "them", "themselves",
          "then", "there", "theres", "these", "they", "theyd", "theyll",
          "theyre", "theyve", "this", "those", "through", "to", "too",
          "under", "until", "up", "us", "very", "was", "wasnt", "we", "wed",
          "well", "were", "werent", "weve", "what", "whats", "when", "whens",
          "where", "wheres", "which", "while", "who", "whom", "whos", "why",
          "whys", "will", "with", "wont", "would", "wouldnt", "you", "youd",
          "youll", "your", "youre", "yours", "yourself", "yourselves",
          "youve",
      };
  return *kStopwords;
}

bool IsStopword(const std::string& token) {
  return EnglishStopwords().count(token) > 0;
}

}  // namespace comparesets
