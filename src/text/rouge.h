// ROUGE metrics (Lin & Hovy 2003) used for review-alignment measurement.
//
// The paper reports F1 of ROUGE-1 (unigrams), ROUGE-2 (bigrams), and
// ROUGE-L (longest common subsequence) between pairs of selected reviews
// coming from different items, averaged over pairs. Scores here are
// returned in [0, 1]; benches print them scaled by 100 as in the paper.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "text/ngram.h"

namespace comparesets {

/// Precision / recall / F1 triple for one ROUGE variant.
struct RougeScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// R-1 / R-2 / R-L bundle, as reported in the paper's tables.
struct RougeTriple {
  RougeScore rouge1;
  RougeScore rouge2;
  RougeScore rougeL;

  RougeTriple& operator+=(const RougeTriple& other);
  RougeTriple& operator/=(double denom);
};

/// Pre-tokenized document with cached n-gram multisets, for repeated
/// scoring (amortizes preprocessing across the O(pairs) alignment pass).
class RougeDocument {
 public:
  explicit RougeDocument(std::string_view text);

  const std::vector<std::string>& tokens() const { return tokens_; }
  const NgramCounts& unigrams() const { return unigrams_; }
  const NgramCounts& bigrams() const { return bigrams_; }

  /// Scores this document as candidate against `reference`.
  RougeTriple ScoreAgainst(const RougeDocument& reference) const;

 private:
  std::vector<std::string> tokens_;
  NgramCounts unigrams_;
  NgramCounts bigrams_;
};

/// Convenience helpers over raw strings (candidate scored vs reference).
RougeScore Rouge1(std::string_view candidate, std::string_view reference);
RougeScore Rouge2(std::string_view candidate, std::string_view reference);
RougeScore RougeL(std::string_view candidate, std::string_view reference);
RougeTriple RougeAll(std::string_view candidate, std::string_view reference);

}  // namespace comparesets
