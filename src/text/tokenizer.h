// Word tokenizer used for ROUGE scoring and aspect extraction.
//
// Mirrors the standard ROUGE preprocessing: lowercase, split on
// non-alphanumeric characters, keep pure-number tokens. No stemming by
// default (an optional light suffix stripper is provided for the aspect
// extractor, which benefits from conflating plurals).

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace comparesets {

struct TokenizerOptions {
  bool lowercase = true;
  /// Strips trivial English suffixes ("-s", "-es", "-ing", "-ed") from
  /// tokens of length >= 5. Off for ROUGE, on for aspect extraction.
  bool light_stem = false;
  /// Drops tokens shorter than this after processing.
  size_t min_token_length = 1;
};

/// Splits text into word tokens.
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options = {});

/// Light suffix stripper used when TokenizerOptions::light_stem is set.
std::string LightStem(const std::string& token);

/// Splits text into sentences on '.', '!', '?' (keeping abbreviations is
/// not attempted; review text is informal). Empty sentences are dropped.
std::vector<std::string> SplitSentences(std::string_view text);

}  // namespace comparesets
