#include "text/ngram.h"

#include <algorithm>

namespace comparesets {

NgramCounts CountNgrams(const std::vector<std::string>& tokens, size_t n) {
  NgramCounts counts;
  if (n == 0 || tokens.size() < n) return counts;
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string key = tokens[i];
    for (size_t j = 1; j < n; ++j) {
      key.push_back('\x1f');
      key += tokens[i + j];
    }
    ++counts[key];
  }
  return counts;
}

int ClippedOverlap(const NgramCounts& a, const NgramCounts& b) {
  // Iterate over the smaller map for speed.
  const NgramCounts& small = a.size() <= b.size() ? a : b;
  const NgramCounts& large = a.size() <= b.size() ? b : a;
  int overlap = 0;
  for (const auto& [gram, count] : small) {
    auto it = large.find(gram);
    if (it != large.end()) overlap += std::min(count, it->second);
  }
  return overlap;
}

int TotalCount(const NgramCounts& counts) {
  int total = 0;
  for (const auto& [gram, count] : counts) total += count;
  return total;
}

}  // namespace comparesets
