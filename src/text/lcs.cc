#include "text/lcs.h"

#include <algorithm>

namespace comparesets {

size_t LcsLength(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  // Keep the shorter sequence in the inner dimension for O(min) space.
  const std::vector<std::string>& outer = a.size() >= b.size() ? a : b;
  const std::vector<std::string>& inner = a.size() >= b.size() ? b : a;
  if (inner.empty()) return 0;

  std::vector<size_t> prev(inner.size() + 1, 0);
  std::vector<size_t> curr(inner.size() + 1, 0);
  for (size_t i = 1; i <= outer.size(); ++i) {
    for (size_t j = 1; j <= inner.size(); ++j) {
      if (outer[i - 1] == inner[j - 1]) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return prev[inner.size()];
}

}  // namespace comparesets
