// English stopword list (SMART-style subset) used by the aspect
// extractor to avoid mining function words as aspects.

#pragma once

#include <string>
#include <unordered_set>

namespace comparesets {

/// Shared immutable stopword set.
const std::unordered_set<std::string>& EnglishStopwords();

/// True if `token` (already lowercased) is a stopword.
bool IsStopword(const std::string& token);

}  // namespace comparesets
