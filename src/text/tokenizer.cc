#include "text/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace comparesets {

std::string LightStem(const std::string& token) {
  // Conservative plural/inflection stripping; only applied to longer
  // tokens so short words ("is", "was", "les") are untouched.
  if (token.size() >= 6 && EndsWith(token, "ing")) {
    return token.substr(0, token.size() - 3);
  }
  if (token.size() >= 5 && EndsWith(token, "ies")) {
    return token.substr(0, token.size() - 3) + "y";
  }
  if (token.size() >= 5 && EndsWith(token, "es") &&
      !EndsWith(token, "ses")) {
    return token.substr(0, token.size() - 1);  // "batteries" handled above.
  }
  if (token.size() >= 5 && EndsWith(token, "ed")) {
    return token.substr(0, token.size() - 2);
  }
  if (token.size() >= 4 && EndsWith(token, "s") && !EndsWith(token, "ss")) {
    return token.substr(0, token.size() - 1);
  }
  return token;
}

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.empty()) return;
    std::string token = options.light_stem ? LightStem(current) : current;
    if (token.size() >= options.min_token_length) {
      tokens.push_back(std::move(token));
    }
    current.clear();
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(options.lowercase
                            ? static_cast<char>(std::tolower(c))
                            : raw);
    } else if (raw == '\'') {
      // Drop apostrophes inside words ("don't" -> "dont"), matching
      // common ROUGE tokenization.
      continue;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == '.' || c == '!' || c == '?') {
      std::string_view trimmed = Trim(current);
      if (!trimmed.empty()) out.emplace_back(trimmed);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  std::string_view trimmed = Trim(current);
  if (!trimmed.empty()) out.emplace_back(trimmed);
  return out;
}

}  // namespace comparesets
