#include "net/wire_format.h"

namespace comparesets {

namespace {

void AppendLE16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendLE32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t LoadLE16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t LoadLE32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

void AppendFrameHeader(uint16_t type, uint32_t payload_bytes,
                       std::string* out) {
  out->append(reinterpret_cast<const char*>(kFrameMagic), 4);
  AppendLE16(kWireVersion, out);
  AppendLE16(type, out);
  AppendLE32(payload_bytes, out);
}

std::string EncodeFrame(uint16_t type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrameHeader(type, static_cast<uint32_t>(payload.size()), &out);
  out.append(payload);
  return out;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view data) {
  if (data.size() < kFrameHeaderBytes) {
    return Status::ParseError("truncated frame header: " +
                              std::to_string(data.size()) + " of " +
                              std::to_string(kFrameHeaderBytes) + " bytes");
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  if (std::memcmp(p, kFrameMagic, 4) != 0) {
    return Status::ParseError("bad frame magic");
  }
  FrameHeader header;
  header.version = LoadLE16(p + 4);
  header.type = LoadLE16(p + 6);
  header.payload_bytes = LoadLE32(p + 8);
  if (header.version != kWireVersion) {
    return Status::InvalidArgument(
        "wire version mismatch: peer speaks v" +
        std::to_string(header.version) + ", this build speaks v" +
        std::to_string(kWireVersion));
  }
  if (header.payload_bytes > kMaxFramePayloadBytes) {
    return Status::ParseError(
        "oversized frame payload: " + std::to_string(header.payload_bytes) +
        " bytes (max " + std::to_string(kMaxFramePayloadBytes) + ")");
  }
  return header;
}

void WireWriter::WriteU16(uint16_t v) { AppendLE16(v, &out_); }

void WireWriter::WriteU32(uint32_t v) { AppendLE32(v, &out_); }

void WireWriter::WriteU64(uint64_t v) {
  AppendLE32(static_cast<uint32_t>(v & 0xffffffffu), &out_);
  AppendLE32(static_cast<uint32_t>(v >> 32), &out_);
}

void WireWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void WireWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

Status WireReader::Need(size_t n, const char* what) {
  if (data_.size() - pos_ < n) {
    return Status::ParseError(std::string("truncated payload reading ") +
                              what + ": need " + std::to_string(n) +
                              " bytes, have " +
                              std::to_string(data_.size() - pos_));
  }
  return Status::OK();
}

Result<uint8_t> WireReader::ReadU8() {
  COMPARESETS_RETURN_NOT_OK(Need(1, "u8"));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireReader::ReadU16() {
  COMPARESETS_RETURN_NOT_OK(Need(2, "u16"));
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += 2;
  return LoadLE16(p);
}

Result<uint32_t> WireReader::ReadU32() {
  COMPARESETS_RETURN_NOT_OK(Need(4, "u32"));
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += 4;
  return LoadLE32(p);
}

Result<uint64_t> WireReader::ReadU64() {
  COMPARESETS_RETURN_NOT_OK(Need(8, "u64"));
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += 8;
  return static_cast<uint64_t>(LoadLE32(p)) |
         (static_cast<uint64_t>(LoadLE32(p + 4)) << 32);
}

Result<int32_t> WireReader::ReadI32() {
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  return static_cast<int32_t>(v);
}

Result<bool> WireReader::ReadBool() {
  COMPARESETS_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
  if (v > 1) {
    return Status::ParseError("bad bool byte: " + std::to_string(v));
  }
  return v == 1;
}

Result<double> WireReader::ReadDouble() {
  COMPARESETS_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::ReadString() {
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  // A length prefix can never legitimately exceed what the frame cap
  // admits — reject before Need() so the error names the real problem.
  if (len > kMaxFramePayloadBytes) {
    return Status::ParseError("oversized string length: " +
                              std::to_string(len));
  }
  COMPARESETS_RETURN_NOT_OK(Need(len, "string bytes"));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Status WireReader::ExpectFullyConsumed(const char* what) const {
  if (pos_ != data_.size()) {
    return Status::ParseError(std::string(what) + ": " +
                              std::to_string(data_.size() - pos_) +
                              " trailing bytes");
  }
  return Status::OK();
}

}  // namespace comparesets
