#include "net/messages.h"

#include <utility>

namespace comparesets {

namespace {

// Last valid StatusCode value; decoded codes beyond it are garbage.
constexpr uint16_t kMaxStatusCode =
    static_cast<uint16_t>(StatusCode::kUnavailable);

// Collection caps: no legitimate message approaches them, and they stop
// a corrupted count prefix from driving a multi-gigabyte reserve.
constexpr uint32_t kMaxListElements = 1u << 20;

Result<uint32_t> ReadCount(WireReader* reader, const char* what) {
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  if (count > kMaxListElements) {
    return Status::ParseError(std::string("implausible ") + what +
                              " count: " + std::to_string(count));
  }
  return count;
}

// QualityTier travels as its u8 value; anything past the last tier is
// garbage, caught here so a corrupted byte can never smuggle an
// out-of-range enum into the engine.
Result<QualityTier> ReadTier(WireReader* reader) {
  COMPARESETS_ASSIGN_OR_RETURN(uint8_t raw, reader->ReadU8());
  if (raw > static_cast<uint8_t>(QualityTier::kExact)) {
    return Status::ParseError("unknown quality tier on the wire: " +
                              std::to_string(raw));
  }
  return static_cast<QualityTier>(raw);
}

// RequestPriority travels as its u8 value, range-checked like the
// quality tier so a corrupted byte cannot smuggle an out-of-range
// scheduling class into the engine.
Result<RequestPriority> ReadPriority(WireReader* reader) {
  COMPARESETS_ASSIGN_OR_RETURN(uint8_t raw, reader->ReadU8());
  if (raw > static_cast<uint8_t>(RequestPriority::kBatch)) {
    return Status::ParseError("unknown request priority on the wire: " +
                              std::to_string(raw));
  }
  return static_cast<RequestPriority>(raw);
}

void EncodeSelectorOptionsTo(const SelectorOptions& options,
                             WireWriter* writer) {
  writer->WriteU64(options.m);
  writer->WriteDouble(options.lambda);
  writer->WriteDouble(options.mu);
  writer->WriteU64(options.seed);
  writer->WriteI32(options.extra_sync_rounds);
  writer->WriteBool(options.dense_reference_solver);
  writer->WriteU8(static_cast<uint8_t>(options.min_tier));
  writer->WriteU64(options.sample_threshold);
  writer->WriteU64(options.sample_size);
}

Status DecodeSelectorOptionsFrom(WireReader* reader,
                                 SelectorOptions* options) {
  COMPARESETS_ASSIGN_OR_RETURN(uint64_t m, reader->ReadU64());
  options->m = static_cast<size_t>(m);
  COMPARESETS_ASSIGN_OR_RETURN(options->lambda, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(options->mu, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(options->seed, reader->ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(options->extra_sync_rounds, reader->ReadI32());
  COMPARESETS_ASSIGN_OR_RETURN(options->dense_reference_solver,
                               reader->ReadBool());
  COMPARESETS_ASSIGN_OR_RETURN(options->min_tier, ReadTier(reader));
  COMPARESETS_ASSIGN_OR_RETURN(uint64_t sample_threshold, reader->ReadU64());
  options->sample_threshold = static_cast<size_t>(sample_threshold);
  COMPARESETS_ASSIGN_OR_RETURN(uint64_t sample_size, reader->ReadU64());
  options->sample_size = static_cast<size_t>(sample_size);
  return Status::OK();
}

void EncodeRougeTo(const RougeScore& score, WireWriter* writer) {
  writer->WriteDouble(score.precision);
  writer->WriteDouble(score.recall);
  writer->WriteDouble(score.f1);
}

Status DecodeRougeFrom(WireReader* reader, RougeScore* score) {
  COMPARESETS_ASSIGN_OR_RETURN(score->precision, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(score->recall, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(score->f1, reader->ReadDouble());
  return Status::OK();
}

void EncodeTripleTo(const RougeTriple& triple, WireWriter* writer) {
  EncodeRougeTo(triple.rouge1, writer);
  EncodeRougeTo(triple.rouge2, writer);
  EncodeRougeTo(triple.rougeL, writer);
}

Status DecodeTripleFrom(WireReader* reader, RougeTriple* triple) {
  COMPARESETS_RETURN_NOT_OK(DecodeRougeFrom(reader, &triple->rouge1));
  COMPARESETS_RETURN_NOT_OK(DecodeRougeFrom(reader, &triple->rouge2));
  COMPARESETS_RETURN_NOT_OK(DecodeRougeFrom(reader, &triple->rougeL));
  return Status::OK();
}

void EncodeTraceTo(const RequestTrace& trace, WireWriter* writer) {
  writer->WriteU64(trace.request_id);
  writer->WriteU64(trace.shard_id);
  writer->WriteU64(trace.corpus_epoch);
  writer->WriteU64(trace.ingest_records);
  writer->WriteString(trace.target_id);
  writer->WriteString(trace.selector);
  writer->WriteString(trace.status);
  writer->WriteString(trace.tier);
  writer->WriteDouble(trace.objective_gap);
  writer->WriteString(trace.priority);  // v4
  writer->WriteI32(trace.attempts);
  writer->WriteBool(trace.cache_hit);
  writer->WriteBool(trace.result_cache_hit);
  writer->WriteU64(trace.solver_iterations);
  writer->WriteU64(trace.nnls_nonconverged);
  writer->WriteU64(trace.intra_parallel_fanouts);
  writer->WriteU64(trace.intra_parallel_tasks);
  writer->WriteU32(static_cast<uint32_t>(trace.spans.size()));
  for (const TraceSpan& span : trace.spans) {
    writer->WriteString(span.name);
    writer->WriteDouble(span.seconds);
  }
  writer->WriteDouble(trace.queue_seconds);
  writer->WriteDouble(trace.backoff_seconds);
  writer->WriteDouble(trace.prepare_seconds);
  writer->WriteDouble(trace.solve_seconds);
  writer->WriteDouble(trace.total_seconds);
}

Status DecodeTraceFrom(WireReader* reader, RequestTrace* trace) {
  COMPARESETS_ASSIGN_OR_RETURN(trace->request_id, reader->ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(trace->shard_id, reader->ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(trace->corpus_epoch, reader->ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(trace->ingest_records, reader->ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(trace->target_id, reader->ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(trace->selector, reader->ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(trace->status, reader->ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(trace->tier, reader->ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(trace->objective_gap, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(trace->priority, reader->ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(trace->attempts, reader->ReadI32());
  COMPARESETS_ASSIGN_OR_RETURN(trace->cache_hit, reader->ReadBool());
  COMPARESETS_ASSIGN_OR_RETURN(trace->result_cache_hit, reader->ReadBool());
  COMPARESETS_ASSIGN_OR_RETURN(trace->solver_iterations, reader->ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(trace->nnls_nonconverged, reader->ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(trace->intra_parallel_fanouts,
                               reader->ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(trace->intra_parallel_tasks,
                               reader->ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t num_spans,
                               ReadCount(reader, "trace span"));
  trace->spans.clear();
  trace->spans.reserve(num_spans);
  for (uint32_t i = 0; i < num_spans; ++i) {
    TraceSpan span;
    COMPARESETS_ASSIGN_OR_RETURN(span.name, reader->ReadString());
    COMPARESETS_ASSIGN_OR_RETURN(span.seconds, reader->ReadDouble());
    trace->spans.push_back(std::move(span));
  }
  COMPARESETS_ASSIGN_OR_RETURN(trace->queue_seconds, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(trace->backoff_seconds, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(trace->prepare_seconds, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(trace->solve_seconds, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(trace->total_seconds, reader->ReadDouble());
  return Status::OK();
}

void EncodeSelectRequestTo(const SelectRequest& request, WireWriter* writer) {
  writer->WriteString(request.target_id);
  writer->WriteU32(static_cast<uint32_t>(request.comparative_ids.size()));
  for (const std::string& id : request.comparative_ids) {
    writer->WriteString(id);
  }
  writer->WriteString(request.selector);
  EncodeSelectorOptionsTo(request.options, writer);
  writer->WriteDouble(request.deadline_seconds);
  writer->WriteU8(static_cast<uint8_t>(request.priority));  // v4
}

Status DecodeSelectRequestFrom(WireReader* reader, SelectRequest* request) {
  COMPARESETS_ASSIGN_OR_RETURN(request->target_id, reader->ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t num_comparatives,
                               ReadCount(reader, "comparative id"));
  request->comparative_ids.clear();
  request->comparative_ids.reserve(num_comparatives);
  for (uint32_t i = 0; i < num_comparatives; ++i) {
    COMPARESETS_ASSIGN_OR_RETURN(std::string id, reader->ReadString());
    request->comparative_ids.push_back(std::move(id));
  }
  COMPARESETS_ASSIGN_OR_RETURN(request->selector, reader->ReadString());
  COMPARESETS_RETURN_NOT_OK(
      DecodeSelectorOptionsFrom(reader, &request->options));
  COMPARESETS_ASSIGN_OR_RETURN(request->deadline_seconds,
                               reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(request->priority, ReadPriority(reader));
  request->cancel = nullptr;  // Process-local; never on the wire.
  return Status::OK();
}

void EncodeSelectResponseTo(const SelectResponse& response,
                            WireWriter* writer) {
  writer->WriteString(response.target_id);
  writer->WriteU32(static_cast<uint32_t>(response.item_ids.size()));
  for (const std::string& id : response.item_ids) writer->WriteString(id);
  writer->WriteU32(static_cast<uint32_t>(response.selections.size()));
  for (const Selection& selection : response.selections) {
    writer->WriteU32(static_cast<uint32_t>(selection.size()));
    for (size_t index : selection) writer->WriteU64(index);
  }
  writer->WriteDouble(response.objective);
  EncodeTripleTo(response.alignment.target_vs_comparative, writer);
  EncodeTripleTo(response.alignment.among_items, writer);
  writer->WriteU64(response.alignment.target_pairs);
  writer->WriteU64(response.alignment.among_pairs);
  writer->WriteBool(response.cache_hit);
  writer->WriteBool(response.result_cache_hit);
  writer->WriteDouble(response.prepare_seconds);
  writer->WriteDouble(response.solve_seconds);
  writer->WriteU8(static_cast<uint8_t>(response.tier));
  writer->WriteDouble(response.objective_gap);
  EncodeTraceTo(response.trace, writer);
}

Status DecodeSelectResponseFrom(WireReader* reader,
                                SelectResponse* response) {
  COMPARESETS_ASSIGN_OR_RETURN(response->target_id, reader->ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t num_items,
                               ReadCount(reader, "item id"));
  response->item_ids.clear();
  response->item_ids.reserve(num_items);
  for (uint32_t i = 0; i < num_items; ++i) {
    COMPARESETS_ASSIGN_OR_RETURN(std::string id, reader->ReadString());
    response->item_ids.push_back(std::move(id));
  }
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t num_selections,
                               ReadCount(reader, "selection"));
  response->selections.clear();
  response->selections.reserve(num_selections);
  for (uint32_t i = 0; i < num_selections; ++i) {
    COMPARESETS_ASSIGN_OR_RETURN(uint32_t num_reviews,
                                 ReadCount(reader, "selected review"));
    Selection selection;
    selection.reserve(num_reviews);
    for (uint32_t r = 0; r < num_reviews; ++r) {
      COMPARESETS_ASSIGN_OR_RETURN(uint64_t index, reader->ReadU64());
      selection.push_back(static_cast<size_t>(index));
    }
    response->selections.push_back(std::move(selection));
  }
  COMPARESETS_ASSIGN_OR_RETURN(response->objective, reader->ReadDouble());
  COMPARESETS_RETURN_NOT_OK(
      DecodeTripleFrom(reader, &response->alignment.target_vs_comparative));
  COMPARESETS_RETURN_NOT_OK(
      DecodeTripleFrom(reader, &response->alignment.among_items));
  COMPARESETS_ASSIGN_OR_RETURN(uint64_t target_pairs, reader->ReadU64());
  response->alignment.target_pairs = static_cast<size_t>(target_pairs);
  COMPARESETS_ASSIGN_OR_RETURN(uint64_t among_pairs, reader->ReadU64());
  response->alignment.among_pairs = static_cast<size_t>(among_pairs);
  COMPARESETS_ASSIGN_OR_RETURN(response->cache_hit, reader->ReadBool());
  COMPARESETS_ASSIGN_OR_RETURN(response->result_cache_hit,
                               reader->ReadBool());
  COMPARESETS_ASSIGN_OR_RETURN(response->prepare_seconds,
                               reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(response->solve_seconds, reader->ReadDouble());
  COMPARESETS_ASSIGN_OR_RETURN(response->tier, ReadTier(reader));
  COMPARESETS_ASSIGN_OR_RETURN(response->objective_gap, reader->ReadDouble());
  COMPARESETS_RETURN_NOT_OK(DecodeTraceFrom(reader, &response->trace));
  return Status::OK();
}

void EncodeSelectResultTo(const Result<SelectResponse>& result,
                          WireWriter* writer) {
  writer->WriteBool(result.ok());
  if (result.ok()) {
    EncodeSelectResponseTo(result.value(), writer);
  } else {
    EncodeStatusTo(result.status(), writer);
  }
}

Result<Result<SelectResponse>> DecodeSelectResultFrom(WireReader* reader) {
  COMPARESETS_ASSIGN_OR_RETURN(bool ok, reader->ReadBool());
  if (!ok) {
    Status status;
    COMPARESETS_RETURN_NOT_OK(DecodeStatusFrom(reader, &status));
    if (status.ok()) {
      return Status::ParseError("select result marked failed carries OK");
    }
    return Result<SelectResponse>(std::move(status));
  }
  SelectResponse response;
  COMPARESETS_RETURN_NOT_OK(DecodeSelectResponseFrom(reader, &response));
  return Result<SelectResponse>(std::move(response));
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kSelectRequest:
      return "select_request";
    case MessageType::kSelectResponse:
      return "select_response";
    case MessageType::kBatchRequest:
      return "batch_request";
    case MessageType::kBatchResponse:
      return "batch_response";
    case MessageType::kHealthRequest:
      return "health_request";
    case MessageType::kHealthResponse:
      return "health_response";
    case MessageType::kShutdownRequest:
      return "shutdown_request";
    case MessageType::kShutdownResponse:
      return "shutdown_response";
    case MessageType::kError:
      return "error";
  }
  return "unknown";
}

void EncodeStatusTo(const Status& status, WireWriter* writer) {
  writer->WriteU16(static_cast<uint16_t>(status.code()));
  writer->WriteString(status.message());
}

Status DecodeStatusFrom(WireReader* reader, Status* out) {
  COMPARESETS_ASSIGN_OR_RETURN(uint16_t code, reader->ReadU16());
  if (code > kMaxStatusCode) {
    return Status::ParseError("unknown status code on the wire: " +
                              std::to_string(code));
  }
  COMPARESETS_ASSIGN_OR_RETURN(std::string message, reader->ReadString());
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

std::string EncodeSelectRequest(const SelectRequest& request) {
  WireWriter writer;
  EncodeSelectRequestTo(request, &writer);
  return writer.Take();
}

Result<SelectRequest> DecodeSelectRequest(std::string_view payload) {
  WireReader reader(payload);
  SelectRequest request;
  COMPARESETS_RETURN_NOT_OK(DecodeSelectRequestFrom(&reader, &request));
  COMPARESETS_RETURN_NOT_OK(reader.ExpectFullyConsumed("select request"));
  return request;
}

std::string EncodeSelectResult(const Result<SelectResponse>& result) {
  WireWriter writer;
  EncodeSelectResultTo(result, &writer);
  return writer.Take();
}

Result<Result<SelectResponse>> DecodeSelectResult(std::string_view payload) {
  WireReader reader(payload);
  COMPARESETS_ASSIGN_OR_RETURN(Result<SelectResponse> result,
                               DecodeSelectResultFrom(&reader));
  COMPARESETS_RETURN_NOT_OK(reader.ExpectFullyConsumed("select result"));
  return result;
}

std::string EncodeBatchRequest(const std::vector<SelectRequest>& requests) {
  WireWriter writer;
  writer.WriteU32(static_cast<uint32_t>(requests.size()));
  for (const SelectRequest& request : requests) {
    EncodeSelectRequestTo(request, &writer);
  }
  return writer.Take();
}

Result<std::vector<SelectRequest>> DecodeBatchRequest(
    std::string_view payload) {
  WireReader reader(payload);
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t count,
                               ReadCount(&reader, "batch request"));
  std::vector<SelectRequest> requests;
  requests.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SelectRequest request;
    COMPARESETS_RETURN_NOT_OK(DecodeSelectRequestFrom(&reader, &request));
    requests.push_back(std::move(request));
  }
  COMPARESETS_RETURN_NOT_OK(reader.ExpectFullyConsumed("batch request"));
  return requests;
}

std::string EncodeBatchResponse(
    const std::vector<Result<SelectResponse>>& results) {
  WireWriter writer;
  writer.WriteU32(static_cast<uint32_t>(results.size()));
  for (const Result<SelectResponse>& result : results) {
    EncodeSelectResultTo(result, &writer);
  }
  return writer.Take();
}

Result<std::vector<Result<SelectResponse>>> DecodeBatchResponse(
    std::string_view payload) {
  WireReader reader(payload);
  COMPARESETS_ASSIGN_OR_RETURN(uint32_t count,
                               ReadCount(&reader, "batch response"));
  std::vector<Result<SelectResponse>> results;
  results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    COMPARESETS_ASSIGN_OR_RETURN(Result<SelectResponse> result,
                                 DecodeSelectResultFrom(&reader));
    results.push_back(std::move(result));
  }
  COMPARESETS_RETURN_NOT_OK(reader.ExpectFullyConsumed("batch response"));
  return results;
}

std::string EncodeShardHealth(const ShardHealth& health) {
  WireWriter writer;
  writer.WriteBool(health.ready);
  writer.WriteU64(health.shard_id);
  writer.WriteString(health.state);
  writer.WriteString(health.range.begin);
  writer.WriteString(health.range.end);
  writer.WriteU64(health.corpus_epoch);
  writer.WriteU64(health.num_instances);
  writer.WriteU64(health.num_products);
  return writer.Take();
}

Result<ShardHealth> DecodeShardHealth(std::string_view payload) {
  WireReader reader(payload);
  ShardHealth health;
  COMPARESETS_ASSIGN_OR_RETURN(health.ready, reader.ReadBool());
  COMPARESETS_ASSIGN_OR_RETURN(health.shard_id, reader.ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(health.state, reader.ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(health.range.begin, reader.ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(health.range.end, reader.ReadString());
  COMPARESETS_ASSIGN_OR_RETURN(health.corpus_epoch, reader.ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(health.num_instances, reader.ReadU64());
  COMPARESETS_ASSIGN_OR_RETURN(health.num_products, reader.ReadU64());
  COMPARESETS_RETURN_NOT_OK(reader.ExpectFullyConsumed("shard health"));
  return health;
}

std::string EncodeErrorPayload(const Status& status) {
  WireWriter writer;
  EncodeStatusTo(status, &writer);
  return writer.Take();
}

Status DecodeErrorPayload(std::string_view payload, Status* out) {
  WireReader reader(payload);
  COMPARESETS_RETURN_NOT_OK(DecodeStatusFrom(&reader, out));
  COMPARESETS_RETURN_NOT_OK(reader.ExpectFullyConsumed("error payload"));
  return Status::OK();
}

}  // namespace comparesets
