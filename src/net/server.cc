#include "net/server.h"

#include <sys/socket.h>

#include <utility>

#include "net/messages.h"

namespace comparesets {

ShardServer::ShardServer(std::unique_ptr<ShardBackend> backend,
                         ShardServerOptions options)
    : backend_(std::move(backend)), options_(std::move(options)) {}

Result<std::unique_ptr<ShardServer>> ShardServer::Start(
    std::unique_ptr<ShardBackend> backend, ShardServerOptions options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("ShardServer requires a backend");
  }
  COMPARESETS_ASSIGN_OR_RETURN(
      ListenSocket listener,
      ListenSocket::Listen(options.address, options.backlog));
  std::unique_ptr<ShardServer> server(
      new ShardServer(std::move(backend), std::move(options)));
  server->listener_ = std::move(listener);
  server->bound_address_ = server->listener_.bound_address();
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

ShardServer::~ShardServer() { Shutdown(); }

void ShardServer::AcceptLoop() {
  for (;;) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      // Interrupt()/Close() surfaces as an error here — the exit signal.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    Socket socket = std::move(accepted).value();
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t id = next_connection_id_++;
    live_fds_.emplace(id, socket.fd());
    connection_threads_.emplace_back(
        [this, id](Socket sock) { HandleConnection(std::move(sock), id); },
        std::move(socket));
  }
}

void ShardServer::HandleConnection(Socket socket, uint64_t connection_id) {
  for (;;) {
    // Wait forever for the next frame: an idle connection parks in
    // poll(2) until the peer writes or Shutdown shuts the fd down.
    Result<NetFrame> frame = socket.RecvFrame(/*timeout_seconds=*/0.0);
    if (!frame.ok()) {
      const Status& status = frame.status();
      if (status.code() == StatusCode::kParseError ||
          status.code() == StatusCode::kInvalidArgument) {
        // Malformed bytes (bad magic, oversized length, version skew):
        // tell the peer what was wrong, then drop the connection — the
        // stream is unframeable from here on.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(socket, status);
      }
      break;
    }
    if (!Dispatch(socket, frame.value())) break;
  }
  {
    // Deregister BEFORE closing: once the fd is closed the kernel may
    // recycle its number, and a concurrent Shutdown sweep must never
    // shutdown(2) a descriptor that now belongs to someone else.
    std::lock_guard<std::mutex> lock(mutex_);
    live_fds_.erase(connection_id);
  }
  socket.Close();
}

bool ShardServer::Dispatch(Socket& socket, const NetFrame& frame) {
  const double send_timeout = options_.send_timeout_seconds;
  frames_served_.fetch_add(1, std::memory_order_relaxed);
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kSelectRequest: {
      Result<SelectRequest> request = DecodeSelectRequest(frame.payload);
      if (!request.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(socket, request.status());
        return false;
      }
      Result<SelectResponse> result = backend_->Select(request.value());
      return socket
          .SendFrame(static_cast<uint16_t>(MessageType::kSelectResponse),
                     EncodeSelectResult(result), send_timeout)
          .ok();
    }
    case MessageType::kBatchRequest: {
      Result<std::vector<SelectRequest>> requests =
          DecodeBatchRequest(frame.payload);
      if (!requests.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        SendError(socket, requests.status());
        return false;
      }
      std::vector<Result<SelectResponse>> results =
          backend_->SelectBatch(requests.value());
      return socket
          .SendFrame(static_cast<uint16_t>(MessageType::kBatchResponse),
                     EncodeBatchResponse(results), send_timeout)
          .ok();
    }
    case MessageType::kHealthRequest: {
      Result<ShardHealth> health = backend_->Probe();
      if (!health.ok()) {
        SendError(socket, health.status());
        return false;
      }
      return socket
          .SendFrame(static_cast<uint16_t>(MessageType::kHealthResponse),
                     EncodeShardHealth(health.value()), send_timeout)
          .ok();
    }
    case MessageType::kShutdownRequest: {
      // Acknowledge first so the peer's RecvFrame completes, then ask
      // the waiter thread to tear the server down (a handler must never
      // join itself).
      (void)socket.SendFrame(
          static_cast<uint16_t>(MessageType::kShutdownResponse),
          std::string(), send_timeout);
      RequestShutdown();
      return false;
    }
    default: {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(socket,
                Status::InvalidArgument(
                    "unsupported message type " + std::to_string(frame.type)));
      return false;
    }
  }
}

void ShardServer::SendError(Socket& socket, const Status& status) {
  (void)socket.SendFrame(static_cast<uint16_t>(MessageType::kError),
                         EncodeErrorPayload(status),
                         options_.send_timeout_seconds);
}

void ShardServer::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void ShardServer::WaitForShutdown() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  Shutdown();
}

void ShardServer::Shutdown() {
  RequestShutdown();
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Another thread is (or was) tearing down; wait for it to finish
    // by serializing on shutdown_mutex_-guarded torn_down_.
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.wait(lock, [this] { return torn_down_; });
    return;
  }
  // Unblock the accept thread without closing its fd (no descriptor
  // race), then unblock every connection handler the same way.
  listener_.Interrupt();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, fd] : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Second pass: a connection accepted between the first pass and the
    // accept thread's exit registered after we swept live_fds_. With
    // the accept thread joined the registry is final — interrupt any
    // stragglers so every handler unblocks.
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, fd] : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  // Single-threaded again: safe to close the listener and unlink the
  // Unix socket path.
  listener_.Close();
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  torn_down_ = true;
  shutdown_cv_.notify_all();
}

}  // namespace comparesets
