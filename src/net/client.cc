#include "net/client.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "util/timer.h"

namespace comparesets {

namespace {

/// Deadlines on the wire are clamped to this floor instead of dropping
/// to <= 0 (which would mean "no deadline"): an already-expired request
/// still reaches the engine as an immediately-expiring one, so the
/// ENGINE's DeadlineExceeded message comes back, never a client-made one.
constexpr double kDeadlineFloorSeconds = 1e-9;

/// Pooled idle connections kept per replica; extras are closed.
constexpr size_t kMaxIdlePerReplica = 8;

double AdjustDeadline(double deadline_seconds, double elapsed) {
  if (deadline_seconds <= 0.0) return deadline_seconds;
  return std::max(deadline_seconds - elapsed, kDeadlineFloorSeconds);
}

/// Classifies one received frame against the expected response type.
/// Sets *transport_failed = false when the server actually answered
/// (including with a kError frame); *reusable when the connection
/// finished a clean request/response cycle.
Result<std::string> InterpretFrame(NetFrame frame, uint16_t response_type,
                                   bool* transport_failed, bool* reusable) {
  *reusable = false;
  if (frame.type == static_cast<uint16_t>(MessageType::kError)) {
    // The server closes after a kError frame, so the channel is dead,
    // but the answer itself is final — never retried.
    *transport_failed = false;
    Status server_error;
    if (!DecodeErrorPayload(frame.payload, &server_error).ok()) {
      return Status::IOError("undecodable error frame from shard server");
    }
    return server_error;
  }
  if (frame.type != response_type) {
    return Status::IOError("unexpected frame type " +
                           std::to_string(frame.type) + " (wanted " +
                           std::to_string(response_type) + ")");
  }
  *reusable = true;
  return std::move(frame.payload);
}

/// One synchronous exchange on an already-connected socket.
Result<std::string> Exchange(Socket& socket, uint16_t request_type,
                             uint16_t response_type,
                             const std::string& payload, double send_timeout,
                             double recv_budget, bool* transport_failed,
                             bool* reusable) {
  *reusable = false;
  Status sent = socket.SendFrame(request_type, payload, send_timeout);
  if (!sent.ok()) return sent;
  Result<NetFrame> frame = socket.RecvFrame(recv_budget);
  if (!frame.ok()) return frame.status();
  return InterpretFrame(std::move(frame).value(), response_type,
                        transport_failed, reusable);
}

}  // namespace

RpcShardBackend::RpcShardBackend(RpcBackendOptions options)
    : options_(std::move(options)), idle_(options_.replicas.size()) {}

Result<std::unique_ptr<RpcShardBackend>> RpcShardBackend::Create(
    RpcBackendOptions options) {
  if (options.replicas.empty()) {
    return Status::InvalidArgument(
        "RpcShardBackend requires at least one replica address");
  }
  for (const std::string& address : options.replicas) {
    COMPARESETS_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));
    (void)parsed;
  }
  return std::unique_ptr<RpcShardBackend>(
      new RpcShardBackend(std::move(options)));
}

Result<Socket> RpcShardBackend::AcquireConnection(size_t replica) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!idle_[replica].empty()) {
      Socket socket = std::move(idle_[replica].back());
      idle_[replica].pop_back();
      return socket;
    }
  }
  Result<Socket> connected = Socket::Connect(
      options_.replicas[replica], options_.connect_timeout_seconds);
  if (connected.ok()) {
    connections_opened_.fetch_add(1, std::memory_order_relaxed);
  }
  return connected;
}

void RpcShardBackend::ReleaseConnection(size_t replica, Socket socket) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (idle_[replica].size() < kMaxIdlePerReplica) {
    idle_[replica].push_back(std::move(socket));
  }
  // else: socket destructor closes it.
}

Result<std::string> RpcShardBackend::CallOnce(
    size_t replica, uint16_t request_type, uint16_t response_type,
    const std::string& payload, double recv_budget, bool inject_faults,
    bool* transport_failed) {
  *transport_failed = true;
  FaultInjector* injector =
      inject_faults ? options_.fault_injector.get() : nullptr;
  if (injector != nullptr) {
    Status injected = injector->Inject(FaultSite::kConnect);
    if (!injected.ok()) return injected;
  }
  Result<Socket> acquired = AcquireConnection(replica);
  if (!acquired.ok()) return acquired.status();
  Socket socket = std::move(acquired).value();
  if (injector != nullptr) {
    Status injected = injector->Inject(FaultSite::kSend);
    if (!injected.ok()) {
      socket.Close();
      return injected;
    }
  }
  Status sent =
      socket.SendFrame(request_type, payload, options_.send_timeout_seconds);
  if (!sent.ok()) {
    socket.Close();
    return sent;
  }
  if (injector != nullptr) {
    Status injected = injector->Inject(FaultSite::kRecv);
    if (!injected.ok()) {
      // The request IS in flight; dropping the connection here is what
      // makes an injected recv fault equivalent to a lost response.
      socket.Close();
      return injected;
    }
  }
  bool reusable = false;
  Result<NetFrame> frame = socket.RecvFrame(recv_budget);
  Result<std::string> out =
      frame.ok() ? InterpretFrame(std::move(frame).value(), response_type,
                                  transport_failed, &reusable)
                 : Result<std::string>(frame.status());
  if (reusable && out.ok()) {
    ReleaseConnection(replica, std::move(socket));
  } else {
    socket.Close();
  }
  return out;
}

Result<std::string> RpcShardBackend::CallHedged(uint16_t request_type,
                                                uint16_t response_type,
                                                const std::string& payload,
                                                double recv_budget,
                                                bool* transport_failed) {
  *transport_failed = true;
  Result<Socket> first = AcquireConnection(0);
  Result<Socket> second = AcquireConnection(1);
  if (!first.ok() && !second.ok()) return first.status();
  if (!first.ok() || !second.ok()) {
    // Only one replica reachable: degrade to a plain exchange on it.
    size_t replica = first.ok() ? 0 : 1;
    Socket socket =
        first.ok() ? std::move(first).value() : std::move(second).value();
    bool reusable = false;
    Result<std::string> out =
        Exchange(socket, request_type, response_type, payload,
                 options_.send_timeout_seconds, recv_budget, transport_failed,
                 &reusable);
    if (reusable && out.ok()) {
      ReleaseConnection(replica, std::move(socket));
    } else {
      socket.Close();
    }
    return out;
  }

  hedged_selects_.fetch_add(1, std::memory_order_relaxed);
  Socket sockets[2] = {std::move(first).value(), std::move(second).value()};
  bool alive[2] = {false, false};
  Status last = Status::Unavailable("hedged request never sent");
  for (int leg = 0; leg < 2; ++leg) {
    Status sent = sockets[leg].SendFrame(request_type, payload,
                                         options_.send_timeout_seconds);
    if (sent.ok()) {
      alive[leg] = true;
    } else {
      last = sent;
      sockets[leg].Close();
    }
  }

  Timer timer;
  while (alive[0] || alive[1]) {
    struct pollfd fds[2];
    int legs[2];
    int nfds = 0;
    for (int leg = 0; leg < 2; ++leg) {
      if (!alive[leg]) continue;
      fds[nfds].fd = sockets[leg].fd();
      fds[nfds].events = POLLIN;
      fds[nfds].revents = 0;
      legs[nfds] = leg;
      ++nfds;
    }
    int wait_ms = -1;
    if (recv_budget > 0.0) {
      double remaining = recv_budget - timer.ElapsedSeconds();
      if (remaining <= 0.0) {
        last = Status::Timeout("hedged recv timed out");
        break;
      }
      wait_ms = static_cast<int>(remaining * 1000.0) + 1;
    }
    int ready = ::poll(fds, static_cast<nfds_t>(nfds), wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      last = Status::IOError("poll failed on hedged request");
      break;
    }
    if (ready == 0) {
      last = Status::Timeout("hedged recv timed out");
      break;
    }
    for (int i = 0; i < nfds; ++i) {
      if (fds[i].revents == 0) continue;
      int leg = legs[i];
      double remaining = recv_budget > 0.0
                             ? std::max(recv_budget - timer.ElapsedSeconds(),
                                        kDeadlineFloorSeconds)
                             : 0.0;
      bool reusable = false;
      Result<NetFrame> frame = sockets[leg].RecvFrame(remaining);
      Result<std::string> out =
          frame.ok() ? InterpretFrame(std::move(frame).value(), response_type,
                                      transport_failed, &reusable)
                     : Result<std::string>(frame.status());
      if (out.ok() || !*transport_failed) {
        // First answer wins. The loser is shut down and NEVER pooled:
        // its (late, duplicate) response must not be readable as the
        // answer to any future request.
        int other = 1 - leg;
        if (alive[other]) {
          sockets[other].ShutdownBoth();
          sockets[other].Close();
        }
        if (reusable && out.ok()) {
          ReleaseConnection(static_cast<size_t>(leg), std::move(sockets[leg]));
        } else {
          sockets[leg].Close();
        }
        return out;
      }
      last = out.status();
      sockets[leg].Close();
      alive[leg] = false;
    }
  }
  for (int leg = 0; leg < 2; ++leg) {
    if (alive[leg]) sockets[leg].Close();
  }
  return last;
}

Result<std::string> RpcShardBackend::Call(uint16_t request_type,
                                          uint16_t response_type,
                                          const EncodeFn& encode,
                                          const BudgetFn& budget,
                                          bool inject_faults, bool hedge) {
  Timer timer;
  const size_t replicas = options_.replicas.size();
  const int attempts = options_.max_transport_attempts > 0
                           ? options_.max_transport_attempts
                           : static_cast<int>(replicas) + 1;
  Status last = Status::Unavailable("no transport attempts configured");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      transport_retries_.fetch_add(1, std::memory_order_relaxed);
    }
    const double elapsed = timer.ElapsedSeconds();
    Result<std::string> payload = encode(elapsed);
    if (!payload.ok()) return payload.status();
    bool transport_failed = true;
    Result<std::string> out =
        (hedge && replicas >= 2 && attempt == 0)
            ? CallHedged(request_type, response_type, payload.value(),
                         budget(elapsed), &transport_failed)
            : CallOnce(attempt % replicas, request_type, response_type,
                       payload.value(), budget(elapsed), inject_faults,
                       &transport_failed);
    // Application answers — OK payloads AND decoded server errors — are
    // final; only transport failures rotate to the next replica.
    if (out.ok() || !transport_failed) return out;
    last = out.status();
  }
  return last;
}

Result<SelectResponse> RpcShardBackend::Select(const SelectRequest& request) {
  EncodeFn encode = [&request](double elapsed) -> Result<std::string> {
    SelectRequest adjusted = request;
    adjusted.deadline_seconds =
        AdjustDeadline(adjusted.deadline_seconds, elapsed);
    return EncodeSelectRequest(adjusted);
  };
  BudgetFn budget = [this, &request](double elapsed) {
    if (request.deadline_seconds <= 0.0) return options_.recv_timeout_seconds;
    return AdjustDeadline(request.deadline_seconds, elapsed) +
           options_.deadline_grace_seconds;
  };
  Result<std::string> payload = Call(
      static_cast<uint16_t>(MessageType::kSelectRequest),
      static_cast<uint16_t>(MessageType::kSelectResponse), encode, budget,
      /*inject_faults=*/true, options_.hedge_selects);
  if (!payload.ok()) return payload.status();
  COMPARESETS_ASSIGN_OR_RETURN(Result<SelectResponse> result,
                               DecodeSelectResult(payload.value()));
  return result;
}

std::vector<Result<SelectResponse>> RpcShardBackend::SelectBatch(
    const std::vector<SelectRequest>& requests) {
  if (requests.empty()) return {};
  EncodeFn encode = [&requests](double elapsed) -> Result<std::string> {
    std::vector<SelectRequest> adjusted = requests;
    for (SelectRequest& r : adjusted) {
      r.deadline_seconds = AdjustDeadline(r.deadline_seconds, elapsed);
    }
    return EncodeBatchRequest(adjusted);
  };
  BudgetFn budget = [this, &requests](double elapsed) {
    double max_deadline = 0.0;
    for (const SelectRequest& r : requests) {
      if (r.deadline_seconds <= 0.0) return options_.recv_timeout_seconds;
      max_deadline = std::max(max_deadline, r.deadline_seconds);
    }
    return AdjustDeadline(max_deadline, elapsed) +
           options_.deadline_grace_seconds;
  };
  Result<std::string> payload = Call(
      static_cast<uint16_t>(MessageType::kBatchRequest),
      static_cast<uint16_t>(MessageType::kBatchResponse), encode, budget,
      /*inject_faults=*/true, /*hedge=*/false);
  if (!payload.ok()) {
    return std::vector<Result<SelectResponse>>(requests.size(),
                                               payload.status());
  }
  Result<std::vector<Result<SelectResponse>>> decoded =
      DecodeBatchResponse(payload.value());
  if (!decoded.ok()) {
    return std::vector<Result<SelectResponse>>(requests.size(),
                                               decoded.status());
  }
  std::vector<Result<SelectResponse>> results = std::move(decoded).value();
  if (results.size() != requests.size()) {
    return std::vector<Result<SelectResponse>>(
        requests.size(),
        Status::IOError("batch response size mismatch: sent " +
                        std::to_string(requests.size()) + ", got " +
                        std::to_string(results.size())));
  }
  return results;
}

Result<ShardHealth> RpcShardBackend::Probe() {
  EncodeFn encode = [](double) -> Result<std::string> {
    return std::string();
  };
  BudgetFn budget = [this](double) { return options_.probe_timeout_seconds; };
  Result<std::string> payload = Call(
      static_cast<uint16_t>(MessageType::kHealthRequest),
      static_cast<uint16_t>(MessageType::kHealthResponse), encode, budget,
      /*inject_faults=*/false, /*hedge=*/false);
  if (!payload.ok()) return payload.status();
  return DecodeShardHealth(payload.value());
}

std::string RpcShardBackend::name() const {
  std::string name = "rpc:";
  name += options_.replicas[0];
  if (options_.replicas.size() > 1) {
    name += "+";
    name += std::to_string(options_.replicas.size() - 1);
    name += "r";
  }
  return name;
}

Result<ShardHealth> ProbeServer(const std::string& address,
                                double timeout_seconds) {
  COMPARESETS_ASSIGN_OR_RETURN(Socket socket,
                               Socket::Connect(address, timeout_seconds));
  Status sent =
      socket.SendFrame(static_cast<uint16_t>(MessageType::kHealthRequest),
                       std::string(), timeout_seconds);
  COMPARESETS_RETURN_NOT_OK(sent);
  COMPARESETS_ASSIGN_OR_RETURN(NetFrame frame,
                               socket.RecvFrame(timeout_seconds));
  bool transport_failed = true;
  bool reusable = false;
  COMPARESETS_ASSIGN_OR_RETURN(
      std::string payload,
      InterpretFrame(std::move(frame),
                     static_cast<uint16_t>(MessageType::kHealthResponse),
                     &transport_failed, &reusable));
  return DecodeShardHealth(payload);
}

Status WaitForServerReady(const std::string& address,
                          double timeout_seconds) {
  Timer timer;
  Status last = Status::Unavailable("server never probed");
  for (;;) {
    Result<ShardHealth> health = ProbeServer(address, /*timeout_seconds=*/1.0);
    if (health.ok() && health.value().ready) return Status::OK();
    last = health.ok() ? Status::Unavailable("shard not ready, state=" +
                                             health.value().state)
                       : health.status();
    if (timer.ElapsedSeconds() >= timeout_seconds) {
      return Status::Timeout("shard at " + address + " not ready: " +
                             last.ToString());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status RequestServerShutdown(const std::string& address,
                             double timeout_seconds) {
  COMPARESETS_ASSIGN_OR_RETURN(Socket socket,
                               Socket::Connect(address, timeout_seconds));
  Status sent =
      socket.SendFrame(static_cast<uint16_t>(MessageType::kShutdownRequest),
                       std::string(), timeout_seconds);
  COMPARESETS_RETURN_NOT_OK(sent);
  COMPARESETS_ASSIGN_OR_RETURN(NetFrame frame,
                               socket.RecvFrame(timeout_seconds));
  if (frame.type != static_cast<uint16_t>(MessageType::kShutdownResponse)) {
    return Status::IOError("unexpected frame type " +
                           std::to_string(frame.type) +
                           " in shutdown handshake");
  }
  return Status::OK();
}

}  // namespace comparesets
