// Minimal POSIX socket layer for the shard RPC transport: address
// parsing ("unix:/path/to.sock" and "tcp:host:port"), RAII stream
// sockets with timeout-bounded connect/send/recv, and a listener.
//
// Everything returns typed Status — no exceptions, no exit paths:
//   * kUnavailable    — connection refused / reset / peer gone. The
//     serving-layer meaning ("this shard is not answering right now")
//     so routers can retry a replica.
//   * kTimeout        — a configured transport timeout elapsed. The
//     caller decides whether that maps to a request deadline.
//   * kIOError        — everything else the OS reports.
//   * kParseError / kInvalidArgument — malformed frames (RecvFrame
//     validates headers via net/wire_format.h before reading payloads).
//
// Timeout convention: `timeout_seconds <= 0` means wait forever. All
// waits are poll(2)-based, so a hung peer can never park a thread past
// its budget — the property the CI integration job's ctest TIMEOUTs
// assume.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire_format.h"
#include "util/status.h"

namespace comparesets {

/// A parsed transport address.
struct ParsedAddress {
  bool is_unix = false;
  std::string path;  ///< Unix-domain socket path (is_unix).
  std::string host;  ///< Numeric or loopback host (!is_unix).
  uint16_t port = 0;
};

/// Parses "unix:PATH" or "tcp:HOST:PORT". kInvalidArgument on anything
/// else (including Unix paths too long for sockaddr_un).
Result<ParsedAddress> ParseAddress(const std::string& address);

/// One received frame: validated header + raw payload bytes.
struct NetFrame {
  uint16_t type = 0;
  std::string payload;
};

/// Movable RAII wrapper over one connected stream socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to `address` within `timeout_seconds` (non-blocking
  /// connect + poll). Refusals and missing socket files return
  /// kUnavailable; an elapsed budget returns kTimeout.
  static Result<Socket> Connect(const std::string& address,
                                double timeout_seconds);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `len` bytes or fails; partial progress then an error
  /// leaves the connection unusable (callers drop it).
  Status SendAll(const void* data, size_t len, double timeout_seconds);

  /// Reads exactly `len` bytes. A peer close mid-read is kUnavailable
  /// ("connection closed mid-frame") — distinct from a clean EOF at a
  /// frame boundary, which RecvFrame reports as kUnavailable with
  /// "connection closed" so pools know the channel simply went away.
  Status RecvAll(void* data, size_t len, double timeout_seconds);

  /// Sends one framed message.
  Status SendFrame(uint16_t type, std::string_view payload,
                   double timeout_seconds);

  /// Receives one framed message: reads the 12-byte header, validates
  /// it (magic / version / length cap — typed errors on each), then
  /// reads the payload. The timeout bounds the WHOLE frame.
  Result<NetFrame> RecvFrame(double timeout_seconds);

  /// shutdown(2) both directions — unblocks a peer (or our own thread)
  /// parked in poll/recv. Safe on an invalid socket.
  void ShutdownBoth();

  /// shutdown(2) the write direction only: the peer sees EOF after the
  /// bytes already sent, while this side can still read its reply —
  /// how a client says "that's the whole request" on a stream it then
  /// drains. Safe on an invalid socket.
  void ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to a Unix or TCP address.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds + listens. "tcp:HOST:0" binds an ephemeral port;
  /// bound_address() reports the resolved one. A pre-existing Unix
  /// socket path is unlinked first (stale file from a dead server).
  static Result<ListenSocket> Listen(const std::string& address, int backlog);

  /// The canonical address peers should connect to.
  const std::string& bound_address() const { return bound_address_; }

  bool valid() const { return fd_ >= 0; }

  /// Blocks until a connection arrives. After Close() (from another
  /// thread) returns kUnavailable — the accept loop's exit signal.
  Result<Socket> Accept();

  /// shutdown(2) on the listening fd WITHOUT closing it: unblocks an
  /// Accept parked in another thread while leaving the fd value stable
  /// (no data race on the descriptor). The accept loop then exits and
  /// the owner Close()s from a single thread.
  void Interrupt();

  /// Closes the listener (and unlinks a Unix socket path), unblocking
  /// any Accept in flight. Idempotent.
  void Close();

 private:
  int fd_ = -1;
  std::string bound_address_;
  std::string unix_path_;  ///< Unlinked on Close when non-empty.
};

}  // namespace comparesets
