// RPC client for shard servers: RpcShardBackend speaks the
// net/wire_format.h protocol to one logical shard, optionally served by
// several replica processes.
//
// What the transport layer promises the router above it:
//   * Application fidelity — a Status produced by the remote engine
//     (NotFound, DeadlineExceeded, injected solve faults, ...) comes
//     back with identical code AND message, never rewritten. Transport
//     failures are the ONLY statuses this layer originates.
//   * Retry-to-replica — transport failures (connect refused, send /
//     recv errors, injected kConnect/kSend/kRecv faults) retry on
//     replica `attempt % num_replicas`, so a single-replica shard
//     degrades to retry-same-replica. Application statuses are final:
//     the remote engine already answered, retrying would re-run side
//     effects.
//   * Deadline charging — time burned inside the transport (connects,
//     retries) is subtracted from each request's deadline before
//     (re)serialization, clamped to a tiny positive floor so "already
//     expired" still reaches the engine as an (immediately expiring)
//     deadline and the engine's OWN DeadlineExceeded message comes
//     back — never a client-invented one. The read timeout is the
//     remaining deadline plus a grace window, so the server's verdict
//     always outruns the client's patience.
//   * Hedged selects — with hedging on and >= 2 replicas, a Select is
//     sent to two replicas and the first response wins. The losing
//     connection is shut down and NEVER returned to the pool, so a
//     late duplicate answer can never be misread as the response to a
//     later request (the "no duplicate side effects" proof obligation
//     in the transport oracle).
//
// Connections are pooled per replica; any error on a connection drops
// it (frames are request/response in lockstep, so a half-used channel
// is unrecoverable by construction).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/messages.h"
#include "net/socket.h"
#include "service/backend.h"
#include "service/fault_injector.h"

namespace comparesets {

struct RpcBackendOptions {
  /// Replica addresses for this shard ("unix:PATH" / "tcp:HOST:PORT").
  /// At least one; all replicas must serve identical corpora.
  std::vector<std::string> replicas;
  /// Shard id this backend fronts (for name() and error text).
  uint64_t shard_id = 0;
  double connect_timeout_seconds = 5.0;
  double send_timeout_seconds = 30.0;
  /// Read budget for requests WITHOUT a deadline; <= 0 waits forever
  /// (the ctest TIMEOUT is the backstop in CI).
  double recv_timeout_seconds = 0.0;
  /// Extra read budget past a request's deadline, so the server's own
  /// kDeadlineExceeded Status arrives instead of a client kTimeout.
  double deadline_grace_seconds = 5.0;
  double probe_timeout_seconds = 5.0;
  /// Transport attempts per call; 0 = one pass over the replicas plus
  /// one retry (num_replicas + 1).
  int max_transport_attempts = 0;
  /// Hedge single Selects across two replicas when replicas >= 2.
  bool hedge_selects = false;
  /// Client-side fault seams (kConnect/kSend/kRecv); nullptr = none.
  /// Probes are exempt — health checks must see the true transport.
  std::shared_ptr<FaultInjector> fault_injector;
};

/// One logical shard behind the wire protocol.
class RpcShardBackend : public ShardBackend {
 public:
  static Result<std::unique_ptr<RpcShardBackend>> Create(
      RpcBackendOptions options);

  Result<SelectResponse> Select(const SelectRequest& request) override;
  std::vector<Result<SelectResponse>> SelectBatch(
      const std::vector<SelectRequest>& requests) override;
  Result<ShardHealth> Probe() override;
  std::string name() const override;

  uint64_t transport_retries() const {
    return transport_retries_.load(std::memory_order_relaxed);
  }
  uint64_t hedged_selects() const {
    return hedged_selects_.load(std::memory_order_relaxed);
  }
  uint64_t connections_opened() const {
    return connections_opened_.load(std::memory_order_relaxed);
  }

 private:
  /// Produces the (re-encoded) request payload for an attempt that
  /// starts `elapsed` seconds into the call, or an error to abort.
  using EncodeFn = std::function<Result<std::string>(double elapsed)>;
  /// Read budget for an attempt starting at `elapsed`.
  using BudgetFn = std::function<double(double elapsed)>;

  explicit RpcShardBackend(RpcBackendOptions options);

  Result<Socket> AcquireConnection(size_t replica);
  void ReleaseConnection(size_t replica, Socket socket);

  /// One request/response exchange with one replica. Sets
  /// *transport_failed when the failure happened in the transport
  /// (retryable) as opposed to a decoded server answer (final).
  Result<std::string> CallOnce(size_t replica, uint16_t request_type,
                               uint16_t response_type,
                               const std::string& payload, double recv_budget,
                               bool inject_faults, bool* transport_failed);

  /// Hedged exchange: same payload to two replicas, first answer wins,
  /// loser connection closed unpooled.
  Result<std::string> CallHedged(uint16_t request_type, uint16_t response_type,
                                 const std::string& payload, double recv_budget,
                                 bool* transport_failed);

  /// Retry loop over CallOnce (or CallHedged when `hedge`).
  Result<std::string> Call(uint16_t request_type, uint16_t response_type,
                           const EncodeFn& encode, const BudgetFn& budget,
                           bool inject_faults, bool hedge);

  RpcBackendOptions options_;
  std::mutex pool_mutex_;
  /// Idle pooled connections, per replica.
  std::vector<std::vector<Socket>> idle_;

  std::atomic<uint64_t> transport_retries_{0};
  std::atomic<uint64_t> hedged_selects_{0};
  std::atomic<uint64_t> connections_opened_{0};
};

/// Probes a shard server once: connect, health round trip.
Result<ShardHealth> ProbeServer(const std::string& address,
                                double timeout_seconds);

/// Polls ProbeServer until the server reports ready or the timeout
/// elapses (kTimeout, message carrying the last probe failure).
Status WaitForServerReady(const std::string& address, double timeout_seconds);

/// Asks a shard server to shut down cleanly (kShutdownRequest) and
/// waits for the acknowledgement.
Status RequestServerShutdown(const std::string& address,
                             double timeout_seconds);

}  // namespace comparesets
