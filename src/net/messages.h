// Message-level (de)serialization for the shard RPC protocol: the
// typed payloads that travel inside net/wire_format.h frames.
//
// The vocabulary is deliberately small — the shard_server hosts ONE
// SelectionEngine, so the protocol is the engine's surface and nothing
// more: single selects, sub-batches (a router ships each shard its
// whole sub-batch in one frame so the engine's windowing / in-order
// memo semantics are preserved verbatim), health/readiness probes, and
// a clean shutdown handshake. Errors travel as a serialized Status with
// full code + message fidelity: the transport oracle requires the RPC
// path to surface *exactly* the Status the engine produced.
//
// Not on the wire, by design:
//   * SelectRequest::cancel — a CancelToken is a process-local pointer.
//     Cancellation crosses the socket as a deadline only; the client
//     stops waiting, the server finishes or expires on its own
//     (docs/execution-model.md).
//   * SelectorOptions::parallel — a runtime control the serving engine
//     overwrites anyway (the pool-lending nesting rule).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire_format.h"
#include "service/backend.h"
#include "service/engine.h"
#include "service/indexed_corpus.h"
#include "util/status.h"

namespace comparesets {

/// Frame types. Values are wire contract — append only.
enum class MessageType : uint16_t {
  kSelectRequest = 1,
  kSelectResponse = 2,
  kBatchRequest = 3,
  kBatchResponse = 4,
  kHealthRequest = 5,
  kHealthResponse = 6,
  kShutdownRequest = 7,
  kShutdownResponse = 8,
  /// Server-side protocol failure (unparseable frame, unsupported
  /// type): carries a serialized Status; the connection closes after.
  kError = 9,
};

/// Stable lowercase name ("select_request", ...) for logs and errors.
const char* MessageTypeName(MessageType type);

// ShardHealth itself lives in service/backend.h — it is the probe
// surface of every ShardBackend, not just the RPC one.

// --- Status ----------------------------------------------------------------

// Out-parameter instead of Result<Status>: the decoded status is the
// PAYLOAD here (often an error), distinct from the parse outcome.
void EncodeStatusTo(const Status& status, WireWriter* writer);
Status DecodeStatusFrom(WireReader* reader, Status* out);

// --- SelectRequest ---------------------------------------------------------

std::string EncodeSelectRequest(const SelectRequest& request);
Result<SelectRequest> DecodeSelectRequest(std::string_view payload);

// --- Result<SelectResponse> ------------------------------------------------

std::string EncodeSelectResult(const Result<SelectResponse>& result);
Result<Result<SelectResponse>> DecodeSelectResult(std::string_view payload);

// --- Batches ---------------------------------------------------------------

std::string EncodeBatchRequest(const std::vector<SelectRequest>& requests);
Result<std::vector<SelectRequest>> DecodeBatchRequest(
    std::string_view payload);

std::string EncodeBatchResponse(
    const std::vector<Result<SelectResponse>>& results);
Result<std::vector<Result<SelectResponse>>> DecodeBatchResponse(
    std::string_view payload);

// --- Health ----------------------------------------------------------------

std::string EncodeShardHealth(const ShardHealth& health);
Result<ShardHealth> DecodeShardHealth(std::string_view payload);

// --- Error frame -----------------------------------------------------------

std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload, Status* out);

}  // namespace comparesets
