// ShardServer: hosts one ShardBackend behind the wire protocol.
//
// One server = one shard. An accept thread hands each connection to its
// own handler thread, which answers frames sequentially until the peer
// goes away — the connection is the unit of ordering, exactly like a
// SelectionEngine call sequence. A kBatchRequest is answered by ONE
// backend SelectBatch call, so the engine's batch semantics (kernel
// windowing, in-order memo hits) survive the hop unchanged.
//
// Protocol errors (unparseable frame, unsupported type, bad payload)
// answer with a kError frame carrying the typed Status, then close the
// connection — a malformed peer never crashes or wedges the server
// (tests/net_protocol_test.cc feeds it a corpus of mutated frames).
//
// Shutdown discipline (the fd-race-free pattern): Shutdown() first
// Interrupt()s the listener (shutdown(2) WITHOUT close, so the fd value
// the accept thread holds stays stable), then shutdown(2)s every live
// connection fd from a mutex-guarded registry, then joins all threads,
// and only then — single-threaded again — closes descriptors. A peer's
// kShutdownRequest triggers the same path via WaitForShutdown().

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "service/backend.h"

namespace comparesets {

struct ShardServerOptions {
  /// Listen address: "unix:PATH" or "tcp:HOST:PORT" (port 0 = pick an
  /// ephemeral port; bound_address() reports the resolved one).
  std::string address;
  int backlog = 16;
  /// Budget for writing one response frame; <= 0 waits forever.
  double send_timeout_seconds = 30.0;
};

/// One shard behind a socket. Thread-safe public surface.
class ShardServer {
 public:
  /// Binds, listens, and starts the accept loop. The server owns the
  /// backend for its lifetime.
  static Result<std::unique_ptr<ShardServer>> Start(
      std::unique_ptr<ShardBackend> backend, ShardServerOptions options);

  ~ShardServer();
  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// The resolved address peers should connect to.
  const std::string& bound_address() const { return bound_address_; }

  /// Blocks until a peer's kShutdownRequest (or a local Shutdown())
  /// asks the server to stop, then tears everything down. The
  /// shard_server binary's main thread lives here.
  void WaitForShutdown();

  /// Stops accepting, unblocks and joins every connection thread,
  /// closes all descriptors. Idempotent; callable from any thread
  /// except a connection handler (those call RequestShutdown via the
  /// shutdown handshake instead).
  void Shutdown();

  /// Asks the server to stop without blocking (safe from handlers).
  void RequestShutdown();

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t frames_served() const {
    return frames_served_.load(std::memory_order_relaxed);
  }
  uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

 private:
  ShardServer(std::unique_ptr<ShardBackend> backend,
              ShardServerOptions options);

  void AcceptLoop();
  void HandleConnection(Socket socket, uint64_t connection_id);
  /// Answers one frame. Returns false when the connection should close
  /// (protocol error, shutdown handshake, send failure).
  bool Dispatch(Socket& socket, const NetFrame& frame);
  /// Best-effort kError frame carrying `status`.
  void SendError(Socket& socket, const Status& status);

  std::unique_ptr<ShardBackend> backend_;
  ShardServerOptions options_;
  ListenSocket listener_;
  std::string bound_address_;

  std::thread accept_thread_;
  std::mutex mutex_;
  std::vector<std::thread> connection_threads_;
  /// Live connection fds, keyed by connection id — Shutdown interrupts
  /// them via shutdown(2); each handler closes its own socket on exit.
  std::unordered_map<uint64_t, int> live_fds_;
  uint64_t next_connection_id_ = 0;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  std::atomic<bool> stopping_{false};
  bool torn_down_ = false;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace comparesets
