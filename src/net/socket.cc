#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/timer.h"

namespace comparesets {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Maps an OS send/recv/connect failure to the typed vocabulary.
Status TransportError(const char* what) {
  switch (errno) {
    case ECONNREFUSED:
    case ECONNRESET:
    case EPIPE:
    case ENOENT:     // Unix socket path does not exist (server gone).
    case ENOTCONN:
      return Status::Unavailable(ErrnoMessage(what));
    default:
      return Status::IOError(ErrnoMessage(what));
  }
}

/// Polls `fd` for `events` within the budget. `timeout_seconds <= 0`
/// waits forever. Returns kTimeout when the budget elapses.
Status PollFor(int fd, short events, double timeout_seconds,
               const char* what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  int timeout_ms = timeout_seconds <= 0.0
                       ? -1
                       : std::max(1, static_cast<int>(timeout_seconds * 1e3));
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::Timeout(std::string(what) + " timed out");
    }
    if (errno == EINTR) continue;
    return Status::IOError(ErrnoMessage(what));
  }
}

void SetCloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

Status SetNonBlocking(int fd, bool enabled) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::IOError(ErrnoMessage("fcntl(F_GETFL)"));
  if (enabled) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::IOError(ErrnoMessage("fcntl(F_SETFL)"));
  }
  return Status::OK();
}

/// Builds the sockaddr for a parsed address. `storage` must outlive the
/// returned pointer.
struct SockAddr {
  union {
    struct sockaddr_un un;
    struct sockaddr_in in;
  } storage;
  socklen_t len = 0;
  int family = 0;
};

Result<SockAddr> ToSockAddr(const ParsedAddress& address) {
  SockAddr out;
  std::memset(&out.storage, 0, sizeof(out.storage));
  if (address.is_unix) {
    out.family = AF_UNIX;
    out.storage.un.sun_family = AF_UNIX;
    std::snprintf(out.storage.un.sun_path, sizeof(out.storage.un.sun_path),
                  "%s", address.path.c_str());
    out.len = static_cast<socklen_t>(sizeof(out.storage.un));
    return out;
  }
  out.family = AF_INET;
  out.storage.in.sin_family = AF_INET;
  out.storage.in.sin_port = htons(address.port);
  if (::inet_pton(AF_INET, address.host.c_str(), &out.storage.in.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad IPv4 host '" + address.host +
                                   "' (use a numeric address)");
  }
  out.len = static_cast<socklen_t>(sizeof(out.storage.in));
  return out;
}

}  // namespace

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress parsed;
  const std::string kUnixPrefix = "unix:";
  const std::string kTcpPrefix = "tcp:";
  if (address.rfind(kUnixPrefix, 0) == 0) {
    parsed.is_unix = true;
    parsed.path = address.substr(kUnixPrefix.size());
    if (parsed.path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + address +
                                     "'");
    }
    struct sockaddr_un probe;
    if (parsed.path.size() >= sizeof(probe.sun_path)) {
      return Status::InvalidArgument(
          "unix socket path too long (" + std::to_string(parsed.path.size()) +
          " bytes, max " + std::to_string(sizeof(probe.sun_path) - 1) + ")");
    }
    return parsed;
  }
  if (address.rfind(kTcpPrefix, 0) == 0) {
    std::string rest = address.substr(kTcpPrefix.size());
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      return Status::InvalidArgument("expected tcp:HOST:PORT in '" + address +
                                     "'");
    }
    parsed.host = rest.substr(0, colon);
    char* end = nullptr;
    long port = std::strtol(rest.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      return Status::InvalidArgument("bad tcp port in '" + address + "'");
    }
    parsed.port = static_cast<uint16_t>(port);
    return parsed;
  }
  return Status::InvalidArgument(
      "unsupported address '" + address +
      "' (expected unix:PATH or tcp:HOST:PORT)");
}

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Result<Socket> Socket::Connect(const std::string& address,
                               double timeout_seconds) {
  COMPARESETS_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));
  COMPARESETS_ASSIGN_OR_RETURN(SockAddr addr, ToSockAddr(parsed));
  int fd = ::socket(addr.family, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoMessage("socket"));
  SetCloexec(fd);
  Socket sock(fd);
  Status status = SetNonBlocking(fd, true);
  if (!status.ok()) return status;
  Timer connect_timer;
  for (;;) {
    int rc = ::connect(
        fd, reinterpret_cast<const struct sockaddr*>(&addr.storage), addr.len);
    if (rc == 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN && addr.family == AF_UNIX) {
      // Unix sockets report a full listener backlog as EAGAIN with the
      // connection NOT in progress — polling POLLOUT would "succeed"
      // on a socket that never connected. Re-issue the connect until
      // the backlog drains or the budget elapses.
      if (timeout_seconds > 0.0 &&
          connect_timer.ElapsedSeconds() >= timeout_seconds) {
        return Status::Timeout("connect to " + address +
                               " timed out (listener backlog full)");
      }
      struct timespec nap = {0, 1000000};  // 1 ms
      ::nanosleep(&nap, nullptr);
      continue;
    }
    if (errno != EINPROGRESS) {
      return TransportError(("connect to " + address).c_str());
    }
    Status polled = PollFor(fd, POLLOUT, timeout_seconds,
                            ("connect to " + address).c_str());
    if (!polled.ok()) return polled;
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      return Status::IOError(ErrnoMessage("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      errno = err;
      return TransportError(("connect to " + address).c_str());
    }
    break;
  }
  COMPARESETS_RETURN_NOT_OK(SetNonBlocking(fd, false));
  if (addr.family == AF_INET) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return sock;
}

Status Socket::SendAll(const void* data, size_t len, double timeout_seconds) {
  if (fd_ < 0) return Status::IOError("send on closed socket");
  Timer timer;
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    double remaining = timeout_seconds <= 0.0
                           ? 0.0
                           : timeout_seconds - timer.ElapsedSeconds();
    if (timeout_seconds > 0.0 && remaining <= 0.0) {
      return Status::Timeout("socket send timed out");
    }
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-killing
    // SIGPIPE — servers and clients both outlive each other's crashes.
    ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      COMPARESETS_RETURN_NOT_OK(
          PollFor(fd_, POLLOUT, remaining, "socket send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return TransportError("socket send");
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len, double timeout_seconds) {
  if (fd_ < 0) return Status::IOError("recv on closed socket");
  Timer timer;
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    double remaining = timeout_seconds <= 0.0
                           ? 0.0
                           : timeout_seconds - timer.ElapsedSeconds();
    if (timeout_seconds > 0.0 && remaining <= 0.0) {
      return Status::Timeout("socket read timed out");
    }
    COMPARESETS_RETURN_NOT_OK(PollFor(fd_, POLLIN, remaining, "socket read"));
    ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return got == 0 ? Status::Unavailable("connection closed")
                      : Status::Unavailable("connection closed mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return TransportError("socket read");
  }
  return Status::OK();
}

Status Socket::SendFrame(uint16_t type, std::string_view payload,
                         double timeout_seconds) {
  std::string frame = EncodeFrame(type, payload);
  return SendAll(frame.data(), frame.size(), timeout_seconds);
}

Result<NetFrame> Socket::RecvFrame(double timeout_seconds) {
  Timer timer;
  char header_bytes[kFrameHeaderBytes];
  COMPARESETS_RETURN_NOT_OK(
      RecvAll(header_bytes, sizeof(header_bytes), timeout_seconds));
  COMPARESETS_ASSIGN_OR_RETURN(
      FrameHeader header,
      DecodeFrameHeader(std::string_view(header_bytes, sizeof(header_bytes))));
  NetFrame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_bytes);
  if (header.payload_bytes > 0) {
    double remaining = timeout_seconds <= 0.0
                           ? 0.0
                           : timeout_seconds - timer.ElapsedSeconds();
    if (timeout_seconds > 0.0 && remaining <= 0.0) {
      return Status::Timeout("socket read timed out");
    }
    COMPARESETS_RETURN_NOT_OK(
        RecvAll(frame.payload.data(), frame.payload.size(), remaining));
  }
  return frame;
}

ListenSocket::~ListenSocket() { Close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_),
      bound_address_(std::move(other.bound_address_)),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    bound_address_ = std::move(other.bound_address_);
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

void ListenSocket::Interrupt() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Result<ListenSocket> ListenSocket::Listen(const std::string& address,
                                          int backlog) {
  COMPARESETS_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));
  COMPARESETS_ASSIGN_OR_RETURN(SockAddr addr, ToSockAddr(parsed));
  int fd = ::socket(addr.family, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoMessage("socket"));
  SetCloexec(fd);
  ListenSocket listener;
  listener.fd_ = fd;
  if (parsed.is_unix) {
    ::unlink(parsed.path.c_str());  // Stale path from a dead server.
  } else {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr.storage),
             addr.len) != 0) {
    return Status::IOError(ErrnoMessage(("bind " + address).c_str()));
  }
  if (::listen(fd, backlog) != 0) {
    return Status::IOError(ErrnoMessage(("listen " + address).c_str()));
  }
  if (parsed.is_unix) {
    listener.unix_path_ = parsed.path;
    listener.bound_address_ = address;
  } else {
    struct sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) != 0) {
      return Status::IOError(ErrnoMessage("getsockname"));
    }
    listener.bound_address_ =
        "tcp:" + parsed.host + ":" + std::to_string(ntohs(bound.sin_port));
  }
  return listener;
}

Result<Socket> ListenSocket::Accept() {
  if (fd_ < 0) return Status::Unavailable("listener closed");
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetCloexec(fd);
      return Socket(fd);
    }
    // ECONNABORTED: the peer connected and hung up before we accepted —
    // its problem, not the listener's. Treating it as the exit signal
    // would let one rude client stop the server from accepting anyone.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    // EBADF / EINVAL after Close(): the accept loop's normal exit.
    return Status::Unavailable(ErrnoMessage("accept"));
  }
}

}  // namespace comparesets
