// Wire primitives for the shard-serving RPC protocol: a bounds-checked
// binary reader/writer pair and the length-prefixed, versioned frame
// header every message travels under.
//
// Encoding rules (the whole protocol follows them):
//   * Fixed-width integers are little-endian.
//   * Strings are a u32 byte length followed by the raw bytes.
//   * Doubles are their IEEE-754 bit pattern as a u64 — bit-exact round
//     trips, which is what lets the RPC transport oracle demand
//     byte-identical responses to the in-process router.
//
// Frame layout (kFrameHeaderBytes = 12):
//   offset 0  u8[4]  magic "CSRP"
//   offset 4  u16    protocol version (kWireVersion)
//   offset 6  u16    message type (net/messages.h MessageType)
//   offset 8  u32    payload byte length (<= kMaxFramePayloadBytes)
//   offset 12 ...    payload
//
// Every malformed input — truncated header or payload, bad magic, an
// oversized length prefix, a version we do not speak — decodes to a
// clean typed Status (never a crash, never an unbounded read):
// kParseError for garbage, kInvalidArgument for a version mismatch.
// tests/net_protocol_test.cc holds the mutated-frame corpus that pins
// this contract.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace comparesets {

/// Protocol version spoken by this build. Bumped on any incompatible
/// frame or payload layout change; peers refuse other versions with a
/// typed error instead of misparsing.
///   v1: initial protocol.
///   v2: quality tiers — SelectorOptions gained min_tier /
///       sample_threshold / sample_size, SelectResponse and RequestTrace
///       gained tier + objective_gap.
///   v3: streaming ingestion — RequestTrace gained ingest_records (the
///       shard snapshot's cumulative delta-applied review count).
///   v4: request priority — SelectRequest gained a priority class
///       (interactive/batch, u8) and RequestTrace gained the effective
///       priority string.
inline constexpr uint16_t kWireVersion = 4;

/// Frame header magic: "CSRP" (CompareSets RPc).
inline constexpr uint8_t kFrameMagic[4] = {'C', 'S', 'R', 'P'};

/// Fixed byte size of the frame header.
inline constexpr size_t kFrameHeaderBytes = 12;

/// Hard cap on one frame's payload. Far above any real batch response,
/// far below anything that could exhaust memory from a hostile or
/// corrupted length prefix.
inline constexpr uint32_t kMaxFramePayloadBytes = 64u * 1024u * 1024u;

/// Decoded frame header.
struct FrameHeader {
  uint16_t version = kWireVersion;
  uint16_t type = 0;
  uint32_t payload_bytes = 0;
};

/// Appends the 12-byte header for a `type` frame carrying
/// `payload_bytes` of payload to `out`.
void AppendFrameHeader(uint16_t type, uint32_t payload_bytes,
                       std::string* out);

/// One complete frame: header + payload, ready to send.
std::string EncodeFrame(uint16_t type, std::string_view payload);

/// Parses and validates a 12-byte header. `data` must hold at least
/// kFrameHeaderBytes (callers read exactly that much off the socket).
/// Typed failures: kParseError (bad magic, oversized payload length),
/// kInvalidArgument (version mismatch).
Result<FrameHeader> DecodeFrameHeader(std::string_view data);

/// Append-only binary writer implementing the encoding rules above.
class WireWriter {
 public:
  void WriteU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  /// Bit-pattern encoding: exact round trip for every double, including
  /// negative zero, infinities, and NaN payloads.
  void WriteDouble(double v);
  void WriteString(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over one payload. Every Read* fails with
/// kParseError instead of reading past the end; decoders propagate the
/// failure so a truncated or garbage payload can never crash a peer.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<bool> ReadBool();
  Result<double> ReadDouble();
  Result<std::string> ReadString();

  /// Bytes not yet consumed. Decoders of complete messages check this
  /// is 0 at the end — trailing garbage is a parse error, not padding.
  size_t remaining() const { return data_.size() - pos_; }

  /// kParseError naming `what` unless exactly everything was consumed.
  Status ExpectFullyConsumed(const char* what) const;

 private:
  Status Need(size_t n, const char* what);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace comparesets
