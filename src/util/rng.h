// Deterministic pseudo-random number generation (PCG32).
//
// All stochastic components of the library (synthetic data, Random
// baselines, simulated annotators) draw from explicitly seeded `Rng`
// instances so every experiment is reproducible bit-for-bit across runs
// and platforms. std::mt19937 is avoided because distribution
// implementations differ across standard libraries.

#pragma once

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace comparesets {

/// PCG32 (O'Neill 2014): 64-bit state, 32-bit output, period 2^64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1)
      : state_(0), inc_((stream << 1u) | 1u) {
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform integer in [0, bound), unbiased (rejection sampling).
  uint32_t UniformU32(uint32_t bound) {
    COMPARESETS_CHECK(bound > 0) << "UniformU32 bound must be positive";
    uint32_t threshold = (~bound + 1u) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    COMPARESETS_CHECK(lo <= hi) << "UniformInt empty range";
    return lo + static_cast<int>(
                    UniformU32(static_cast<uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return NextU32() * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (one value per call; simple and exact).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double Gamma(double shape);

  /// Samples an index from unnormalized non-negative weights.
  size_t Categorical(const std::vector<double>& weights);

  /// Samples a Dirichlet vector with the given concentration parameters.
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  int Poisson(double lambda);

  /// Geometric number of failures before first success; p in (0, 1].
  int Geometric(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = UniformU32(static_cast<uint32_t>(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, population) without
  /// replacement (Floyd's algorithm); result is unsorted.
  std::vector<size_t> SampleWithoutReplacement(size_t population, size_t count);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace comparesets
