// Cooperative cancellation and per-request execution control.
//
// A serving path must be able to abandon work it no longer wants: a
// client went away (CancelToken) or a latency contract ran out
// (Deadline). Neither can preempt a compute loop, so the solvers check
// an ExecControl at iteration boundaries — NOMP atom steps, NNLS
// active-set iterations, per-item / per-sweep selector loops — and
// return kCancelled / kDeadlineExceeded instead of running on.
//
// All members of ExecControl are optional; a nullptr ExecControl* (the
// default everywhere) costs nothing. The iteration counter doubles as
// the "solver iterations" field of the request trace: every control
// check is one solver-loop boundary crossed.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/timer.h"

namespace comparesets {

/// One named, timed phase of a request (e.g. "crs.items",
/// "compare_sets_plus.round"). Repeated phases record repeated spans;
/// consumers aggregate by name.
struct TraceSpan {
  std::string name;
  double seconds = 0.0;
};

/// Thread-safe collector of TraceSpans for one request. The engine owns
/// one per request and hands the selectors a pointer through
/// ExecControl; worker threads may Record() concurrently. Span order is
/// the order Record() calls complete, which for parallel phases is
/// nondeterministic — consumers must not depend on it (RequestTrace
/// serializes spans aggregated by name for this reason).
class SpanSink {
 public:
  void Record(std::string name, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(TraceSpan{std::move(name), seconds});
  }

  /// Moves the collected spans out; the sink is empty afterwards.
  std::vector<TraceSpan> Take() {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(spans_);
  }

 private:
  std::mutex mutex_;
  std::vector<TraceSpan> spans_;
};

/// One-shot cancellation flag shared between a requester and the worker
/// executing its request. Thread-safe; cancelling is idempotent.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-request execution controls, threaded from SelectionEngine through
/// the selectors into the NOMP/NNLS inner loops. A view: the engine owns
/// the deadline/token/counter for the request's lifetime.
struct ExecControl {
  const Deadline* deadline = nullptr;    ///< nullptr = no latency bound.
  const CancelToken* cancel = nullptr;   ///< nullptr = not cancellable.
  /// Incremented once per Check() — i.e. once per solver iteration
  /// boundary — giving the request trace its iteration count. May be
  /// shared across worker threads (atomic).
  std::atomic<uint64_t>* iterations = nullptr;
  /// Incremented once per NNLS solve that hit its iteration cap before
  /// dual feasibility (silent non-convergence would otherwise vanish);
  /// feeds the request trace and the solver.nnls_nonconverged counter.
  std::atomic<uint64_t>* nnls_nonconverged = nullptr;
  /// Incremented once per intra-request fan-out that actually went
  /// parallel (util/parallel.h RunParallel with > 1 lane); feeds the
  /// request trace and the solver.intra_parallel_fanouts counter.
  std::atomic<uint64_t>* parallel_fanouts = nullptr;
  /// Incremented by the task count of each such fan-out; feeds the
  /// request trace and the solver.intra_parallel_tasks counter.
  std::atomic<uint64_t>* parallel_tasks = nullptr;
  /// Destination for named phase timings (nullptr = don't record).
  /// Shared across the request's worker threads; SpanSink locks.
  SpanSink* spans = nullptr;

  /// Counts one iteration, then reports whether work should continue.
  /// `where` names the loop for the error message ("nomp", "nnls", ...).
  Status Check(const char* where) const;
};

/// Records a span on a possibly-null control / possibly-null sink.
inline void RecordSpan(const ExecControl* control, const char* name,
                       double seconds) {
  if (control == nullptr || control->spans == nullptr) return;
  control->spans->Record(name, seconds);
}

/// Check() on a possibly-null control: the pattern every solver uses.
inline Status CheckExec(const ExecControl* control, const char* where) {
  if (control == nullptr) return Status::OK();
  return control->Check(where);
}

}  // namespace comparesets
