#include "util/cancellation.h"

#include <string>

namespace comparesets {

Status ExecControl::Check(const char* where) const {
  if (iterations != nullptr) {
    iterations->fetch_add(1, std::memory_order_relaxed);
  }
  // Cancellation outranks the deadline: an abandoned request should
  // report kCancelled even if its deadline also ran out meanwhile.
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled(std::string("request cancelled in ") + where);
  }
  if (deadline != nullptr && deadline->Expired()) {
    return Status::DeadlineExceeded(std::string("deadline exceeded in ") +
                                    where);
  }
  return Status::OK();
}

}  // namespace comparesets
