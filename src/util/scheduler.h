// Priority-aware work-stealing scheduler underpinning util/ThreadPool.
//
// Layout: every worker owns a pair of deques (one per priority class),
// each guarded by its own mutex. External submitters round-robin tasks
// across the worker deques; a task submitted *from* a worker thread
// lands on that worker's own deque (cheap, contention-free fan-out for
// ParallelFor helpers). A worker pops the front of its own deques —
// interactive before batch — and, when both are empty, steals from its
// victims' backs, taking half the victim's deque in one lock
// acquisition (steal-half amortises lock traffic under imbalance).
//
// Priority contract: an interactive task is never queued behind batch
// work. Locally, the interactive deque is always drained before the
// batch deque; when stealing, a worker scans EVERY victim's interactive
// deque before it touches any batch deque. So the only way a batch task
// runs while an interactive task waits is if every worker is already
// busy executing — there is no queue a batch task can cut ahead in.
//
// Determinism: the scheduler moves closures between deques; it never
// looks inside them. ParallelFor bodies claim indices via an atomic
// counter and write pre-sized slots merged in index order, so *which*
// worker runs an index cannot affect the output — bit-identity at every
// lane count survives stealing by construction (docs/execution-model.md).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace comparesets {

/// Scheduling class for a task or a request. Doubles as the
/// request-level priority carried through EngineOptions / the wire
/// protocol: interactive work (a latency-sensitive lone Select) always
/// jumps ahead of batch work (background SelectBatch fan-out).
enum class RequestPriority : uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

inline constexpr size_t kNumPriorityClasses = 2;

/// "interactive" / "batch" — stable names used in traces and flags.
const char* RequestPriorityName(RequestPriority priority);

/// Parses a priority name; returns false (and leaves *out untouched) on
/// anything but "interactive" / "batch".
bool ParseRequestPriority(const std::string& text, RequestPriority* out);

/// The more-batch of two priorities. Used when a request meets a
/// context that demotes it (a batch fan-out never promotes its
/// sub-requests to interactive).
inline RequestPriority DemotePriority(RequestPriority a, RequestPriority b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

/// Fixed-size work-stealing worker pool with two priority classes.
/// Thread-safety: Submit is safe from any thread (including from tasks
/// running on the scheduler's own workers); the destructor must not
/// race live Submit calls from *external* threads — tasks already
/// running may keep submitting, and everything queued before or during
/// the drain is executed before the workers join.
class WorkStealingScheduler {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, min 1).
  explicit WorkStealingScheduler(size_t num_threads = 0);

  /// Drains every deque (running all queued tasks), then joins.
  ~WorkStealingScheduler();

  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  /// Number of worker threads (constant for the scheduler's lifetime).
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task in the given class. From a worker thread the task
  /// lands on that worker's own deque; from outside, deques are chosen
  /// round-robin. Tasks must not throw.
  void Submit(std::function<void()> task,
              RequestPriority priority = RequestPriority::kInteractive);

  /// Number of successful steal operations (one per steal-half batch,
  /// however many tasks it moved). Monotone; for tests and diagnostics.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct WorkerState {
    std::mutex mutex;
    std::deque<std::function<void()>> queues[kNumPriorityClasses];
  };

  void WorkerLoop(size_t id);
  /// Pops the front of this worker's own deques, interactive first.
  bool PopLocal(size_t id, std::function<void()>* task);
  /// Two-pass steal: every victim's interactive deque, then every
  /// victim's batch deque. Takes ceil(size/2) tasks off the victim's
  /// back, keeps the oldest stolen task to run and re-queues the rest
  /// on this worker's own deque.
  bool Steal(size_t id, std::function<void()>* task);

  std::atomic<bool> stopping_{false};
  /// Tasks currently sitting in some deque (not yet popped). Drives
  /// the sleep predicate and the drain-then-join exit condition.
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_deque_{0};  // Round-robin for external Submit.
  std::atomic<uint64_t> steals_{0};
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
  std::vector<std::unique_ptr<WorkerState>> states_;
  std::vector<std::thread> workers_;
};

}  // namespace comparesets
