#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace comparesets {

Result<std::vector<CsvRow>> ParseCsv(const std::string& content, char sep) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  size_t i = 0;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < content.size()) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field += '"';  // Doubled quote inside a quoted field.
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && !field_started && field.empty()) {
      in_quotes = true;
      field_started = true;
      ++i;
      continue;
    }
    if (c == sep) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r') {
      // Normalize CRLF and lone CR as row terminators.
      if (i + 1 < content.size() && content[i + 1] == '\n') ++i;
      end_row();
      ++i;
      continue;
    }
    if (c == '\n') {
      end_row();
      ++i;
      continue;
    }
    field += c;
    field_started = true;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  // Flush a final row that lacks a trailing newline.
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

namespace {
bool NeedsQuoting(const std::string& field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string WriteCsv(const std::vector<CsvRow>& rows, char sep) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += sep;
      out += NeedsQuoting(row[i], sep) ? QuoteField(row[i]) : row[i];
    }
    out += '\n';
  }
  return out;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path, char sep) {
  COMPARESETS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParseCsv(content, sep);
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char sep) {
  return WriteStringToFile(path, WriteCsv(rows, sep));
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << content;
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace comparesets
