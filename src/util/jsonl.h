// Minimal JSON value model, parser, and serializer.
//
// Sufficient for the Amazon-review JSON-lines format (objects, arrays,
// strings with escapes, numbers, booleans, null) and for exporting
// experiment results. Not a validating general-purpose JSON library:
// numbers are parsed as double, and \uXXXX escapes outside the BMP are
// accepted pair-wise (surrogates are passed through as UTF-8).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace comparesets {

/// A JSON value: null, bool, number, string, array, or object.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}            // NOLINT
  JsonValue(bool b) : value_(b) {}                          // NOLINT
  JsonValue(double d) : value_(d) {}                        // NOLINT
  JsonValue(int i) : value_(static_cast<double>(i)) {}      // NOLINT
  JsonValue(int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}        // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}      // NOLINT
  JsonValue(Array a) : value_(std::move(a)) {}              // NOLINT
  JsonValue(Object o) : value_(std::move(o)) {}             // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience typed getters with defaults (for tolerant data loading).
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;

  /// Compact serialization (stable member order: std::map).
  std::string Dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(const std::string& text);

/// Parses a JSON-lines document (one JSON object per non-empty line).
Result<std::vector<JsonValue>> ParseJsonLines(const std::string& text);

}  // namespace comparesets
