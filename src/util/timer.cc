#include "util/timer.h"

// Header-only today; this translation unit anchors the module and keeps
// the build graph stable if out-of-line members are added later.
