#include "util/parallel.h"

#include <algorithm>
#include <atomic>

#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace comparesets {

size_t ParallelContext::Lanes(size_t n) const {
  if (pool == nullptr || n <= 1) return std::min<size_t>(n, 1);
  size_t lanes = pool->num_threads() + 1;  // Workers + the calling thread.
  if (max_threads > 0) lanes = std::min(lanes, max_threads);
  return std::max<size_t>(1, std::min(lanes, n));
}

size_t RunParallel(const ParallelContext& context, size_t n,
                   const std::function<void(size_t)>& body,
                   const ExecControl* control) {
  size_t lanes = context.Lanes(n);
  if (lanes <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return 1;
  }
  if (control != nullptr) {
    if (control->parallel_fanouts != nullptr) {
      control->parallel_fanouts->fetch_add(1, std::memory_order_relaxed);
    }
    if (control->parallel_tasks != nullptr) {
      control->parallel_tasks->fetch_add(n, std::memory_order_relaxed);
    }
  }
  context.pool->ParallelFor(n, body, lanes, context.priority);
  return lanes;
}

}  // namespace comparesets
