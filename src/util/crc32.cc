#include "util/crc32.h"

#include <array>

namespace comparesets {

namespace {

// 256-entry lookup table for the reflected polynomial, computed once.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t crc = ~seed;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(c)) & 0xFFu];
  }
  return ~crc;
}

}  // namespace comparesets
