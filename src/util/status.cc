#include "util/status.h"

#include <cstdio>
#include <ostream>

namespace comparesets {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal: unchecked failing status: %s\n",
               ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace comparesets
