// Wall-clock timing helpers used by the runtime experiments (Figure 7)
// and the branch-and-bound time limit (Table 5).

#pragma once

#include <chrono>
#include <cstdint>

namespace comparesets {

/// Monotonic stopwatch. Started on construction; restartable.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deadline for time-limited solvers. A non-positive budget means
/// "no limit".
class Deadline {
 public:
  explicit Deadline(double budget_seconds)
      : limited_(budget_seconds > 0.0), budget_seconds_(budget_seconds) {}

  bool Expired() const {
    return limited_ && timer_.ElapsedSeconds() >= budget_seconds_;
  }

  /// Whether this deadline can ever expire (budget was positive).
  bool limited() const { return limited_; }

  double RemainingSeconds() const {
    if (!limited_) return 1e30;
    return budget_seconds_ - timer_.ElapsedSeconds();
  }

 private:
  bool limited_;
  double budget_seconds_;
  Timer timer_;
};

}  // namespace comparesets
