// Fixed-size worker pool shared by the eval runner and the serving
// engine. Extracted from the ad-hoc std::thread loop that used to live
// in eval/runner.cc so every batched caller shares one implementation
// (and thread creation cost is paid once per pool, not per run).
//
// Two entry points:
//   * Submit(task)        — fire-and-forget enqueue;
//   * ParallelFor(n, fn)  — block until fn(0..n-1) all ran. The calling
//     thread participates in the loop, so ParallelFor makes progress
//     even on a fully busy (or 1-thread) pool.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace comparesets {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; runs on some worker thread. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), distributing indices over the
  /// workers and the calling thread; returns when all n ran. The body
  /// must not throw; report failures through captured state (Status).
  /// Safe to call from multiple threads concurrently (each call claims
  /// its own index range), but not reentrantly from inside a body.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Resolves a thread-count request: 0 means hardware concurrency and
  /// the result is clamped to [1, max_useful].
  static size_t ResolveThreads(size_t requested, size_t max_useful);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace comparesets
