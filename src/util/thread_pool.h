// Fixed-size worker pool shared by the eval runner and the serving
// engine. Extracted from the ad-hoc std::thread loop that used to live
// in eval/runner.cc so every batched caller shares one implementation
// (and thread creation cost is paid once per pool, not per run).
//
// Two entry points:
//   * Submit(task)        — fire-and-forget enqueue;
//   * ParallelFor(n, fn)  — block until fn(0..n-1) all ran. The calling
//     thread participates in the loop, so ParallelFor makes progress
//     even on a fully busy (or 1-thread) pool.
//
// Ownership model (docs/execution-model.md): a process typically holds
// ONE pool per engine, sized to the hardware, and lends it out — batch
// fan-out and intra-request fan-out (util/parallel.h) share it rather
// than each spawning threads, so the process never oversubscribes.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace comparesets {

/// Fixed-size FIFO worker pool. Thread-safety: every member function is
/// safe to call from any thread; the destructor must not race live
/// Submit/ParallelFor calls (join callers before destroying the pool —
/// the engine does this by owning the pool last-declared).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (constant for the pool's lifetime). A
  /// ParallelFor caller adds one extra lane on top of this.
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; runs on some worker thread, FIFO order. Tasks
  /// must not throw (the pool has no exception channel); report
  /// failures through state captured by the task.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), distributing indices over the
  /// workers and the calling thread; returns when all n ran. Indices
  /// are claimed dynamically (uneven per-index work balances itself);
  /// completion order is unspecified. The body must not throw; report
  /// failures through captured per-index state (e.g. a Status slot).
  ///
  /// `max_lanes` caps the concurrency, counting the calling thread:
  /// at most max_lanes − 1 helper tasks are enqueued (0 = no cap, use
  /// every worker; 1 = run the whole loop inline on the caller).
  ///
  /// Safe to call from multiple threads concurrently (each call claims
  /// its own index range), but not reentrantly from inside a body —
  /// nested fan-out must follow the outer-wins rule instead
  /// (docs/execution-model.md).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   size_t max_lanes = 0);

  /// Resolves a thread-count request: 0 means hardware concurrency and
  /// the result is clamped to [1, max_useful].
  static size_t ResolveThreads(size_t requested, size_t max_useful);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace comparesets
