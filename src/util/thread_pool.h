// Fixed-size worker pool shared by the eval runner and the serving
// engine. Extracted from the ad-hoc std::thread loop that used to live
// in eval/runner.cc so every batched caller shares one implementation
// (and thread creation cost is paid once per pool, not per run).
//
// Since the scheduler refactor, ThreadPool is a thin facade over
// util/scheduler's WorkStealingScheduler: per-worker deques with
// steal-half balancing and two priority classes (kInteractive /
// kBatch), where interactive tasks are never queued behind batch work.
// The API below is unchanged apart from the optional priority
// arguments, and every behavioural contract (FIFO-per-class dispatch,
// destructor drain, ParallelFor caller participation) is preserved.
//
// Two entry points:
//   * Submit(task)        — fire-and-forget enqueue;
//   * ParallelFor(n, fn)  — block until fn(0..n-1) all ran. The calling
//     thread participates in the loop, so ParallelFor makes progress
//     even on a fully busy (or 1-thread) pool.
//
// Ownership model (docs/execution-model.md): a process typically holds
// ONE pool per engine, sized to the hardware, and lends it out — batch
// fan-out and intra-request fan-out (util/parallel.h) share it rather
// than each spawning threads, so the process never oversubscribes.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/scheduler.h"

namespace comparesets {

/// Fixed-size work-stealing worker pool. Thread-safety: every member
/// function is safe to call from any thread; the destructor must not
/// race live Submit/ParallelFor calls (join callers before destroying
/// the pool — the engine does this by owning the pool last-declared).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0) : scheduler_(num_threads) {}

  /// Drains queued tasks, then joins the workers.
  ~ThreadPool() = default;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (constant for the pool's lifetime). A
  /// ParallelFor caller adds one extra lane on top of this.
  size_t num_threads() const { return scheduler_.num_threads(); }

  /// Enqueues a task in the given priority class; runs on some worker
  /// thread, FIFO within its class, and never behind lower-priority
  /// work. Tasks must not throw (the pool has no exception channel);
  /// report failures through state captured by the task.
  void Submit(std::function<void()> task,
              RequestPriority priority = RequestPriority::kInteractive) {
    scheduler_.Submit(std::move(task), priority);
  }

  /// Runs body(i) for every i in [0, n), distributing indices over the
  /// workers and the calling thread; returns when all n ran. Indices
  /// are claimed dynamically (uneven per-index work balances itself);
  /// completion order is unspecified — but which worker runs an index
  /// never affects the result, so the loop is bit-identical at every
  /// lane count and under both priorities. The body must not throw;
  /// report failures through captured per-index state (e.g. a Status
  /// slot).
  ///
  /// `max_lanes` caps the concurrency, counting the calling thread:
  /// at most max_lanes − 1 helper tasks are enqueued (0 = no cap, use
  /// every worker; 1 = run the whole loop inline on the caller).
  ///
  /// `priority` classes the helper tasks: a kBatch loop's helpers wait
  /// behind any queued interactive work (the caller still participates
  /// immediately, so the loop always progresses).
  ///
  /// Safe to call from multiple threads concurrently (each call claims
  /// its own index range), but not reentrantly from inside a body —
  /// nested fan-out must follow the outer-wins rule instead
  /// (docs/execution-model.md).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   size_t max_lanes = 0,
                   RequestPriority priority = RequestPriority::kInteractive);

  /// Successful steal-half operations since construction (diagnostics).
  uint64_t steals() const { return scheduler_.steals(); }

  /// Resolves a thread-count request: 0 means hardware concurrency and
  /// the result is clamped to [1, max_useful].
  static size_t ResolveThreads(size_t requested, size_t max_useful);

 private:
  WorkStealingScheduler scheduler_;
};

}  // namespace comparesets
