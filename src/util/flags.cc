#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace comparesets {

void FlagParser::AddInt(const std::string& name, int default_value,
                        const std::string& help) {
  flags_[name] = Flag{default_value, help};
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  flags_[name] = Flag{default_value, help};
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{default_value, help};
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  flags_[name] = Flag{default_value, help};
}

Status FlagParser::SetFromString(const std::string& name,
                                 const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return Status::InvalidArgument("unknown flag: --" + name);
  Flag& flag = it->second;
  if (std::holds_alternative<int>(flag.value)) {
    char* end = nullptr;
    long v = std::strtol(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || text.empty()) {
      return Status::InvalidArgument("flag --" + name + " expects an int, got '" +
                                     text + "'");
    }
    flag.value = static_cast<int>(v);
  } else if (std::holds_alternative<double>(flag.value)) {
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || text.empty()) {
      return Status::InvalidArgument("flag --" + name +
                                     " expects a double, got '" + text + "'");
    }
    flag.value = v;
  } else if (std::holds_alternative<bool>(flag.value)) {
    std::string lower = ToLower(text);
    if (lower == "true" || lower == "1" || lower == "yes") flag.value = true;
    else if (lower == "false" || lower == "0" || lower == "no") flag.value = false;
    else
      return Status::InvalidArgument("flag --" + name +
                                     " expects a bool, got '" + text + "'");
  } else {
    flag.value = text;
  }
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      help_requested_ = true;
      return Status::OK();
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      COMPARESETS_RETURN_NOT_OK(
          SetFromString(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + body);
    }
    if (std::holds_alternative<bool>(it->second.value)) {
      // Bare boolean flag enables it; allow an explicit following value too.
      if (i + 1 < argc && (std::string(argv[i + 1]) == "true" ||
                           std::string(argv[i + 1]) == "false")) {
        COMPARESETS_RETURN_NOT_OK(SetFromString(body, argv[++i]));
      } else {
        it->second.value = true;
      }
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " is missing a value");
    }
    COMPARESETS_RETURN_NOT_OK(SetFromString(body, argv[++i]));
  }
  return Status::OK();
}

int FlagParser::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  COMPARESETS_CHECK(it != flags_.end()) << "undefined flag " << name;
  return std::get<int>(it->second.value);
}

double FlagParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  COMPARESETS_CHECK(it != flags_.end()) << "undefined flag " << name;
  return std::get<double>(it->second.value);
}

const std::string& FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  COMPARESETS_CHECK(it != flags_.end()) << "undefined flag " << name;
  return std::get<std::string>(it->second.value);
}

bool FlagParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  COMPARESETS_CHECK(it != flags_.end()) << "undefined flag " << name;
  return std::get<bool>(it->second.value);
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    if (std::holds_alternative<int>(flag.value)) {
      out += " (int, default " + std::to_string(std::get<int>(flag.value)) + ")";
    } else if (std::holds_alternative<double>(flag.value)) {
      out += " (double, default " + FormatDouble(std::get<double>(flag.value), 4) + ")";
    } else if (std::holds_alternative<bool>(flag.value)) {
      out += std::get<bool>(flag.value) ? " (bool, default true)"
                                        : " (bool, default false)";
    } else {
      out += " (string, default '" + std::get<std::string>(flag.value) + "')";
    }
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

}  // namespace comparesets
