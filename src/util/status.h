// Status / Result<T> error model, in the style of Arrow / RocksDB.
//
// Functions that can fail return `Status` (no payload) or `Result<T>`
// (payload or error). Failures carry a code and a human-readable message.
// Statuses must be checked; the convenience macros below make propagation
// terse:
//
//   COMPARESETS_RETURN_NOT_OK(DoThing());
//   COMPARESETS_ASSIGN_OR_RETURN(auto v, ComputeValue());

#pragma once

#include <cstdlib>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>

namespace comparesets {

/// Machine-readable category for a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kParseError,
  kTimeout,
  kInternal,
  kNotImplemented,
  /// A per-request deadline elapsed before the work finished. Unlike
  /// kTimeout (a solver's own time budget, e.g. branch-and-bound caps),
  /// this is the *caller's* latency contract being enforced.
  kDeadlineExceeded,
  /// The caller cancelled the request cooperatively (CancelToken).
  kCancelled,
  /// The serving layer refused admission: in-flight + queued requests
  /// already fill the configured capacity.
  kResourceExhausted,
  /// The shard (or backend) that owns the requested key is temporarily
  /// not serving — down or mid-swap. Unlike kResourceExhausted this is
  /// about *which* data was asked for, not about load: other key ranges
  /// keep serving normally.
  kUnavailable,
};

/// Returns a stable lowercase name for a status code ("ok", "io error", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that has no payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if not OK. For use in contexts
  /// (tests, examples) where failure is a programming error.
  void CheckOK() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Outcome of an operation that yields a T on success.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::IOError(...)`.
  Result(Status status) : value_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(value_).ok()) {
      // An OK status carries no payload; this is a caller bug.
      std::get<Status>(value_) =
          Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  /// Payload access; undefined if !ok(). Use ValueOrDie() in tests.
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  /// Payload access that aborts with a diagnostic on error.
  T ValueOrDie() && {
    status().CheckOK();
    return std::get<T>(std::move(value_));
  }
  const T& ValueOrDie() const& {
    status().CheckOK();
    return std::get<T>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace comparesets

#define COMPARESETS_RETURN_NOT_OK(expr)            \
  do {                                             \
    ::comparesets::Status _st = (expr);            \
    if (!_st.ok()) return _st;                     \
  } while (false)

#define COMPARESETS_CONCAT_IMPL(a, b) a##b
#define COMPARESETS_CONCAT(a, b) COMPARESETS_CONCAT_IMPL(a, b)

#define COMPARESETS_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                                      \
  if (!result_name.ok()) return result_name.status();             \
  lhs = std::move(result_name).value()

#define COMPARESETS_ASSIGN_OR_RETURN(lhs, expr)                         \
  COMPARESETS_ASSIGN_OR_RETURN_IMPL(                                    \
      COMPARESETS_CONCAT(_result_, __LINE__), lhs, expr)
