#include "util/jsonl.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace comparesets {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = as_object().find(key);
  return it == as_object().end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StringPrintf("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpValue(const JsonValue& v, std::string* out) {
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_bool()) {
    *out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    double d = v.as_number();
    if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
      *out += StringPrintf("%lld", static_cast<long long>(d));
    } else {
      *out += StringPrintf("%.17g", d);
    }
  } else if (v.is_string()) {
    AppendEscaped(v.as_string(), out);
  } else if (v.is_array()) {
    out->push_back('[');
    const auto& arr = v.as_array();
    for (size_t i = 0; i < arr.size(); ++i) {
      if (i) out->push_back(',');
      DumpValue(arr[i], out);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [key, value] : v.as_object()) {
      if (!first) out->push_back(',');
      first = false;
      AppendEscaped(key, out);
      out->push_back(':');
      DumpValue(value, out);
    }
    out->push_back('}');
  }
}

/// Recursive-descent JSON parser over a raw buffer.
class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    COMPARESETS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (p_ != end_) return Status::ParseError("trailing content after JSON");
    return v;
  }

 private:
  void SkipWhitespace() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (p_ == end_) return Status::ParseError("unexpected end of JSON");
    switch (*p_) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true", JsonValue(true));
      case 'f':
        return ParseLiteral("false", JsonValue(false));
      case 'n':
        return ParseLiteral("null", JsonValue(nullptr));
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(const char* literal, JsonValue value) {
    for (const char* c = literal; *c; ++c) {
      if (p_ == end_ || *p_ != *c) {
        return Status::ParseError(std::string("bad literal, expected ") +
                                  literal);
      }
      ++p_;
    }
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) return Status::ParseError("invalid JSON number");
    std::string token(start, p_);
    char* parse_end = nullptr;
    double d = std::strtod(token.c_str(), &parse_end);
    if (parse_end != token.c_str() + token.size()) {
      return Status::ParseError("invalid JSON number: " + token);
    }
    return JsonValue(d);
  }

  Result<JsonValue> ParseString() {
    COMPARESETS_ASSIGN_OR_RETURN(std::string s, ParseRawString());
    return JsonValue(std::move(s));
  }

  Result<std::string> ParseRawString() {
    if (!Consume('"')) return Status::ParseError("expected string");
    std::string out;
    while (p_ != end_) {
      char c = *p_++;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) break;
      char esc = *p_++;
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (end_ - p_ < 4) return Status::ParseError("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::ParseError("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogates passed through).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::ParseError("unknown escape character");
      }
    }
    return Status::ParseError("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    JsonValue::Array arr;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(arr));
    for (;;) {
      SkipWhitespace();
      COMPARESETS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return JsonValue(std::move(arr));
      if (!Consume(',')) return Status::ParseError("expected ',' in array");
    }
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    JsonValue::Object obj;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(obj));
    for (;;) {
      SkipWhitespace();
      COMPARESETS_ASSIGN_OR_RETURN(std::string key, ParseRawString());
      SkipWhitespace();
      if (!Consume(':')) return Status::ParseError("expected ':' in object");
      SkipWhitespace();
      COMPARESETS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.emplace(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume('}')) return JsonValue(std::move(obj));
      if (!Consume(',')) return Status::ParseError("expected ',' in object");
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpValue(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.Parse();
}

Result<std::vector<JsonValue>> ParseJsonLines(const std::string& text) {
  std::vector<JsonValue> out;
  size_t start = 0;
  size_t line_no = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    size_t end = (nl == std::string::npos) ? text.size() : nl;
    ++line_no;
    std::string_view line(text.data() + start, end - start);
    line = Trim(line);
    if (!line.empty()) {
      Parser parser(line.data(), line.data() + line.size());
      auto parsed = parser.Parse();
      if (!parsed.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  parsed.status().message());
      }
      out.push_back(std::move(parsed).value());
    }
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  return out;
}

}  // namespace comparesets
