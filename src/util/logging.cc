#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace comparesets {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= g_level.load() ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace comparesets
