#include "util/scheduler.h"

#include <algorithm>
#include <utility>

namespace comparesets {
namespace {

// Identifies the scheduler (and worker slot) the current thread belongs
// to, so Submit can route worker-local fan-out to the worker's own
// deque without touching the round-robin counter.
thread_local WorkStealingScheduler* tls_scheduler = nullptr;
thread_local size_t tls_worker = 0;

}  // namespace

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kInteractive:
      return "interactive";
    case RequestPriority::kBatch:
      return "batch";
  }
  return "interactive";
}

bool ParseRequestPriority(const std::string& text, RequestPriority* out) {
  if (text == "interactive") {
    *out = RequestPriority::kInteractive;
    return true;
  }
  if (text == "batch") {
    *out = RequestPriority::kBatch;
    return true;
  }
  return false;
}

WorkStealingScheduler::WorkStealingScheduler(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  states_.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    states_.push_back(std::make_unique<WorkerState>());
  }
  workers_.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

WorkStealingScheduler::~WorkStealingScheduler() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkStealingScheduler::Submit(std::function<void()> task,
                                   RequestPriority priority) {
  size_t target;
  if (tls_scheduler == this) {
    // Worker-local fan-out stays on the submitting worker's deque: its
    // siblings steal-half the surplus if it cannot keep up.
    target = tls_worker;
  } else {
    target = next_deque_.fetch_add(1, std::memory_order_relaxed) %
             states_.size();
  }
  {
    std::lock_guard<std::mutex> lock(states_[target]->mutex);
    states_[target]->queues[static_cast<size_t>(priority)].push_back(
        std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Empty critical section orders the pending_ increment against a
  // worker evaluating the sleep predicate, so the notify cannot be lost.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  wake_.notify_one();
}

bool WorkStealingScheduler::PopLocal(size_t id, std::function<void()>* task) {
  WorkerState& state = *states_[id];
  std::lock_guard<std::mutex> lock(state.mutex);
  for (size_t cls = 0; cls < kNumPriorityClasses; ++cls) {
    if (!state.queues[cls].empty()) {
      *task = std::move(state.queues[cls].front());
      state.queues[cls].pop_front();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool WorkStealingScheduler::Steal(size_t id, std::function<void()>* task) {
  size_t n = states_.size();
  // All interactive deques before any batch deque: a batch task is
  // stolen only when no interactive task is queued anywhere.
  for (size_t cls = 0; cls < kNumPriorityClasses; ++cls) {
    for (size_t step = 1; step < n; ++step) {
      size_t victim = (id + step) % n;
      std::deque<std::function<void()>> stolen;
      {
        std::lock_guard<std::mutex> lock(states_[victim]->mutex);
        auto& queue = states_[victim]->queues[cls];
        if (queue.empty()) continue;
        size_t take = (queue.size() + 1) / 2;  // Steal-half, at least one.
        // Take from the victim's back, preserving relative order.
        stolen.insert(stolen.end(),
                      std::make_move_iterator(queue.end() - take),
                      std::make_move_iterator(queue.end()));
        queue.erase(queue.end() - take, queue.end());
      }
      steals_.fetch_add(1, std::memory_order_relaxed);
      // Run the oldest stolen task; park the rest on our own deque.
      *task = std::move(stolen.front());
      stolen.pop_front();
      pending_.fetch_sub(1, std::memory_order_release);
      if (!stolen.empty()) {
        std::lock_guard<std::mutex> lock(states_[id]->mutex);
        auto& own = states_[id]->queues[cls];
        for (auto& t : stolen) own.push_back(std::move(t));
      }
      return true;
    }
  }
  return false;
}

void WorkStealingScheduler::WorkerLoop(size_t id) {
  tls_scheduler = this;
  tls_worker = id;
  for (;;) {
    std::function<void()> task;
    if (PopLocal(id, &task) || Steal(id, &task)) {
      task();
      task = nullptr;  // Release captures before the next wait.
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    // Exit only once the drain is complete: tasks submitted by still-
    // running tasks keep pending_ above zero until a worker runs them.
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace comparesets
