// Minimal RFC-4180-flavoured CSV reader/writer.
//
// Used to export benchmark tables (one CSV per paper table/figure) and to
// load external datasets. Handles quoted fields, embedded separators,
// doubled quotes, and embedded newlines.

#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace comparesets {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parses a whole document. Rows may have differing arity (callers
/// validate). `sep` is usually ',' or '\t'.
Result<std::vector<CsvRow>> ParseCsv(const std::string& content,
                                     char sep = ',');

/// Serializes rows, quoting fields that need it.
std::string WriteCsv(const std::vector<CsvRow>& rows, char sep = ',');

/// Reads and parses a CSV file.
Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path,
                                        char sep = ',');

/// Writes rows to a file, creating/truncating it.
Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char sep = ',');

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, creating/truncating it.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace comparesets
