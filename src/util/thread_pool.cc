#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace comparesets {

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body,
                             size_t max_lanes, RequestPriority priority) {
  if (n == 0) return;
  if (n == 1 || max_lanes == 1) {
    // A single lane runs inline, in index order, with no queue traffic.
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared between this call's helper tasks; shared_ptr so stragglers
  // scheduled after ParallelFor returned (all indices claimed) stay safe.
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n;
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;

  auto drain = [state, &body] {
    for (;;) {
      size_t i = state->next.fetch_add(1);
      if (i >= state->n) return;
      body(i);
      if (state->done.fetch_add(1) + 1 == state->n) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->all_done.notify_all();
      }
    }
  };

  // The caller thread participates, so at most workers+1 lanes are
  // useful; helpers that find no index left exit immediately. Helpers
  // capture `body` by reference — safe because a helper only touches it
  // after claiming an index, and all indices are claimed before this
  // call returns (we wait on done == n below).
  size_t helpers = std::min(num_threads(), n - 1);
  if (max_lanes > 0) helpers = std::min(helpers, max_lanes - 1);
  for (size_t t = 0; t < helpers; ++t) Submit(drain, priority);
  drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock,
                       [&] { return state->done.load() == state->n; });
}

size_t ThreadPool::ResolveThreads(size_t requested, size_t max_useful) {
  if (requested == 0) {
    requested = std::max(1u, std::thread::hardware_concurrency());
  }
  if (max_useful > 0) requested = std::min(requested, max_useful);
  return std::max<size_t>(1, requested);
}

}  // namespace comparesets
