// Small string helpers shared across modules (no locale dependence).

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace comparesets {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any run of ASCII whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with the given number of decimals ("%.2f" style).
std::string FormatDouble(double value, int decimals);

/// Formats an integer with thousands separators ("12,345").
std::string FormatWithCommas(int64_t value);

}  // namespace comparesets
