#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace comparesets {

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform: two uniforms -> two independent normals.
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Gamma(double shape) {
  COMPARESETS_CHECK(shape > 0.0) << "Gamma shape must be positive";
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia-Tsang note).
    double u = 0.0;
    do {
      u = UniformDouble();
    } while (u <= 1e-300);
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  COMPARESETS_CHECK(!weights.empty()) << "Categorical needs weights";
  double total = 0.0;
  for (double w : weights) {
    COMPARESETS_CHECK(w >= 0.0) << "Categorical weight must be non-negative";
    total += w;
  }
  COMPARESETS_CHECK(total > 0.0) << "Categorical weights sum to zero";
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // Floating-point edge: return last bucket.
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  COMPARESETS_CHECK(!alpha.empty()) << "Dirichlet needs parameters";
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = Gamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    std::fill(out.begin(), out.end(), 1.0 / out.size());
    return out;
  }
  for (double& v : out) v /= total;
  return out;
}

int Rng::Poisson(double lambda) {
  COMPARESETS_CHECK(lambda >= 0.0) << "Poisson lambda must be non-negative";
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplication method.
    double limit = std::exp(-lambda);
    double prod = UniformDouble();
    int count = 0;
    while (prod > limit) {
      ++count;
      prod *= UniformDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction for large lambda.
  double value = Normal(lambda, std::sqrt(lambda));
  return std::max(0, static_cast<int>(std::lround(value)));
}

int Rng::Geometric(double p) {
  COMPARESETS_CHECK(p > 0.0 && p <= 1.0) << "Geometric p must be in (0, 1]";
  if (p == 1.0) return 0;
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return static_cast<int>(std::floor(std::log(u) / std::log1p(-p)));
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t population,
                                                  size_t count) {
  COMPARESETS_CHECK(count <= population)
      << "cannot sample " << count << " from " << population;
  // Floyd's algorithm: O(count) expected time, O(count) space.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(count);
  for (size_t j = population - count; j < population; ++j) {
    size_t t = UniformU32(static_cast<uint32_t>(j + 1));
    if (chosen.count(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace comparesets
