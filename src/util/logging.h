// Minimal leveled logging with CHECK macros.
//
//   LOG_INFO("built graph with " << n << " nodes");
//   COMPARESETS_CHECK(k >= 1) << "k must be positive, got " << k;
//
// Log output goes to stderr. The global level is settable at runtime
// (benchmarks run at kWarning to keep table output clean).

#pragma once

#include <sstream>
#include <string>

namespace comparesets {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level that is emitted; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction. Fatal messages
/// abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace comparesets

#define COMPARESETS_LOG(level)                                          \
  ::comparesets::internal::LogMessage(::comparesets::LogLevel::level,   \
                                      __FILE__, __LINE__)

#define LOG_DEBUG(msg) COMPARESETS_LOG(kDebug) << msg
#define LOG_INFO(msg) COMPARESETS_LOG(kInfo) << msg
#define LOG_WARNING(msg) COMPARESETS_LOG(kWarning) << msg
#define LOG_ERROR(msg) COMPARESETS_LOG(kError) << msg

// CHECK: always active (also in release builds); fatal on failure.
#define COMPARESETS_CHECK(cond)                               \
  if (!(cond))                                                \
  COMPARESETS_LOG(kFatal) << "Check failed: " #cond " "

#define COMPARESETS_DCHECK(cond) COMPARESETS_CHECK(cond)
