// Intra-request parallelism seam.
//
// A ParallelContext names the thread pool a single request may fan its
// independent per-product work onto (the per-item Integer-Regression
// solves, the CompaReSetS+ within-round refits, the O(n²) similarity-
// graph edges). It is a *runtime control*, like a deadline: it changes
// how fast an answer is computed, never which answer — every fan-out
// site merges its results in index order, so a parallel run is
// bit-identical to `max_threads = 1` (asserted by
// tests/core_parallel_determinism_test.cc).
//
// Pool ownership and the nesting rule (docs/execution-model.md): the
// SelectionEngine owns the only pool and decides who gets it. A batch
// (`SelectBatch`) fans requests out across the pool, so the requests
// inside it run with an empty context (outer parallelism wins — the
// pool is already saturated); a single `Select` gets the whole pool.
// Selectors never create threads of their own.

#pragma once

#include <cstddef>
#include <functional>

#include "util/scheduler.h"

namespace comparesets {

class ThreadPool;
struct ExecControl;

/// Borrowed view of the pool a request may use for intra-request
/// fan-out. Copyable; the pool must outlive every solve it is passed
/// to (the engine's pool outlives all requests by construction).
struct ParallelContext {
  /// Pool to fan out on; nullptr = run serially on the calling thread.
  ThreadPool* pool = nullptr;
  /// Cap on concurrent lanes, counting the calling thread (which always
  /// participates). 0 = no cap beyond the pool size; 1 = never fan out.
  size_t max_threads = 0;
  /// Scheduling class for helper tasks this context fans out. A batch
  /// request's helpers yield to queued interactive work; like the pool
  /// pointer, this is a runtime control and never changes the result.
  RequestPriority priority = RequestPriority::kInteractive;

  /// Concurrent lanes a fan-out over `n` tasks would use: at most the
  /// pool's workers + the calling thread, capped by max_threads and n.
  /// 1 when the context is empty (pool == nullptr).
  size_t Lanes(size_t n) const;
};

/// Runs body(i) for every i in [0, n) and returns the number of lanes
/// used. With Lanes(n) == 1 the loop runs serially, in index order, on
/// the calling thread; otherwise it is distributed over the context's
/// pool (caller participating, indices claimed dynamically, completion
/// order unspecified). The body must not throw; it communicates through
/// per-index slots it writes — callers merge those slots in index order
/// so the observable result never depends on scheduling.
///
/// When the loop actually fans out (lanes > 1) and `control` carries the
/// intra-parallel counters, one fan-out and n tasks are tallied into
/// them (the `solver.intra_parallel_*` metrics and the request trace).
size_t RunParallel(const ParallelContext& context, size_t n,
                   const std::function<void(size_t)>& body,
                   const ExecControl* control = nullptr);

}  // namespace comparesets
