// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding every WAL record frame (service/ingest/wal.h). Table-driven,
// no hardware dependency, deterministic across platforms, so a log
// written on one machine replays with identical verdicts on any other.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace comparesets {

/// CRC-32 of `data`, optionally continuing from a previous value:
/// Crc32(b, Crc32(a)) == Crc32(ab). The empty string maps to 0.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace comparesets
