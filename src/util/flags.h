// Tiny command-line flag parser for the benchmark and example binaries.
//
//   FlagParser flags;
//   flags.AddInt("scale", 100, "number of problem instances");
//   flags.AddString("dataset", "cellphone", "category to generate");
//   COMPARESETS_CHECK(flags.Parse(argc, argv).ok());
//   int scale = flags.GetInt("scale");
//
// Accepted syntax: --name=value, --name value, and bare --name for bools.

#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace comparesets {

class FlagParser {
 public:
  void AddInt(const std::string& name, int default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses argv; unknown flags are errors. `--help` prints usage and
  /// reports it via `help_requested()`.
  Status Parse(int argc, char** argv);

  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool help_requested() const { return help_requested_; }

  /// Usage text listing all flags with defaults.
  std::string Usage(const std::string& program) const;

 private:
  struct Flag {
    std::variant<int, double, std::string, bool> value;
    std::string help;
  };

  Status SetFromString(const std::string& name, const std::string& text);

  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace comparesets
