#include "stats/ttest.h"

#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "util/logging.h"

namespace comparesets {

namespace {

/// Continued-fraction evaluation for the incomplete beta function
/// (Lentz's algorithm, as in Numerical Recipes betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 200;
  constexpr double kEpsilon = 3e-14;
  constexpr double kTiny = 1e-300;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double IncompleteBeta(double a, double b, double x) {
  COMPARESETS_CHECK(a > 0.0 && b > 0.0) << "beta parameters must be positive";
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double log_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                     a * std::log(x) + b * std::log1p(-x);
  double front = std::exp(log_front);
  // Symmetry selection for continued-fraction convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoSidedPValue(double t, double df) {
  COMPARESETS_CHECK(df > 0.0) << "df must be positive";
  if (!std::isfinite(t)) return 0.0;
  double x = df / (df + t * t);
  return IncompleteBeta(df / 2.0, 0.5, x);
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  COMPARESETS_CHECK(a.size() == b.size()) << "paired series size mismatch";
  COMPARESETS_CHECK(a.size() >= 2) << "need at least 2 pairs";
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];

  TTestResult out;
  out.mean_difference = Mean(diff);
  out.degrees_of_freedom = static_cast<double>(a.size() - 1);
  double se = StandardError(diff);
  if (se == 0.0) {
    out.t_statistic =
        out.mean_difference == 0.0
            ? 0.0
            : std::copysign(std::numeric_limits<double>::infinity(),
                            out.mean_difference);
    out.p_value = out.mean_difference == 0.0 ? 1.0 : 0.0;
    return out;
  }
  out.t_statistic = out.mean_difference / se;
  out.p_value = StudentTTwoSidedPValue(out.t_statistic,
                                       out.degrees_of_freedom);
  return out;
}

}  // namespace comparesets
