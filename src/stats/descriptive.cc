#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace comparesets {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double SampleVariance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double total = 0.0;
  for (double v : values) total += (v - mean) * (v - mean);
  return total / static_cast<double>(values.size() - 1);
}

double SampleStdDev(const std::vector<double>& values) {
  return std::sqrt(SampleVariance(values));
}

double StandardError(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  return SampleStdDev(values) / std::sqrt(static_cast<double>(values.size()));
}

double Quantile(std::vector<double> values, double p) {
  COMPARESETS_CHECK(!values.empty()) << "quantile of empty series";
  COMPARESETS_CHECK(p >= 0.0 && p <= 1.0) << "p must be in [0, 1]";
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double position = p * static_cast<double>(values.size() - 1);
  size_t lower = static_cast<size_t>(std::floor(position));
  size_t upper = std::min(lower + 1, values.size() - 1);
  double fraction = position - static_cast<double>(lower);
  return values[lower] * (1.0 - fraction) + values[upper] * fraction;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  COMPARESETS_CHECK(x.size() == y.size()) << "series size mismatch";
  if (x.size() < 2) return 0.0;
  double mx = Mean(x);
  double my = Mean(y);
  double cov = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - mx) * (y[i] - my);
    vx += (x[i] - mx) * (x[i] - mx);
    vy += (y[i] - my) * (y[i] - my);
  }
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace comparesets
