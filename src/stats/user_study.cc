#include "stats/user_study.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"
#include "util/rng.h"

namespace comparesets {

namespace {

/// Distinct aspects mentioned across an item's selected reviews.
std::set<AspectId> SelectedAspects(const InstanceVectors& vectors,
                                   size_t item, const Selection& selection) {
  std::set<AspectId> out;
  const Product& product = *vectors.instance->items[item];
  for (size_t r : selection) {
    for (AspectId aspect : product.reviews[r].MentionedAspects()) {
      out.insert(aspect);
    }
  }
  return out;
}

double Jaccard(const std::set<AspectId>& a, const std::set<AspectId>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t intersection = 0;
  for (AspectId x : a) intersection += b.count(x);
  size_t unions = a.size() + b.size() - intersection;
  return unions == 0 ? 0.0 : static_cast<double>(intersection) / unions;
}

}  // namespace

ExampleProxies ComputeExampleProxies(const InstanceVectors& vectors,
                                     const std::vector<Selection>& selections,
                                     const std::vector<size_t>& items) {
  COMPARESETS_CHECK(!items.empty()) << "empty core list";
  ExampleProxies out;

  std::vector<std::set<AspectId>> aspects;
  aspects.reserve(items.size());
  for (size_t item : items) {
    aspects.push_back(SelectedAspects(vectors, item, selections[item]));
  }

  // Q1 proxy: mean pairwise aspect-set Jaccard.
  double jaccard_sum = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < items.size(); ++a) {
    for (size_t b = a + 1; b < items.size(); ++b) {
      jaccard_sum += Jaccard(aspects[a], aspects[b]);
      ++pairs;
    }
  }
  out.similarity = pairs > 0 ? jaccard_sum / pairs : 0.0;

  // Q2 proxy: how much of each item's opinion distribution survives.
  double cosine_sum = 0.0;
  for (size_t item : items) {
    cosine_sum += CosineSimilarity(vectors.tau[item],
                                   vectors.OpinionOf(item, selections[item]));
  }
  out.informativeness = cosine_sum / static_cast<double>(items.size());

  // Q3 proxy: fraction of the target's selected aspects that every other
  // item's selection also covers (directly comparable content).
  if (items.size() >= 2 && !aspects[0].empty()) {
    size_t common = 0;
    for (AspectId aspect : aspects[0]) {
      bool everywhere = true;
      for (size_t t = 1; t < items.size(); ++t) {
        if (!aspects[t].count(aspect)) {
          everywhere = false;
          break;
        }
      }
      if (everywhere) ++common;
    }
    out.comparability = static_cast<double>(common) / aspects[0].size();
  }
  return out;
}

Result<UserStudyResult> SimulateUserStudy(
    const std::vector<ExampleProxies>& examples,
    const UserStudyConfig& config) {
  if (examples.empty()) return Status::InvalidArgument("no examples");
  if (config.annotators_per_example > config.num_annotators) {
    return Status::InvalidArgument("annotators_per_example > num_annotators");
  }

  Rng rng(config.seed, examples.size());

  // Per-annotator leniency bias, fixed for the whole study.
  std::vector<double> bias(config.num_annotators);
  for (double& b : bias) b = rng.Normal(0.0, config.bias_stddev);

  // Units are (example, question) pairs; ratings[annotator][unit].
  size_t num_units = examples.size() * 3;
  RatingsMatrix ratings(config.num_annotators,
                        std::vector<std::optional<double>>(num_units));

  double q_sum[3] = {0.0, 0.0, 0.0};
  size_t q_count[3] = {0, 0, 0};

  for (size_t e = 0; e < examples.size(); ++e) {
    const ExampleProxies& proxies = examples[e];
    // Incoherent selections are harder to judge consistently.
    double sigma = config.noise_stddev *
                   (1.0 + config.incoherence_gain * (1.0 - proxies.similarity));
    std::vector<size_t> raters = rng.SampleWithoutReplacement(
        config.num_annotators, config.annotators_per_example);

    const double latent[3] = {proxies.similarity, proxies.informativeness,
                              proxies.comparability};
    for (size_t q = 0; q < 3; ++q) {
      // Map the [0, 1] proxy to the Likert anchor range ~[2, 5].
      double anchor = 2.0 + 3.0 * latent[q];
      for (size_t rater : raters) {
        double raw = anchor + bias[rater] + rng.Normal(0.0, sigma);
        double likert = std::clamp(std::round(raw), 1.0, 5.0);
        ratings[rater][e * 3 + q] = likert;
        q_sum[q] += likert;
        ++q_count[q];
      }
    }
  }

  UserStudyResult out;
  out.q1_mean = q_sum[0] / static_cast<double>(q_count[0]);
  out.q2_mean = q_sum[1] / static_cast<double>(q_count[1]);
  out.q3_mean = q_sum[2] / static_cast<double>(q_count[2]);
  COMPARESETS_ASSIGN_OR_RETURN(
      out.alpha, KrippendorffAlpha(ratings, AlphaMetric::kOrdinal));
  return out;
}

}  // namespace comparesets
