// Paired two-sided t-test — produces the significance stars of Table 3
// ("* denotes statistically significant improvements over the second
// best approach, p < 0.05").

#pragma once

#include <vector>

namespace comparesets {

struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  ///< Two-sided.
  double mean_difference = 0.0;

  bool Significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// Paired t-test on matched series a, b (H0: mean(a−b) = 0). Series must
/// have equal length >= 2; degenerate inputs (zero variance of the
/// differences) report p = 1 when the mean difference is 0, else p = 0.
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Regularized incomplete beta function I_x(a, b); exposed for testing.
double IncompleteBeta(double a, double b, double x);

/// Two-sided p-value for Student's t with the given df.
double StudentTTwoSidedPValue(double t, double df);

}  // namespace comparesets
