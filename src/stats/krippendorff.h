// Krippendorff's alpha-reliability (Krippendorff 2011), the
// inter-annotator agreement coefficient of the paper's user study
// (Table 7). Supports nominal, ordinal, and interval difference metrics
// and tolerates missing ratings (the reason α is used over κ).

#pragma once

#include <optional>
#include <vector>

#include "util/status.h"

namespace comparesets {

enum class AlphaMetric { kNominal, kOrdinal, kInterval };

/// Ratings matrix: ratings[annotator][unit]; std::nullopt = missing.
using RatingsMatrix = std::vector<std::vector<std::optional<double>>>;

/// Computes α = 1 − D_observed / D_expected. Requires at least one unit
/// rated by two or more annotators; α ∈ [−1, 1] (can be slightly below 0
/// for systematic disagreement). D_expected = 0 (all values identical)
/// yields α = 1 by convention.
Result<double> KrippendorffAlpha(const RatingsMatrix& ratings,
                                 AlphaMetric metric = AlphaMetric::kInterval);

}  // namespace comparesets
