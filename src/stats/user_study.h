// Simulated user study (paper §4.5, Table 7).
//
// The paper ran 15 human participants over 9 examples (3 per category),
// 5 raters per example, answering three five-point Likert questions:
//   Q1 — are the reviews similar across products (same aspects)?
//   Q2 — do the reviews inform you about the products?
//   Q3 — do the reviews help comparison across products?
//
// We cannot recruit humans, so annotators are simulated: each example's
// *measurable* qualities (aspect overlap, opinion coverage, common-aspect
// comparability — all computable from the selections) act as the latent
// quality a rater perceives, and each rater adds an individual bias and
// noise. Noise grows when the selections are incoherent (inconsistent
// artifacts are genuinely harder to judge consistently), which is what
// drives the Krippendorff-α ordering the paper observed. Absolute values
// are calibrated, not measured — see DESIGN.md §2 and EXPERIMENTS.md.

#pragma once

#include <cstdint>
#include <vector>

#include "data/corpus.h"
#include "opinion/vectors.h"
#include "stats/krippendorff.h"
#include "util/status.h"

namespace comparesets {

/// Measurable per-example qualities in [0, 1], the latent rater signal.
struct ExampleProxies {
  double similarity = 0.0;       ///< Q1: mean pairwise aspect Jaccard.
  double informativeness = 0.0;  ///< Q2: mean cos(τ_i, π(S_i)).
  double comparability = 0.0;    ///< Q3: common-aspect coverage.
};

/// Computes the proxies for one example (instance restricted to the core
/// list `items`, with the given selections).
ExampleProxies ComputeExampleProxies(const InstanceVectors& vectors,
                                     const std::vector<Selection>& selections,
                                     const std::vector<size_t>& items);

struct UserStudyConfig {
  size_t num_annotators = 15;
  size_t annotators_per_example = 5;
  double bias_stddev = 0.35;   ///< Per-annotator leniency.
  double noise_stddev = 0.30;  ///< Base per-rating noise.
  /// Extra noise multiplier applied as coherence (Q1 proxy) drops:
  /// σ_eff = noise_stddev · (1 + incoherence_gain · (1 − similarity)).
  /// Incoherent selections are genuinely harder to judge consistently;
  /// this is the mechanism behind the paper's Krippendorff-α ordering.
  double incoherence_gain = 5.0;
  uint64_t seed = 2025;
};

struct UserStudyResult {
  double q1_mean = 0.0;
  double q2_mean = 0.0;
  double q3_mean = 0.0;
  double alpha = 0.0;  ///< Krippendorff's α (ordinal) over all ratings.
};

/// Simulates the study for one algorithm's examples.
Result<UserStudyResult> SimulateUserStudy(
    const std::vector<ExampleProxies>& examples,
    const UserStudyConfig& config = {});

}  // namespace comparesets
