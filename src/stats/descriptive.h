// Descriptive statistics used across benches and tests.

#pragma once

#include <cstddef>
#include <vector>

namespace comparesets {

double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n − 1 denominator); 0 for n < 2.
double SampleVariance(const std::vector<double>& values);

double SampleStdDev(const std::vector<double>& values);

/// Standard error of the mean; 0 for n < 2.
double StandardError(const std::vector<double>& values);

/// p-quantile (linear interpolation between order statistics), p ∈ [0,1].
double Quantile(std::vector<double> values, double p);

/// Pearson correlation; 0 when either series is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace comparesets
