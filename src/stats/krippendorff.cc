#include "stats/krippendorff.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace comparesets {

Result<double> KrippendorffAlpha(const RatingsMatrix& ratings,
                                 AlphaMetric metric) {
  if (ratings.empty()) return Status::InvalidArgument("no annotators");
  size_t num_units = ratings[0].size();
  for (const auto& row : ratings) {
    if (row.size() != num_units) {
      return Status::InvalidArgument("ragged ratings matrix");
    }
  }
  if (num_units == 0) return Status::InvalidArgument("no units");

  // Distinct values, sorted (keys of the coincidence matrix).
  std::map<double, size_t> value_index;
  for (const auto& row : ratings) {
    for (const auto& cell : row) {
      if (cell.has_value()) value_index.emplace(*cell, 0);
    }
  }
  if (value_index.empty()) return Status::InvalidArgument("no ratings");
  std::vector<double> values;
  values.reserve(value_index.size());
  for (auto& [value, index] : value_index) {
    index = values.size();
    values.push_back(value);
  }
  size_t v = values.size();

  // Coincidence matrix from all pairable values within units.
  std::vector<double> coincidence(v * v, 0.0);
  bool any_pairable = false;
  for (size_t unit = 0; unit < num_units; ++unit) {
    std::vector<size_t> unit_values;
    for (const auto& row : ratings) {
      if (row[unit].has_value()) {
        unit_values.push_back(value_index.at(*row[unit]));
      }
    }
    size_t m = unit_values.size();
    if (m < 2) continue;  // Unpairable unit: excluded by definition.
    any_pairable = true;
    double weight = 1.0 / static_cast<double>(m - 1);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        if (i == j) continue;
        coincidence[unit_values[i] * v + unit_values[j]] += weight;
      }
    }
  }
  if (!any_pairable) {
    return Status::InvalidArgument("no unit has two or more ratings");
  }

  std::vector<double> marginals(v, 0.0);
  double n_total = 0.0;
  for (size_t c = 0; c < v; ++c) {
    for (size_t k = 0; k < v; ++k) marginals[c] += coincidence[c * v + k];
    n_total += marginals[c];
  }

  // Squared difference function per metric.
  auto delta2 = [&](size_t c, size_t k) -> double {
    if (c == k) return 0.0;
    switch (metric) {
      case AlphaMetric::kNominal:
        return 1.0;
      case AlphaMetric::kInterval: {
        double d = values[c] - values[k];
        return d * d;
      }
      case AlphaMetric::kOrdinal: {
        // (Σ_{g=c..k} n_g − (n_c + n_k)/2)² over the value ordering.
        size_t lo = std::min(c, k);
        size_t hi = std::max(c, k);
        double span = 0.0;
        for (size_t g = lo; g <= hi; ++g) span += marginals[g];
        span -= (marginals[lo] + marginals[hi]) / 2.0;
        return span * span;
      }
    }
    return 0.0;
  };

  double observed = 0.0;
  for (size_t c = 0; c < v; ++c) {
    for (size_t k = 0; k < v; ++k) {
      observed += coincidence[c * v + k] * delta2(c, k);
    }
  }
  double expected = 0.0;
  for (size_t c = 0; c < v; ++c) {
    for (size_t k = 0; k < v; ++k) {
      if (c != k) expected += marginals[c] * marginals[k] * delta2(c, k);
    }
  }
  if (n_total <= 1.0 || expected == 0.0) {
    // All pairable values identical: perfect agreement by convention.
    return 1.0;
  }
  expected /= (n_total - 1.0);
  return 1.0 - observed / expected;
}

}  // namespace comparesets
