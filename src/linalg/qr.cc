#include "linalg/qr.h"

#include <cmath>

namespace comparesets {

Result<QrDecomposition> QrDecomposition::Compute(const Matrix& a) {
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument("QR requires rows >= cols, got " +
                                   std::to_string(a.rows()) + "x" +
                                   std::to_string(a.cols()));
  }
  if (a.cols() == 0) {
    return Status::InvalidArgument("QR of empty matrix");
  }
  QrDecomposition out;
  out.qr_ = a;
  out.beta_ = Vector(a.cols());

  Matrix& qr = out.qr_;
  size_t rows = qr.rows();
  size_t cols = qr.cols();
  double max_norm = 0.0;

  for (size_t k = 0; k < cols; ++k) {
    // Householder reflector for column k, rows k..rows-1.
    double norm = 0.0;
    for (size_t i = k; i < rows; ++i) norm += qr(i, k) * qr(i, k);
    norm = std::sqrt(norm);
    max_norm = std::max(max_norm, norm);
    if (norm == 0.0) {
      out.beta_[k] = 0.0;
      continue;
    }
    double alpha = (qr(k, k) > 0) ? -norm : norm;
    double v0 = qr(k, k) - alpha;
    // Normalize so v[k] = 1; beta = -v0/alpha gives H = I - beta v v^T.
    for (size_t i = k + 1; i < rows; ++i) qr(i, k) /= v0;
    out.beta_[k] = -v0 / alpha;
    qr(k, k) = alpha;

    // Apply reflector to remaining columns.
    for (size_t j = k + 1; j < cols; ++j) {
      double dot = qr(k, j);
      for (size_t i = k + 1; i < rows; ++i) dot += qr(i, k) * qr(i, j);
      dot *= out.beta_[k];
      qr(k, j) -= dot;
      for (size_t i = k + 1; i < rows; ++i) qr(i, j) -= dot * qr(i, k);
    }
  }
  out.rank_tol_ =
      max_norm * 1e-12 * static_cast<double>(std::max(rows, cols));
  return out;
}

Result<Vector> QrDecomposition::Solve(const Vector& b) const {
  if (b.size() != qr_.rows()) {
    return Status::InvalidArgument("QR solve: rhs size mismatch");
  }
  size_t rows = qr_.rows();
  size_t cols = qr_.cols();

  // y = Q^T b, applying the stored reflectors in order.
  Vector y = b;
  for (size_t k = 0; k < cols; ++k) {
    if (beta_[k] == 0.0) continue;
    double dot = y[k];
    for (size_t i = k + 1; i < rows; ++i) dot += qr_(i, k) * y[i];
    dot *= beta_[k];
    y[k] -= dot;
    for (size_t i = k + 1; i < rows; ++i) y[i] -= dot * qr_(i, k);
  }

  // Back-substitute R x = y[0..cols). Zero out free variables when R has
  // (numerically) zero diagonal entries.
  Vector x(cols);
  for (size_t kk = cols; kk > 0; --kk) {
    size_t k = kk - 1;
    double diag = qr_(k, k);
    if (std::fabs(diag) <= rank_tol_) {
      x[k] = 0.0;
      continue;
    }
    double v = y[k];
    for (size_t j = k + 1; j < cols; ++j) v -= qr_(k, j) * x[j];
    x[k] = v / diag;
  }
  return x;
}

Result<Vector> LeastSquares(const Matrix& a, const Vector& b) {
  COMPARESETS_ASSIGN_OR_RETURN(QrDecomposition qr, QrDecomposition::Compute(a));
  return qr.Solve(b);
}

}  // namespace comparesets
