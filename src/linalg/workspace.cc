#include "linalg/workspace.h"

namespace comparesets {

SolverWorkspace& SolverWorkspace::ThreadLocal() {
  thread_local SolverWorkspace workspace;
  return workspace;
}

}  // namespace comparesets
