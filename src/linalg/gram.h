// Precomputed normal-equation view of a design system.
//
// Every quantity the NOMP/NNLS iterations need can be expressed through
// G = VᵀV, Vᵀy and ‖y‖²: the correlation of column j with the residual
// is (Vᵀy)_j − (G x)_j, the dual w = Vᵀ(y − Vx) likewise, and
// ‖Vx − y‖² = ‖y‖² − 2 xᵀVᵀy + xᵀGx. Building G once per DesignSystem
// (O(q · nnz)) replaces the per-iteration O(rows · k) residual algebra
// and the per-refit O(rows · k²) QR with O(q·k) scoring and O(k²)
// Cholesky updates.
//
// A GramSystem is immutable after BuildGramSystem returns: solvers only
// read it, so one instance is safely shared by every lane of a parallel
// per-product sweep (docs/execution-model.md) and by every cached
// DesignSystem handed out by service/vector_cache.h. All mutable solver
// state lives in SolverWorkspace (linalg/workspace.h) instead.

#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector.h"

namespace comparesets {

struct SolverWorkspace;
struct GramSystem;

/// One (matrix, target) pair of a batched Gram build. Pointers must
/// outlive the BuildBatch call; repeating the same `v` pointer marks
/// problems that share a design matrix.
struct GramBuildItem {
  const SparseMatrix* v = nullptr;
  const Vector* target = nullptr;
};

struct GramSystem {
  /// G = VᵀV (q×q, symmetric, dense — q is the deduplicated group count).
  Matrix gram;
  /// Vᵀy.
  Vector vty;
  /// ‖y‖₂².
  double target_norm2 = 0.0;
  /// √G_jj per column — NOMP's correlation normalizers.
  std::vector<double> col_norms;

  size_t cols() const { return gram.cols(); }

  /// Approximate heap footprint (entries only, for cache accounting).
  size_t ApproxMemoryBytes() const {
    return (gram.rows() * gram.cols() + vty.size() + col_norms.size()) *
           sizeof(double);
  }

  /// BuildGramSystem as a named constructor.
  static GramSystem Build(const SparseMatrix& v, const Vector& target,
                          SolverWorkspace* workspace = nullptr);
  /// BuildGramSystemBatch as a named constructor.
  static std::vector<GramSystem> BuildBatch(
      const std::vector<GramBuildItem>& items,
      SolverWorkspace* workspace = nullptr);
};

/// Builds G, Vᵀy, ‖y‖² and the column norms in one O(q · nnz) pass of
/// kernel-dispatch gather/scatter ops. `target.size()` must equal
/// `v.rows()`. `workspace` (nullptr = thread-local) supplies the dense
/// scatter buffer, so back-to-back builds allocate nothing.
GramSystem BuildGramSystem(const SparseMatrix& v, const Vector& target,
                           SolverWorkspace* workspace = nullptr);

/// Builds every item's GramSystem in one pass over a shared workspace.
/// Items repeating an earlier item's `v` pointer reuse its G and column
/// norms outright and get their Vᵀy in a single sparse_gemv_t kernel
/// pass — O(nnz) per extra target instead of O(q · nnz). Results are
/// bit-identical to calling BuildGramSystem per item (same kernels,
/// same order, per column).
std::vector<GramSystem> BuildGramSystemBatch(
    const std::vector<GramBuildItem>& items,
    SolverWorkspace* workspace = nullptr);

}  // namespace comparesets
