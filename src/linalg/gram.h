// Precomputed normal-equation view of a design system.
//
// Every quantity the NOMP/NNLS iterations need can be expressed through
// G = VᵀV, Vᵀy and ‖y‖²: the correlation of column j with the residual
// is (Vᵀy)_j − (G x)_j, the dual w = Vᵀ(y − Vx) likewise, and
// ‖Vx − y‖² = ‖y‖² − 2 xᵀVᵀy + xᵀGx. Building G once per DesignSystem
// (O(q · nnz)) replaces the per-iteration O(rows · k) residual algebra
// and the per-refit O(rows · k²) QR with O(q·k) scoring and O(k²)
// Cholesky updates.
//
// A GramSystem is immutable after BuildGramSystem returns: solvers only
// read it, so one instance is safely shared by every lane of a parallel
// per-product sweep (docs/execution-model.md) and by every cached
// DesignSystem handed out by service/vector_cache.h. All mutable solver
// state lives in SolverWorkspace (linalg/workspace.h) instead.

#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector.h"

namespace comparesets {

struct GramSystem {
  /// G = VᵀV (q×q, symmetric, dense — q is the deduplicated group count).
  Matrix gram;
  /// Vᵀy.
  Vector vty;
  /// ‖y‖₂².
  double target_norm2 = 0.0;
  /// √G_jj per column — NOMP's correlation normalizers.
  std::vector<double> col_norms;

  size_t cols() const { return gram.cols(); }

  /// Approximate heap footprint (entries only, for cache accounting).
  size_t ApproxMemoryBytes() const {
    return (gram.rows() * gram.cols() + vty.size() + col_norms.size()) *
           sizeof(double);
  }
};

/// Builds G, Vᵀy, ‖y‖² and the column norms in one O(q · nnz) pass.
/// `target.size()` must equal `v.rows()`.
GramSystem BuildGramSystem(const SparseMatrix& v, const Vector& target);

}  // namespace comparesets
