#include "linalg/gram.h"

#include <cmath>
#include <unordered_map>

#include "linalg/kernels/kernels.h"
#include "linalg/workspace.h"
#include "util/logging.h"

namespace comparesets {

GramSystem BuildGramSystem(const SparseMatrix& v, const Vector& target,
                           SolverWorkspace* workspace) {
  COMPARESETS_CHECK(target.size() == v.rows()) << "gram target size mismatch";
  const KernelDispatch& kernels = Kernels();
  SolverWorkspace& ws =
      workspace != nullptr ? *workspace : SolverWorkspace::ThreadLocal();
  size_t q = v.cols();
  GramSystem out;
  out.gram = Matrix(q, q);
  out.vty = Vector(q);
  out.target_norm2 = kernels.dot(target.raw(), target.raw(), target.size());
  out.col_norms.resize(q);

  // Scatter column j into a dense row-sized workspace, dot every earlier
  // column against it, then clear only the touched rows — O(q · nnz)
  // total instead of the dense O(q² · rows). The workspace buffer is
  // all-zero between builds (see workspace.h), so only growth zeroes.
  if (ws.gram_scatter.size() < v.rows()) ws.gram_scatter.resize(v.rows(), 0.0);
  double* scatter = ws.gram_scatter.data();
  ws.gram_col.resize(q);
  double* col = ws.gram_col.data();
  for (size_t j = 0; j < q; ++j) {
    size_t nnz = v.ColumnNnz(j);
    const size_t* rows = v.ColumnRows(j);
    const double* values = v.ColumnValues(j);
    kernels.scatter_set(values, rows, nnz, scatter);

    kernels.gram_scatter(v.ColPtr(), v.RowIdx(), v.Values(), j, scatter, col);
    for (size_t i = 0; i <= j; ++i) {
      out.gram(i, j) = col[i];
      out.gram(j, i) = col[i];
    }

    out.vty[j] = kernels.gather_dot(values, rows, nnz, target.raw());
    out.col_norms[j] = std::sqrt(out.gram(j, j));

    kernels.scatter_clear(rows, nnz, scatter);
  }
  return out;
}

std::vector<GramSystem> BuildGramSystemBatch(
    const std::vector<GramBuildItem>& items, SolverWorkspace* workspace) {
  const KernelDispatch& kernels = Kernels();
  SolverWorkspace& ws =
      workspace != nullptr ? *workspace : SolverWorkspace::ThreadLocal();
  std::vector<GramSystem> out;
  out.reserve(items.size());
  // First build per distinct design matrix; later repeats share its G.
  std::unordered_map<const SparseMatrix*, size_t> first_build;
  for (const GramBuildItem& item : items) {
    COMPARESETS_CHECK(item.v != nullptr && item.target != nullptr)
        << "gram batch item missing matrix or target";
    auto it = first_build.find(item.v);
    if (it == first_build.end()) {
      first_build.emplace(item.v, out.size());
      out.push_back(BuildGramSystem(*item.v, *item.target, &ws));
      continue;
    }
    const SparseMatrix& v = *item.v;
    const Vector& target = *item.target;
    COMPARESETS_CHECK(target.size() == v.rows())
        << "gram target size mismatch";
    const GramSystem& head = out[it->second];
    GramSystem g;
    g.gram = head.gram;
    g.col_norms = head.col_norms;
    g.vty = Vector(v.cols());
    // Vᵀy for the new target in one kernel pass; each column's gather
    // reduction is exactly the solo build's, so the bits match.
    kernels.sparse_gemv_t(v.ColPtr(), v.RowIdx(), v.Values(), v.cols(),
                          target.raw(), g.vty.raw());
    g.target_norm2 = kernels.dot(target.raw(), target.raw(), target.size());
    out.push_back(std::move(g));
  }
  return out;
}

GramSystem GramSystem::Build(const SparseMatrix& v, const Vector& target,
                             SolverWorkspace* workspace) {
  return BuildGramSystem(v, target, workspace);
}

std::vector<GramSystem> GramSystem::BuildBatch(
    const std::vector<GramBuildItem>& items, SolverWorkspace* workspace) {
  return BuildGramSystemBatch(items, workspace);
}

}  // namespace comparesets
