#include "linalg/gram.h"

#include <cmath>

#include "util/logging.h"

namespace comparesets {

GramSystem BuildGramSystem(const SparseMatrix& v, const Vector& target) {
  COMPARESETS_CHECK(target.size() == v.rows()) << "gram target size mismatch";
  size_t q = v.cols();
  GramSystem out;
  out.gram = Matrix(q, q);
  out.vty = Vector(q);
  out.target_norm2 = target.Dot(target);
  out.col_norms.resize(q);

  // Scatter column j into a dense row-sized workspace, dot every earlier
  // column against it, then clear only the touched rows — O(q · nnz)
  // total instead of the dense O(q² · rows).
  std::vector<double> scatter(v.rows(), 0.0);
  for (size_t j = 0; j < q; ++j) {
    size_t nnz = v.ColumnNnz(j);
    const size_t* rows = v.ColumnRows(j);
    const double* values = v.ColumnValues(j);
    for (size_t k = 0; k < nnz; ++k) scatter[rows[k]] = values[k];

    for (size_t i = 0; i <= j; ++i) {
      size_t nnz_i = v.ColumnNnz(i);
      const size_t* rows_i = v.ColumnRows(i);
      const double* values_i = v.ColumnValues(i);
      double sum = 0.0;
      for (size_t k = 0; k < nnz_i; ++k) sum += values_i[k] * scatter[rows_i[k]];
      out.gram(i, j) = sum;
      out.gram(j, i) = sum;
    }

    double vty = 0.0;
    for (size_t k = 0; k < nnz; ++k) vty += values[k] * target[rows[k]];
    out.vty[j] = vty;
    out.col_norms[j] = std::sqrt(out.gram(j, j));

    for (size_t k = 0; k < nnz; ++k) scatter[rows[k]] = 0.0;
  }
  return out;
}

}  // namespace comparesets
