#include "linalg/vector.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels/kernels.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace comparesets {

double Vector::Sum() const {
  double total = 0.0;
  for (double v : data_) total += v;
  return total;
}

double Vector::NormL1() const {
  double total = 0.0;
  for (double v : data_) total += std::fabs(v);
  return total;
}

double Vector::NormL2() const {
  return std::sqrt(Kernels().sumsq(raw(), size()));
}

double Vector::NormInf() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Vector::Max() const {
  if (data_.empty()) return 0.0;
  return *std::max_element(data_.begin(), data_.end());
}

double Vector::Dot(const Vector& other) const {
  COMPARESETS_CHECK(size() == other.size())
      << "Dot size mismatch: " << size() << " vs " << other.size();
  return Kernels().dot(raw(), other.raw(), size());
}

void Vector::Axpy(double alpha, const Vector& other) {
  COMPARESETS_CHECK(size() == other.size())
      << "Axpy size mismatch: " << size() << " vs " << other.size();
  Kernels().axpy(alpha, other.raw(), raw(), size());
}

void Vector::Scale(double alpha) { Kernels().scale(alpha, raw(), size()); }

Vector Vector::operator+(const Vector& other) const {
  Vector out = *this;
  out.Axpy(1.0, other);
  return out;
}

Vector Vector::operator-(const Vector& other) const {
  Vector out = *this;
  out.Axpy(-1.0, other);
  return out;
}

Vector Vector::operator*(double alpha) const {
  Vector out = *this;
  out.Scale(alpha);
  return out;
}

void Vector::Append(const Vector& other) {
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
}

void Vector::AppendScaled(double alpha, const Vector& other) {
  data_.reserve(data_.size() + other.size());
  for (double v : other.data_) data_.push_back(alpha * v);
}

bool Vector::AlmostEquals(const Vector& other, double tol) const {
  if (size() != other.size()) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Vector::ToString(int decimals) const {
  std::string out = "[";
  for (size_t i = 0; i < data_.size(); ++i) {
    if (i) out += ", ";
    out += FormatDouble(data_[i], decimals);
  }
  out += "]";
  return out;
}

double SquaredDistance(const Vector& x, const Vector& y) {
  COMPARESETS_CHECK(x.size() == y.size())
      << "SquaredDistance size mismatch: " << x.size() << " vs " << y.size();
  return Kernels().squared_distance(x.raw(), y.raw(), x.size());
}

double CosineSimilarity(const Vector& x, const Vector& y) {
  double nx = x.NormL2();
  double ny = y.NormL2();
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return x.Dot(y) / (nx * ny);
}

Vector Concatenate(const Vector& a, const Vector& b) {
  Vector out = a;
  out.Append(b);
  return out;
}

}  // namespace comparesets
