#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels/kernels.h"
#include "util/logging.h"

namespace comparesets {

namespace {

/// Relative pivot floor: a candidate pivot² below this fraction of the
/// largest Gram diagonal is treated as zero (linearly dependent column).
constexpr double kPivotRelTol = 1e-13;

}  // namespace

void IncrementalCholesky::Clear() {
  dim_ = 0;
  max_diag_ = 0.0;
}

void IncrementalCholesky::Reserve(size_t dim) {
  if (dim <= cap_) return;
  size_t new_cap = std::max<size_t>(8, std::max(dim, cap_ * 2));
  std::vector<double> grown(new_cap * new_cap, 0.0);
  for (size_t r = 0; r < dim_; ++r) {
    for (size_t c = 0; c <= r; ++c) grown[r * new_cap + c] = At(r, c);
  }
  l_ = std::move(grown);
  cap_ = new_cap;
}

bool IncrementalCholesky::Append(const double* cross, double diag) {
  Reserve(dim_ + 1);
  max_diag_ = std::max(max_diag_, diag);

  // Forward-substitute L c = cross to get the new row of L (a single-RHS
  // trsm over the existing factor block); the new pivot² is diag − ‖c‖².
  const KernelDispatch& kernels = Kernels();
  double* row = &l_[dim_ * cap_];
  std::copy(cross, cross + dim_, row);
  kernels.trsm_forward(l_.data(), cap_, dim_, row, 1);
  double row_norm2 = kernels.sumsq(row, dim_);
  double pivot2 = diag - row_norm2;
  if (pivot2 <= kPivotRelTol * max_diag_ || !(pivot2 > 0.0)) return false;
  row[dim_] = std::sqrt(pivot2);
  ++dim_;
  return true;
}

void IncrementalCholesky::Remove(size_t pos) {
  COMPARESETS_CHECK(pos < dim_) << "cholesky remove out of range";
  // Delete row `pos` by shifting the rows below it up; each shifted row
  // r keeps its columns 0..r+1, leaving one superdiagonal entry.
  for (size_t r = pos; r + 1 < dim_; ++r) {
    for (size_t c = 0; c <= r + 1; ++c) At(r, c) = At(r + 1, c);
  }
  --dim_;
  // Givens sweep: zero the superdiagonal entries (j, j+1) by rotating
  // column pairs (j, j+1) across rows j..dim_-1, restoring a lower-
  // triangular factor of the reduced Gram block.
  for (size_t j = pos; j < dim_; ++j) {
    double a = At(j, j);
    double b = At(j, j + 1);
    if (b == 0.0) continue;
    double r = std::hypot(a, b);
    double c = a / r;
    double s = b / r;
    for (size_t row = j; row < dim_; ++row) {
      double x = At(row, j);
      double y = At(row, j + 1);
      At(row, j) = c * x + s * y;
      At(row, j + 1) = c * y - s * x;
    }
    At(j, j + 1) = 0.0;  // Exactly, not just to rounding.
  }
}

void IncrementalCholesky::Solve(const double* rhs, double* out) const {
  if (out != rhs) std::copy(rhs, rhs + dim_, out);
  SolveMulti(out, 1);
}

void IncrementalCholesky::SolveMulti(double* b, size_t nrhs) const {
  // Forward L U = B, then backward Lᵀ Z = U, both in place.
  const KernelDispatch& kernels = Kernels();
  kernels.trsm_forward(l_.data(), cap_, dim_, b, nrhs);
  kernels.trsm_backward(l_.data(), cap_, dim_, b, nrhs);
}

}  // namespace comparesets
