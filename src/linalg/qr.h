// Householder QR factorization and least-squares solves.
//
// The Integer-Regression engine repeatedly solves small least-squares
// systems restricted to the active columns NOMP has chosen; column counts
// are bounded by the review budget m (≤ ~20), so an O(r·c²) dense QR is
// the right tool.

#pragma once

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace comparesets {

/// Householder QR of a rows>=cols matrix (rank-deficient tolerated:
/// tiny diagonal entries are treated as zero during the back-solve).
class QrDecomposition {
 public:
  /// Factorizes A (copied). Requires rows >= cols.
  static Result<QrDecomposition> Compute(const Matrix& a);

  /// Minimum-norm-ish least-squares solve: x = argmin ||Ax - b||_2
  /// (free variables from rank deficiency are set to zero).
  Result<Vector> Solve(const Vector& b) const;

  size_t rows() const { return qr_.rows(); }
  size_t cols() const { return qr_.cols(); }

 private:
  QrDecomposition() = default;

  Matrix qr_;          // Upper triangle holds R; lower holds Householder v's.
  Vector beta_;        // Householder scalars.
  double rank_tol_ = 0.0;
};

/// One-shot least squares: argmin_x ||Ax - b||_2 via QR.
Result<Vector> LeastSquares(const Matrix& a, const Vector& b);

}  // namespace comparesets
