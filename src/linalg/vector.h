// Dense real vector with the operations the selection algorithms need:
// norms, dot products, axpy, concatenation, and the squared-Euclidean
// distance Δ(x, y) from Equation 2 of the paper.

#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace comparesets {

class Vector {
 public:
  Vector() = default;
  explicit Vector(size_t size, double fill = 0.0) : data_(size, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  double* raw() { return data_.data(); }
  const double* raw() const { return data_.data(); }

  /// Sum of elements.
  double Sum() const;
  /// L1 norm.
  double NormL1() const;
  /// L2 (Euclidean) norm.
  double NormL2() const;
  /// Infinity norm (max |x_i|).
  double NormInf() const;
  /// Maximum element (not absolute); 0 for empty vectors.
  double Max() const;

  /// Dot product; sizes must match.
  double Dot(const Vector& other) const;

  /// this += alpha * other.
  void Axpy(double alpha, const Vector& other);
  /// this *= alpha.
  void Scale(double alpha);

  /// Element-wise operations returning new vectors.
  Vector operator+(const Vector& other) const;
  Vector operator-(const Vector& other) const;
  Vector operator*(double alpha) const;

  bool operator==(const Vector& other) const { return data_ == other.data_; }

  /// Appends all of `other` to this (vector concatenation [a; b]).
  void Append(const Vector& other);
  /// Appends `other` scaled by alpha (weighted concatenation [a; λb]).
  void AppendScaled(double alpha, const Vector& other);

  /// True if every element differs from `other` by at most `tol`.
  bool AlmostEquals(const Vector& other, double tol = 1e-9) const;

  std::string ToString(int decimals = 4) const;

 private:
  std::vector<double> data_;
};

/// Squared Euclidean distance Δ(x, y) = Σ (x_i - y_i)^2 (paper Eq. 2).
double SquaredDistance(const Vector& x, const Vector& y);

/// Cosine similarity; 0 if either vector is all-zero (paper Eq. 9).
double CosineSimilarity(const Vector& x, const Vector& y);

/// Concatenation [a; b].
Vector Concatenate(const Vector& a, const Vector& b);

}  // namespace comparesets
