// Dense row-major matrix. Design matrices in this library are tall-thin
// ((opinion+aspect rows) x (#reviews)), so no blocking/tiling is needed;
// clarity and correctness win.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace comparesets {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  /// Raw pointer to row r (cols() contiguous entries) — the seam the
  /// kernel-dispatch layer works through.
  const double* RowData(size_t r) const { return data_.data() + r * cols_; }
  double* RowData(size_t r) { return data_.data() + r * cols_; }

  /// Copies out column c.
  Vector Column(size_t c) const;
  /// Copies out row r.
  Vector Row(size_t r) const;
  /// Overwrites column c.
  void SetColumn(size_t c, const Vector& values);

  /// y = A x.
  Vector Multiply(const Vector& x) const;
  /// y = A^T x.
  Vector MultiplyTranspose(const Vector& x) const;

  /// Returns a new matrix keeping only the listed columns, in order.
  Matrix SelectColumns(const std::vector<size_t>& columns) const;

  /// Transposed copy.
  Matrix Transposed() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  std::string ToString(int decimals = 3) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace comparesets
