#include "linalg/matrix.h"

#include "linalg/kernels/kernels.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace comparesets {

Vector Matrix::Column(size_t c) const {
  COMPARESETS_CHECK(c < cols_) << "column out of range";
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Vector Matrix::Row(size_t r) const {
  COMPARESETS_CHECK(r < rows_) << "row out of range";
  Vector out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

void Matrix::SetColumn(size_t c, const Vector& values) {
  COMPARESETS_CHECK(c < cols_) << "column out of range";
  COMPARESETS_CHECK(values.size() == rows_) << "column size mismatch";
  for (size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Vector Matrix::Multiply(const Vector& x) const {
  COMPARESETS_CHECK(x.size() == cols_)
      << "Multiply shape mismatch: " << cols_ << " vs " << x.size();
  const KernelDispatch& kernels = Kernels();
  Vector y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    y[r] = kernels.dot(RowData(r), x.raw(), cols_);
  }
  return y;
}

Vector Matrix::MultiplyTranspose(const Vector& x) const {
  COMPARESETS_CHECK(x.size() == rows_)
      << "MultiplyTranspose shape mismatch: " << rows_ << " vs " << x.size();
  const KernelDispatch& kernels = Kernels();
  Vector y(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double xr = x[r];
    if (xr == 0.0) continue;
    kernels.axpy(xr, RowData(r), y.raw(), cols_);
  }
  return y;
}

Matrix Matrix::SelectColumns(const std::vector<size_t>& columns) const {
  Matrix out(rows_, columns.size());
  for (size_t j = 0; j < columns.size(); ++j) {
    COMPARESETS_CHECK(columns[j] < cols_) << "selected column out of range";
    for (size_t r = 0; r < rows_; ++r) out(r, j) = (*this)(r, columns[j]);
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

std::string Matrix::ToString(int decimals) const {
  std::string out;
  for (size_t r = 0; r < rows_; ++r) {
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c) out += ", ";
      out += FormatDouble((*this)(r, c), decimals);
    }
    out += "]\n";
  }
  return out;
}

}  // namespace comparesets
