#include "linalg/sparse_matrix.h"

#include <cmath>

#include "linalg/kernels/kernels.h"
#include "util/logging.h"

namespace comparesets {

SparseMatrix SparseMatrix::FromDense(const Matrix& dense) {
  SparseMatrix out(dense.rows());
  SparseColumn column;
  for (size_t c = 0; c < dense.cols(); ++c) {
    column.clear();
    for (size_t r = 0; r < dense.rows(); ++r) {
      double value = dense(r, c);
      if (value != 0.0) column.push_back({r, value});
    }
    out.AppendColumn(column);
  }
  return out;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols());
  for (size_t c = 0; c < cols(); ++c) {
    for (size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      out(row_idx_[k], c) = values_[k];
    }
  }
  return out;
}

void SparseMatrix::AppendColumn(const SparseColumn& column) {
  size_t last_row = 0;
  for (size_t k = 0; k < column.size(); ++k) {
    COMPARESETS_CHECK(column[k].row < rows_) << "sparse entry row out of range";
    COMPARESETS_CHECK(k == 0 || column[k].row > last_row)
        << "sparse column rows must be strictly increasing";
    last_row = column[k].row;
    row_idx_.push_back(column[k].row);
    values_.push_back(column[k].value);
  }
  col_ptr_.push_back(values_.size());
}

double SparseMatrix::operator()(size_t r, size_t c) const {
  for (size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
    if (row_idx_[k] == r) return values_[k];
    if (row_idx_[k] > r) break;  // Rows are sorted.
  }
  return 0.0;
}

Vector SparseMatrix::Column(size_t c) const {
  Vector out(rows_);
  for (size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
    out[row_idx_[k]] = values_[k];
  }
  return out;
}

double SparseMatrix::ColumnDot(size_t c, const Vector& x) const {
  return Kernels().gather_dot(ColumnValues(c), ColumnRows(c), ColumnNnz(c),
                              x.raw());
}

Vector SparseMatrix::Multiply(const Vector& x) const {
  COMPARESETS_CHECK(x.size() == cols()) << "sparse multiply size mismatch";
  const KernelDispatch& kernels = Kernels();
  Vector out(rows_);
  for (size_t c = 0; c < cols(); ++c) {
    double xc = x[c];
    if (xc == 0.0) continue;
    kernels.scatter_add(xc, ColumnValues(c), ColumnRows(c), ColumnNnz(c),
                        out.raw());
  }
  return out;
}

Vector SparseMatrix::MultiplyTranspose(const Vector& x) const {
  Vector out;
  MultiplyTranspose(x, &out);
  return out;
}

void SparseMatrix::MultiplyTranspose(const Vector& x, Vector* out) const {
  COMPARESETS_CHECK(x.size() == rows_)
      << "sparse transpose-multiply size mismatch";
  out->data().assign(cols(), 0.0);
  Kernels().sparse_gemv_t(col_ptr_.data(), row_idx_.data(), values_.data(),
                          cols(), x.raw(), out->raw());
}

std::vector<double> SparseMatrix::ColumnNorms() const {
  std::vector<double> norms(cols());
  Kernels().colnorms_sq(col_ptr_.data(), values_.data(), cols(), norms.data());
  for (double& norm : norms) norm = std::sqrt(norm);
  return norms;
}

}  // namespace comparesets
