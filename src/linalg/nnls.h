// Non-negative least squares (Lawson–Hanson active-set method):
//   argmin_x ||Ax - b||_2  s.t.  x >= 0.
//
// Used inside NOMP to refit the coefficients of the active column set
// after each atom is added.

#pragma once

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace comparesets {

struct NnlsOptions {
  /// Dual-feasibility tolerance for termination.
  double tolerance = 1e-10;
  /// Safety cap on outer iterations (the algorithm terminates finitely in
  /// exact arithmetic; this guards against floating-point cycling).
  int max_iterations = 0;  // 0 => 3 * cols.
  /// Deadline / cancellation, checked once per outer iteration; nullptr
  /// runs uncontrolled. Does not affect the numerics of completed runs.
  const ExecControl* control = nullptr;
};

struct NnlsResult {
  Vector x;              ///< Non-negative solution.
  double residual_norm;  ///< ||Ax - b||_2 at the solution.
  int iterations;        ///< Outer-loop iterations used.
};

/// Solves the NNLS problem. `a` must have rows >= 1 and cols >= 1.
Result<NnlsResult> SolveNnls(const Matrix& a, const Vector& b,
                             const NnlsOptions& options = {});

}  // namespace comparesets
