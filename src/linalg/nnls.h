// Non-negative least squares (Lawson–Hanson active-set method):
//   argmin_x ||Ax - b||_2  s.t.  x >= 0.
//
// Used inside NOMP to refit the coefficients of the active column set
// after each atom is added. Two implementations share the options and
// result types:
//   * SolveNnls — the dense reference: per inner iteration, copy the
//     passive columns and QR-solve the rows×k system.
//   * SolveNnlsGram — the production path: work on the precomputed
//     normal equations (G = AᵀA, Aᵀb, ‖b‖²), maintaining an incremental
//     Cholesky factor of G_PP as variables enter/leave the passive set.

#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace comparesets {

struct SolverWorkspace;

struct NnlsOptions {
  /// Dual-feasibility tolerance for termination.
  double tolerance = 1e-10;
  /// Safety cap on outer iterations (the algorithm terminates finitely in
  /// exact arithmetic; this guards against floating-point cycling).
  int max_iterations = 0;  // 0 => 3 * cols + 10.
  /// Deadline / cancellation, checked once per outer iteration; nullptr
  /// runs uncontrolled. Does not affect the numerics of completed runs.
  const ExecControl* control = nullptr;
};

struct NnlsResult {
  Vector x;              ///< Non-negative solution.
  double residual_norm;  ///< ||Ax - b||_2 at the solution.
  int iterations;        ///< Outer-loop iterations used.
  /// False when the iteration cap tripped before dual feasibility: the
  /// returned x may violate KKT. Counted on ExecControl (when present)
  /// so the serving layer can surface silent non-convergence.
  bool converged = true;
};

/// Solves the NNLS problem on a dense matrix. `a` must have rows >= 1
/// and cols >= 1. The reference implementation.
Result<NnlsResult> SolveNnls(const Matrix& a, const Vector& b,
                             const NnlsOptions& options = {});

/// Solves the same problem from its normal equations: `gram` = AᵀA,
/// `vty` = Aᵀb, `b_norm2` = ‖b‖². Never touches A or b, so the cost per
/// iteration is O(q·k) + O(k²) regardless of A's row count.
/// `workspace` (nullptr = thread-local) supplies reusable scratch.
Result<NnlsResult> SolveNnlsGram(const Matrix& gram, const Vector& vty,
                                 double b_norm2,
                                 const NnlsOptions& options = {},
                                 SolverWorkspace* workspace = nullptr);

/// One right-hand side of a batched NNLS solve over a shared Gram
/// matrix: `vty` = Aᵀb and `b_norm2` = ‖b‖² for that problem's b.
struct NnlsGramProblem {
  const Vector* vty = nullptr;
  double b_norm2 = 0.0;
};

/// Solves every problem against the same `gram` in one call: one warm
/// workspace (factor storage, flags, duals) serves the whole batch, and
/// problems whose (vty, b_norm2) bit-match an earlier problem reuse its
/// result outright — the cross-request dedup the engine's batch window
/// leans on. Each returned NnlsResult is bit-identical to SolveNnlsGram
/// on that problem alone: Lawson–Hanson trajectories depend on their
/// right-hand side, so distinct problems are NOT run in lockstep (that
/// would change active-set op order and break bit-equality); the
/// multi-RHS trsm kernels serve the within-solve batching instead.
/// Fails fast on the first problem that fails.
Result<std::vector<NnlsResult>> SolveNnlsGramBatch(
    const Matrix& gram, const std::vector<NnlsGramProblem>& problems,
    const NnlsOptions& options = {}, SolverWorkspace* workspace = nullptr);

/// SolveNnlsGram restricted to the subset `vars` of the Gram system's
/// columns (in the given order): solves over A[:, vars] without forming
/// the submatrix. The result's x has vars.size() entries, aligned with
/// `vars`; `vty_local[t]` must equal (Aᵀb)[vars[t]]. This is the NOMP
/// refit kernel — `vars` is the support in selection order.
Result<NnlsResult> SolveNnlsGramSubset(const Matrix& gram,
                                       const std::vector<size_t>& vars,
                                       const double* vty_local, double b_norm2,
                                       const NnlsOptions& options,
                                       SolverWorkspace* workspace);

}  // namespace comparesets
