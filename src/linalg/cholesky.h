// Incremental Cholesky factorization of a growing/shrinking Gram block.
//
// The Lawson–Hanson NNLS inner loop solves G_PP z = (Vᵀy)_P every time
// the passive set P changes — and P changes by exactly one variable per
// step. Refactorizing from scratch costs O(k³) per step; this class
// maintains L with G_PP = L Lᵀ under single-variable appends (one
// forward substitution, O(k²)) and removals (a row deletion plus a
// Givens re-triangularization sweep, O(k²)).

#pragma once

#include <cstddef>
#include <vector>

namespace comparesets {

class IncrementalCholesky {
 public:
  /// Resets to an empty factor (keeps allocated storage).
  void Clear();

  /// Number of variables currently in the factor.
  size_t size() const { return dim_; }

  /// Appends a variable whose Gram cross-terms with the current factor
  /// variables (in factor order) are `cross[0..size())` and whose Gram
  /// diagonal (squared norm) is `diag`. Returns false — leaving the
  /// factor unchanged — when the new pivot is numerically nonpositive,
  /// i.e. the variable is linearly dependent on the factor.
  bool Append(const double* cross, double diag);

  /// Removes the variable at factor position `pos` (0-based, in append
  /// order as adjusted by prior removals).
  void Remove(size_t pos);

  /// Solves (L Lᵀ) z = rhs; `rhs` and `out` have size() entries in
  /// factor order. `out` may alias `rhs`.
  void Solve(const double* rhs, double* out) const;

  /// Solves (L Lᵀ) Z = B for `nrhs` right-hand sides at once, in place:
  /// `b` is row-major size()×nrhs. One multi-RHS kernel pass; column k
  /// of the result is bit-identical to Solve() on column k alone (the
  /// trsm kernels replay the single-RHS op sequence per column).
  void SolveMulti(double* b, size_t nrhs) const;

 private:
  double At(size_t r, size_t c) const { return l_[r * cap_ + c]; }
  double& At(size_t r, size_t c) { return l_[r * cap_ + c]; }
  void Reserve(size_t dim);

  size_t dim_ = 0;
  size_t cap_ = 0;
  /// Row-major lower-triangular factor; row r uses columns 0..r.
  std::vector<double> l_;
  /// Largest Gram diagonal seen, anchoring the relative pivot tolerance.
  double max_diag_ = 0.0;
};

}  // namespace comparesets
