#include "linalg/nnls.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "linalg/kernels/kernels.h"
#include "linalg/qr.h"
#include "linalg/workspace.h"

namespace comparesets {

namespace {

/// Reports a capped (non-converged) solve on the control, when present.
void CountNonConvergence(const ExecControl* control) {
  if (control != nullptr && control->nnls_nonconverged != nullptr) {
    control->nnls_nonconverged->fetch_add(1, std::memory_order_relaxed);
  }
}

/// Unconstrained least squares restricted to the passive set P; entries
/// outside P are zero in the returned full-size vector.
Result<Vector> SolveOnPassiveSet(const Matrix& a, const Vector& b,
                                 const std::vector<size_t>& passive) {
  Matrix sub = a.SelectColumns(passive);
  COMPARESETS_ASSIGN_OR_RETURN(Vector z, LeastSquares(sub, b));
  Vector full(a.cols());
  for (size_t j = 0; j < passive.size(); ++j) full[passive[j]] = z[j];
  return full;
}

/// A Gram block seen through an optional column-subset indirection, so
/// the subset solve never materializes G[vars, vars].
struct GramView {
  const Matrix* gram;
  const std::vector<size_t>* vars;  ///< nullptr = identity mapping.
  size_t size;

  double At(size_t i, size_t j) const {
    if (vars == nullptr) return (*gram)(i, j);
    return (*gram)((*vars)[i], (*vars)[j]);
  }
};

/// Lawson–Hanson on the normal equations. The passive-set solves run on
/// an incrementally maintained Cholesky factor of G_PP; if a pivot ever
/// collapses (linearly dependent passive column — the case the dense
/// path hands to QR's rank tolerance), the call degrades to QR solves
/// of the passive Gram block for its remainder, matching the reference
/// semantics of zeroed free variables in passive-ascending order.
Result<NnlsResult> SolveNnlsGramImpl(const GramView& g, const double* vty,
                                     double b_norm2,
                                     const NnlsOptions& options,
                                     SolverWorkspace& ws) {
  size_t cols = g.size;
  if (cols == 0) {
    return Status::InvalidArgument("NNLS with empty gram system");
  }
  size_t max_iters = options.max_iterations > 0
                         ? static_cast<size_t>(options.max_iterations)
                         : 3 * cols + 10;

  std::vector<double>& x = ws.nnls_x;
  std::vector<double>& w = ws.nnls_w;
  std::vector<double>& z = ws.nnls_z;
  std::vector<double>& rhs = ws.nnls_rhs;
  std::vector<double>& solve = ws.nnls_solve;
  std::vector<double>& cross = ws.nnls_cross;
  std::vector<char>& in_passive = ws.nnls_in_passive;
  std::vector<size_t>& factor = ws.nnls_factor;
  std::vector<size_t>& passive = ws.nnls_passive;
  IncrementalCholesky& chol = ws.chol;

  x.assign(cols, 0.0);
  w.assign(cols, 0.0);
  z.assign(cols, 0.0);
  in_passive.assign(cols, 0);
  factor.clear();
  chol.Clear();

  bool degenerate = false;
  size_t iterations = 0;
  bool converged = true;

  // Solves G_PP z_P = (Aᵀb)_P into the full-size z (zeros outside P).
  auto solve_passive = [&]() -> Status {
    std::fill(z.begin(), z.end(), 0.0);
    if (!degenerate) {
      rhs.resize(factor.size());
      solve.resize(factor.size());
      for (size_t t = 0; t < factor.size(); ++t) rhs[t] = vty[factor[t]];
      chol.Solve(rhs.data(), solve.data());
      for (size_t t = 0; t < factor.size(); ++t) z[factor[t]] = solve[t];
      return Status::OK();
    }
    size_t k = passive.size();
    Matrix gp(k, k);
    Vector gp_rhs(k);
    for (size_t r = 0; r < k; ++r) {
      for (size_t c = 0; c < k; ++c) gp(r, c) = g.At(passive[r], passive[c]);
      gp_rhs[r] = vty[passive[r]];
    }
    COMPARESETS_ASSIGN_OR_RETURN(Vector zp, LeastSquares(gp, gp_rhs));
    for (size_t r = 0; r < k; ++r) z[passive[r]] = zp[r];
    return Status::OK();
  };

  const KernelDispatch& kernels = Kernels();

  for (;;) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(options.control, "nnls"));
    // Dual w = Aᵀb − Gx as one kernel row-axpy per nonzero coordinate:
    // G is exactly symmetric, so subtracting x[p]·G(p,·) in ascending p
    // applies the same rounded terms, in the same order per entry, as
    // the classic per-j inner loop over G(j,·).
    std::copy(vty, vty + cols, w.begin());
    for (size_t p = 0; p < cols; ++p) {
      if (x[p] == 0.0) continue;
      if (g.vars == nullptr) {
        kernels.axpy(-x[p], g.gram->RowData(p), w.data(), cols);
      } else {
        kernels.gather_axpy(-x[p], g.gram->RowData((*g.vars)[p]),
                            g.vars->data(), w.data(), cols);
      }
    }
    double best = options.tolerance;
    size_t best_j = cols;
    for (size_t j = 0; j < cols; ++j) {
      if (!in_passive[j] && w[j] > best) {
        best = w[j];
        best_j = j;
      }
    }
    if (best_j == cols) break;  // KKT conditions hold.
    if (++iterations > max_iters) {
      converged = false;
      break;
    }

    in_passive[best_j] = 1;
    if (!degenerate) {
      cross.resize(factor.size());
      for (size_t t = 0; t < factor.size(); ++t) {
        cross[t] = g.At(best_j, factor[t]);
      }
      if (chol.Append(cross.data(), g.At(best_j, best_j))) {
        factor.push_back(best_j);
      } else {
        degenerate = true;  // Dependent column: QR fallback from here on.
      }
    }

    for (;;) {
      passive.clear();
      for (size_t j = 0; j < cols; ++j) {
        if (in_passive[j]) passive.push_back(j);
      }
      COMPARESETS_RETURN_NOT_OK(solve_passive());

      // If the unconstrained sub-solution is feasible, accept it.
      bool feasible = true;
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        x = z;
        break;
      }

      // Step from x toward z, stopping at the first variable to hit zero,
      // and move that variable back to the active (zero) set.
      double alpha = std::numeric_limits<double>::infinity();
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          double denom = x[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
        }
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (size_t j : passive) {
        x[j] += alpha * (z[j] - x[j]);
        if (x[j] <= options.tolerance) {
          x[j] = 0.0;
          in_passive[j] = 0;
          if (!degenerate) {
            for (size_t t = 0; t < factor.size(); ++t) {
              if (factor[t] == j) {
                chol.Remove(t);
                factor.erase(factor.begin() + static_cast<ptrdiff_t>(t));
                break;
              }
            }
          }
        }
      }
      // Guard: ensure at least the newly added column survives rounding;
      // otherwise terminate this inner loop to avoid cycling.
      bool any_passive = false;
      for (size_t j = 0; j < cols; ++j) any_passive |= (in_passive[j] != 0);
      if (!any_passive) break;
    }
  }

  NnlsResult out;
  out.x = Vector(cols);
  double xv = 0.0;
  double xgx = 0.0;
  for (size_t i = 0; i < cols; ++i) {
    out.x[i] = x[i];
    if (x[i] == 0.0) continue;
    xv += x[i] * vty[i];
    for (size_t j = 0; j < cols; ++j) {
      if (x[j] != 0.0) xgx += x[i] * g.At(i, j) * x[j];
    }
  }
  out.residual_norm = std::sqrt(std::max(0.0, b_norm2 - 2.0 * xv + xgx));
  out.iterations = static_cast<int>(iterations);
  out.converged = converged;
  if (!converged) CountNonConvergence(options.control);
  return out;
}

}  // namespace

Result<NnlsResult> SolveNnls(const Matrix& a, const Vector& b,
                             const NnlsOptions& options) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("NNLS with empty matrix");
  }
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("NNLS rhs size mismatch");
  }
  size_t cols = a.cols();
  // The default cap is computed in size_t: the historical int arithmetic
  // overflowed for cols > (INT_MAX - 10) / 3.
  size_t max_iters = options.max_iterations > 0
                         ? static_cast<size_t>(options.max_iterations)
                         : 3 * cols + 10;

  Vector x(cols, 0.0);
  std::vector<bool> in_passive(cols, false);
  Vector residual = b;  // b - A x, with x = 0 initially.
  size_t iterations = 0;
  bool converged = true;

  for (;;) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(options.control, "nnls"));
    // Dual w = A^T (b - A x); pick the most positive inactive coordinate.
    Vector w = a.MultiplyTranspose(residual);
    double best = options.tolerance;
    size_t best_j = cols;
    for (size_t j = 0; j < cols; ++j) {
      if (!in_passive[j] && w[j] > best) {
        best = w[j];
        best_j = j;
      }
    }
    if (best_j == cols) break;  // KKT conditions hold.
    if (++iterations > max_iters) {
      converged = false;
      break;
    }

    in_passive[best_j] = true;

    for (;;) {
      std::vector<size_t> passive;
      for (size_t j = 0; j < cols; ++j) {
        if (in_passive[j]) passive.push_back(j);
      }
      COMPARESETS_ASSIGN_OR_RETURN(Vector z, SolveOnPassiveSet(a, b, passive));

      // If the unconstrained sub-solution is feasible, accept it.
      bool feasible = true;
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        x = z;
        break;
      }

      // Step from x toward z, stopping at the first variable to hit zero,
      // and move that variable back to the active (zero) set.
      double alpha = std::numeric_limits<double>::infinity();
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          double denom = x[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
        }
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (size_t j : passive) {
        x[j] += alpha * (z[j] - x[j]);
        if (x[j] <= options.tolerance) {
          x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      // Guard: ensure at least the newly added column survives rounding;
      // otherwise terminate this inner loop to avoid cycling.
      bool any_passive = false;
      for (size_t j = 0; j < cols; ++j) any_passive = any_passive || in_passive[j];
      if (!any_passive) break;
    }

    residual = b - a.Multiply(x);
  }

  NnlsResult out;
  out.residual_norm = (b - a.Multiply(x)).NormL2();
  out.x = std::move(x);
  out.iterations = static_cast<int>(iterations);
  out.converged = converged;
  if (!converged) CountNonConvergence(options.control);
  return out;
}

Result<NnlsResult> SolveNnlsGram(const Matrix& gram, const Vector& vty,
                                 double b_norm2, const NnlsOptions& options,
                                 SolverWorkspace* workspace) {
  if (gram.rows() != gram.cols()) {
    return Status::InvalidArgument("gram matrix must be square");
  }
  if (vty.size() != gram.cols()) {
    return Status::InvalidArgument("gram rhs size mismatch");
  }
  SolverWorkspace& ws =
      workspace != nullptr ? *workspace : SolverWorkspace::ThreadLocal();
  GramView view{&gram, nullptr, gram.cols()};
  return SolveNnlsGramImpl(view, vty.raw(), b_norm2, options, ws);
}

Result<std::vector<NnlsResult>> SolveNnlsGramBatch(
    const Matrix& gram, const std::vector<NnlsGramProblem>& problems,
    const NnlsOptions& options, SolverWorkspace* workspace) {
  if (gram.rows() != gram.cols()) {
    return Status::InvalidArgument("gram matrix must be square");
  }
  SolverWorkspace& ws =
      workspace != nullptr ? *workspace : SolverWorkspace::ThreadLocal();
  GramView view{&gram, nullptr, gram.cols()};
  std::vector<NnlsResult> out;
  out.reserve(problems.size());
  for (size_t i = 0; i < problems.size(); ++i) {
    const NnlsGramProblem& problem = problems[i];
    if (problem.vty == nullptr || problem.vty->size() != gram.cols()) {
      return Status::InvalidArgument("gram rhs size mismatch");
    }
    // Exact-duplicate right-hand sides reuse the earlier trajectory's
    // result: same (G, vty, ‖b‖²) bits ⇒ same solve, skipped entirely.
    size_t dup = i;
    for (size_t p = 0; p < i; ++p) {
      if (problems[p].vty->size() == problem.vty->size() &&
          problems[p].b_norm2 == problem.b_norm2 &&
          std::memcmp(problems[p].vty->raw(), problem.vty->raw(),
                      problem.vty->size() * sizeof(double)) == 0) {
        dup = p;
        break;
      }
    }
    if (dup < i) {
      out.push_back(out[dup]);
      continue;
    }
    COMPARESETS_ASSIGN_OR_RETURN(
        NnlsResult solved,
        SolveNnlsGramImpl(view, problem.vty->raw(), problem.b_norm2, options,
                          ws));
    out.push_back(std::move(solved));
  }
  return out;
}

Result<NnlsResult> SolveNnlsGramSubset(const Matrix& gram,
                                       const std::vector<size_t>& vars,
                                       const double* vty_local, double b_norm2,
                                       const NnlsOptions& options,
                                       SolverWorkspace* workspace) {
  SolverWorkspace& ws =
      workspace != nullptr ? *workspace : SolverWorkspace::ThreadLocal();
  GramView view{&gram, &vars, vars.size()};
  return SolveNnlsGramImpl(view, vty_local, b_norm2, options, ws);
}

}  // namespace comparesets
