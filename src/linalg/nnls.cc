#include "linalg/nnls.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "linalg/qr.h"

namespace comparesets {

namespace {

/// Unconstrained least squares restricted to the passive set P; entries
/// outside P are zero in the returned full-size vector.
Result<Vector> SolveOnPassiveSet(const Matrix& a, const Vector& b,
                                 const std::vector<size_t>& passive) {
  Matrix sub = a.SelectColumns(passive);
  COMPARESETS_ASSIGN_OR_RETURN(Vector z, LeastSquares(sub, b));
  Vector full(a.cols());
  for (size_t j = 0; j < passive.size(); ++j) full[passive[j]] = z[j];
  return full;
}

}  // namespace

Result<NnlsResult> SolveNnls(const Matrix& a, const Vector& b,
                             const NnlsOptions& options) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("NNLS with empty matrix");
  }
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("NNLS rhs size mismatch");
  }
  size_t cols = a.cols();
  int max_iters =
      options.max_iterations > 0 ? options.max_iterations : 3 * static_cast<int>(cols) + 10;

  Vector x(cols, 0.0);
  std::vector<bool> in_passive(cols, false);
  Vector residual = b;  // b - A x, with x = 0 initially.
  int iterations = 0;

  for (;;) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(options.control, "nnls"));
    // Dual w = A^T (b - A x); pick the most positive inactive coordinate.
    Vector w = a.MultiplyTranspose(residual);
    double best = options.tolerance;
    size_t best_j = cols;
    for (size_t j = 0; j < cols; ++j) {
      if (!in_passive[j] && w[j] > best) {
        best = w[j];
        best_j = j;
      }
    }
    if (best_j == cols) break;  // KKT conditions hold.
    if (++iterations > max_iters) break;

    in_passive[best_j] = true;

    for (;;) {
      std::vector<size_t> passive;
      for (size_t j = 0; j < cols; ++j) {
        if (in_passive[j]) passive.push_back(j);
      }
      COMPARESETS_ASSIGN_OR_RETURN(Vector z, SolveOnPassiveSet(a, b, passive));

      // If the unconstrained sub-solution is feasible, accept it.
      bool feasible = true;
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        x = z;
        break;
      }

      // Step from x toward z, stopping at the first variable to hit zero,
      // and move that variable back to the active (zero) set.
      double alpha = std::numeric_limits<double>::infinity();
      for (size_t j : passive) {
        if (z[j] <= 0.0) {
          double denom = x[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
        }
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (size_t j : passive) {
        x[j] += alpha * (z[j] - x[j]);
        if (x[j] <= options.tolerance) {
          x[j] = 0.0;
          in_passive[j] = false;
        }
      }
      // Guard: ensure at least the newly added column survives rounding;
      // otherwise terminate this inner loop to avoid cycling.
      bool any_passive = false;
      for (size_t j = 0; j < cols; ++j) any_passive |= in_passive[j];
      if (!any_passive) break;
    }

    residual = b - a.Multiply(x);
  }

  NnlsResult out;
  out.residual_norm = (b - a.Multiply(x)).NormL2();
  out.x = std::move(x);
  out.iterations = iterations;
  return out;
}

}  // namespace comparesets
