// Runtime-dispatched numeric kernels — the single home for every hot
// inner loop in linalg/ (the Kaldi matrix-library idiom: one vtable of
// C function pointers, one portable scalar implementation, optional
// per-arch SIMD implementations compiled in their own translation units
// with the matching -m flags, selected once at startup by CPUID).
//
// Bit-reproducibility contract
// ----------------------------
// Every kernel that reduces (dot, sumsq, squared_distance, gather_dot,
// and everything built on them) uses the SAME canonical accumulation
// order in every implementation: four independent partial accumulators
// over blocks of four elements in index order, combined as
// (acc0 + acc1) + (acc2 + acc3), followed by a sequential scalar tail.
// That order is exactly one AVX2 double lane, so the scalar and SIMD
// targets produce bit-identical results — not merely close ones — and
// COMPARESETS_KERNEL=scalar|avx2 can never change a selection. Both
// kernel translation units are compiled with -ffp-contract=off so the
// compiler cannot fuse multiply-adds in one target and not the other.
//
// Elementwise kernels (axpy, scale, scatter/gather moves) perform one
// rounding per element in index order and are trivially identical.
// The trsm kernels vectorize across right-hand-side columns: each
// column sees exactly the single-RHS operation sequence (multiply,
// subtract, divide — never a reciprocal), so multi-RHS solves match
// column-by-column solves bitwise.
//
// Selection: Kernels() resolves once (thread-safe) to the best target
// the CPU supports, unless the COMPARESETS_KERNEL environment variable
// ("scalar", "avx2", or "auto") overrides it. Tests and benches can
// switch targets in-process with SetKernelDispatch(); production code
// never should (the dispatch pointer is read without synchronization
// on the hot path).

#pragma once

#include <cstddef>

namespace comparesets {

struct KernelDispatch {
  /// Target name ("scalar", "avx2") — recorded in bench output.
  const char* name;

  /// Σ x[i]·y[i] (canonical 4-lane order; x may alias y).
  double (*dot)(const double* x, const double* y, size_t n);
  /// Σ x[i]² — bit-identical to dot(x, x, n).
  double (*sumsq)(const double* x, size_t n);
  /// Σ (x[i] − y[i])².
  double (*squared_distance)(const double* x, const double* y, size_t n);

  /// y[i] += alpha · x[i].
  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  /// x[i] *= alpha.
  void (*scale)(double alpha, double* x, size_t n);

  /// Σ values[k] · dense[rows[k]] — a sparse column dotted against a
  /// dense vector (canonical 4-lane order over k).
  double (*gather_dot)(const double* values, const size_t* rows, size_t nnz,
                       const double* dense);
  /// y[t] += alpha · src[idx[t]] for t < n — the subset-view axpy the
  /// NNLS dual update needs.
  void (*gather_axpy)(double alpha, const double* src, const size_t* idx,
                      double* y, size_t n);
  /// dense[rows[k]] += alpha · values[k]. Scattered stores: scalar in
  /// every target (AVX2 has gathers but no scatters).
  void (*scatter_add)(double alpha, const double* values, const size_t* rows,
                      size_t nnz, double* dense);
  /// dense[rows[k]] = values[k].
  void (*scatter_set)(const double* values, const size_t* rows, size_t nnz,
                      double* dense);
  /// dense[rows[k]] = 0.
  void (*scatter_clear)(const size_t* rows, size_t nnz, double* dense);

  /// out[c] = ⟨column c, x⟩ for every column of a CSC matrix: y = Aᵀx.
  /// Each column reduces exactly like gather_dot.
  void (*sparse_gemv_t)(const size_t* col_ptr, const size_t* row_idx,
                        const double* values, size_t cols, const double* x,
                        double* out);
  /// One step of the Gram scatter build: with column j of a CSC matrix
  /// already scattered into `scatter`, writes out_col[i] = ⟨column i,
  /// scatter⟩ for i ≤ j (each a gather_dot).
  void (*gram_scatter)(const size_t* col_ptr, const size_t* row_idx,
                       const double* values, size_t j, const double* scatter,
                       double* out_col);
  /// out[c] = Σ values[k]² over column c (squared L2 column norms).
  void (*colnorms_sq)(const size_t* col_ptr, const double* values, size_t cols,
                      double* out);

  /// In-place forward substitution L·X = B on a row-major lower factor
  /// (`l`, leading dimension `stride`, order `dim`) with B row-major
  /// dim×nrhs. Per column: the exact single-RHS op sequence.
  void (*trsm_forward)(const double* l, size_t stride, size_t dim, double* b,
                       size_t nrhs);
  /// In-place backward substitution Lᵀ·X = B (same layout).
  void (*trsm_backward)(const double* l, size_t stride, size_t dim, double* b,
                        size_t nrhs);
};

/// The active dispatch target. First call resolves CPUID + the
/// COMPARESETS_KERNEL environment override; later calls are a load.
const KernelDispatch& Kernels();

/// The portable scalar target (always available).
const KernelDispatch& ScalarKernels();

/// The AVX2 target, or nullptr when the binary or the CPU lacks it.
const KernelDispatch* Avx2Kernels();

/// Forces the active target by name ("scalar", "avx2", or "auto" for
/// the CPUID default). Returns false — leaving the dispatch unchanged —
/// if the named target is unavailable. For tests and benches only: do
/// not call concurrently with running solvers.
bool SetKernelDispatch(const char* name);

}  // namespace comparesets
