// AVX2 kernels. This translation unit is the only one compiled with
// -mavx2 (plus -ffp-contract=off — GCC would otherwise fuse the
// mul/add pairs into FMAs and break bit-identity with the scalar
// target; for the same reason -mfma is never passed). When the
// toolchain cannot target AVX2 the file degrades to a stub returning
// nullptr and the dispatcher falls back to scalar.
//
// Every reduction follows the canonical 4-lane order from kernels.h:
// one __m256d accumulator IS the four scalar accumulators, and the
// horizontal reduce sums lanes as (a0 + a1) + (a2 + a3) — exactly the
// scalar combine. Tails run the same scalar code, compiled in this TU
// under the same contraction rules.

#include "linalg/kernels/kernels.h"

namespace comparesets {

// Defined here, consumed by the dispatcher in kernels.cc.
const KernelDispatch* Avx2KernelsCompiled();

}  // namespace comparesets

#if defined(__AVX2__)

#include <immintrin.h>

static_assert(sizeof(size_t) == sizeof(long long),
              "AVX2 gathers index with 64-bit lanes");

namespace comparesets {
namespace {

/// (a0 + a1) + (a2 + a3) over the four lanes — the canonical combine.
inline double ReduceLanes(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d lo_sum = _mm_hadd_pd(lo, lo);  // a0 + a1
  __m128d hi_sum = _mm_hadd_pd(hi, hi);  // a2 + a3
  return _mm_cvtsd_f64(_mm_add_sd(lo_sum, hi_sum));
}

double Avx2Dot(const double* x, const double* y, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vx = _mm256_loadu_pd(x + i);
    __m256d vy = _mm256_loadu_pd(y + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vx, vy));
  }
  double total = ReduceLanes(acc);
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

double Avx2Sumsq(const double* x, size_t n) { return Avx2Dot(x, x, n); }

double Avx2SquaredDistance(const double* x, const double* y, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double total = ReduceLanes(acc);
  for (; i < n; ++i) {
    double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

void Avx2Axpy(double alpha, const double* x, double* y, size_t n) {
  __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Avx2Scale(double alpha, double* x, size_t n) {
  __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

inline __m256d GatherRows(const double* dense, const size_t* rows) {
  __m256i idx =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows));
  return _mm256_i64gather_pd(dense, idx, sizeof(double));
}

double Avx2GatherDot(const double* values, const size_t* rows, size_t nnz,
                     const double* dense) {
  __m256d acc = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= nnz; k += 4) {
    __m256d vv = _mm256_loadu_pd(values + k);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, GatherRows(dense, rows + k)));
  }
  double total = ReduceLanes(acc);
  for (; k < nnz; ++k) total += values[k] * dense[rows[k]];
  return total;
}

void Avx2GatherAxpy(double alpha, const double* src, const size_t* idx,
                    double* y, size_t n) {
  __m256d va = _mm256_set1_pd(alpha);
  size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    __m256d prod = _mm256_mul_pd(va, GatherRows(src, idx + t));
    _mm256_storeu_pd(y + t, _mm256_add_pd(_mm256_loadu_pd(y + t), prod));
  }
  for (; t < n; ++t) y[t] += alpha * src[idx[t]];
}

// Scattered stores have no AVX2 instruction; these stay scalar (and are
// memory-bound anyway).
void Avx2ScatterAdd(double alpha, const double* values, const size_t* rows,
                    size_t nnz, double* dense) {
  for (size_t k = 0; k < nnz; ++k) dense[rows[k]] += alpha * values[k];
}

void Avx2ScatterSet(const double* values, const size_t* rows, size_t nnz,
                    double* dense) {
  for (size_t k = 0; k < nnz; ++k) dense[rows[k]] = values[k];
}

void Avx2ScatterClear(const size_t* rows, size_t nnz, double* dense) {
  for (size_t k = 0; k < nnz; ++k) dense[rows[k]] = 0.0;
}

void Avx2SparseGemvT(const size_t* col_ptr, const size_t* row_idx,
                     const double* values, size_t cols, const double* x,
                     double* out) {
  for (size_t c = 0; c < cols; ++c) {
    size_t begin = col_ptr[c];
    out[c] = Avx2GatherDot(values + begin, row_idx + begin,
                           col_ptr[c + 1] - begin, x);
  }
}

void Avx2GramScatter(const size_t* col_ptr, const size_t* row_idx,
                     const double* values, size_t j, const double* scatter,
                     double* out_col) {
  for (size_t i = 0; i <= j; ++i) {
    size_t begin = col_ptr[i];
    out_col[i] = Avx2GatherDot(values + begin, row_idx + begin,
                               col_ptr[i + 1] - begin, scatter);
  }
}

void Avx2ColnormsSq(const size_t* col_ptr, const double* values, size_t cols,
                    double* out) {
  for (size_t c = 0; c < cols; ++c) {
    size_t begin = col_ptr[c];
    out[c] = Avx2Sumsq(values + begin, col_ptr[c + 1] - begin);
  }
}

// The trsm pair vectorizes across right-hand sides: each RHS column k
// sees the single-RHS op sequence (mul, sub, div) verbatim, so the
// SIMD result matches nrhs independent scalar solves bit-for-bit.
void Avx2TrsmForward(const double* l, size_t stride, size_t dim, double* b,
                     size_t nrhs) {
  for (size_t r = 0; r < dim; ++r) {
    double* br = b + r * nrhs;
    for (size_t c = 0; c < r; ++c) {
      __m256d vl = _mm256_set1_pd(l[r * stride + c]);
      const double* bc = b + c * nrhs;
      size_t k = 0;
      for (; k + 4 <= nrhs; k += 4) {
        __m256d prod = _mm256_mul_pd(vl, _mm256_loadu_pd(bc + k));
        _mm256_storeu_pd(br + k,
                         _mm256_sub_pd(_mm256_loadu_pd(br + k), prod));
      }
      double lrc = l[r * stride + c];
      for (; k < nrhs; ++k) br[k] -= lrc * bc[k];
    }
    __m256d vd = _mm256_set1_pd(l[r * stride + r]);
    size_t k = 0;
    for (; k + 4 <= nrhs; k += 4) {
      _mm256_storeu_pd(br + k, _mm256_div_pd(_mm256_loadu_pd(br + k), vd));
    }
    double diag = l[r * stride + r];
    for (; k < nrhs; ++k) br[k] /= diag;
  }
}

void Avx2TrsmBackward(const double* l, size_t stride, size_t dim, double* b,
                      size_t nrhs) {
  for (size_t r = dim; r-- > 0;) {
    double* br = b + r * nrhs;
    for (size_t c = r + 1; c < dim; ++c) {
      __m256d vl = _mm256_set1_pd(l[c * stride + r]);
      const double* bc = b + c * nrhs;
      size_t k = 0;
      for (; k + 4 <= nrhs; k += 4) {
        __m256d prod = _mm256_mul_pd(vl, _mm256_loadu_pd(bc + k));
        _mm256_storeu_pd(br + k,
                         _mm256_sub_pd(_mm256_loadu_pd(br + k), prod));
      }
      double lcr = l[c * stride + r];
      for (; k < nrhs; ++k) br[k] -= lcr * bc[k];
    }
    __m256d vd = _mm256_set1_pd(l[r * stride + r]);
    size_t k = 0;
    for (; k + 4 <= nrhs; k += 4) {
      _mm256_storeu_pd(br + k, _mm256_div_pd(_mm256_loadu_pd(br + k), vd));
    }
    double diag = l[r * stride + r];
    for (; k < nrhs; ++k) br[k] /= diag;
  }
}

}  // namespace

const KernelDispatch* Avx2KernelsCompiled() {
  static const KernelDispatch kAvx2 = {
      "avx2",
      Avx2Dot,
      Avx2Sumsq,
      Avx2SquaredDistance,
      Avx2Axpy,
      Avx2Scale,
      Avx2GatherDot,
      Avx2GatherAxpy,
      Avx2ScatterAdd,
      Avx2ScatterSet,
      Avx2ScatterClear,
      Avx2SparseGemvT,
      Avx2GramScatter,
      Avx2ColnormsSq,
      Avx2TrsmForward,
      Avx2TrsmBackward,
  };
  return &kAvx2;
}

}  // namespace comparesets

#else  // !defined(__AVX2__)

namespace comparesets {

const KernelDispatch* Avx2KernelsCompiled() { return nullptr; }

}  // namespace comparesets

#endif  // defined(__AVX2__)
