// Portable scalar kernels — the reference implementation of the
// canonical accumulation order documented in kernels.h. This file is
// compiled with -ffp-contract=off (see src/CMakeLists.txt): a fused
// multiply-add here, but not in the SIMD target, would silently break
// the bit-identity contract the dispatch tests pin down.
//
// The 4-lane blocked reductions are also simply fast scalar code: the
// four independent accumulators break the loop-carried addition
// dependency, so the compiler's auto-vectorizer and the CPU's OoO core
// can overlap them even in this "scalar" target.

#include "linalg/kernels/kernels.h"

namespace comparesets {
namespace {

double ScalarDot(const double* x, const double* y, size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  double total = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

double ScalarSumsq(const double* x, size_t n) { return ScalarDot(x, x, n); }

double ScalarSquaredDistance(const double* x, const double* y, size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double d0 = x[i] - y[i];
    double d1 = x[i + 1] - y[i + 1];
    double d2 = x[i + 2] - y[i + 2];
    double d3 = x[i + 3] - y[i + 3];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  double total = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) {
    double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

void ScalarAxpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarScale(double alpha, double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double ScalarGatherDot(const double* values, const size_t* rows, size_t nnz,
                       const double* dense) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= nnz; k += 4) {
    a0 += values[k] * dense[rows[k]];
    a1 += values[k + 1] * dense[rows[k + 1]];
    a2 += values[k + 2] * dense[rows[k + 2]];
    a3 += values[k + 3] * dense[rows[k + 3]];
  }
  double total = (a0 + a1) + (a2 + a3);
  for (; k < nnz; ++k) total += values[k] * dense[rows[k]];
  return total;
}

void ScalarGatherAxpy(double alpha, const double* src, const size_t* idx,
                      double* y, size_t n) {
  for (size_t t = 0; t < n; ++t) y[t] += alpha * src[idx[t]];
}

void ScalarScatterAdd(double alpha, const double* values, const size_t* rows,
                      size_t nnz, double* dense) {
  for (size_t k = 0; k < nnz; ++k) dense[rows[k]] += alpha * values[k];
}

void ScalarScatterSet(const double* values, const size_t* rows, size_t nnz,
                      double* dense) {
  for (size_t k = 0; k < nnz; ++k) dense[rows[k]] = values[k];
}

void ScalarScatterClear(const size_t* rows, size_t nnz, double* dense) {
  for (size_t k = 0; k < nnz; ++k) dense[rows[k]] = 0.0;
}

void ScalarSparseGemvT(const size_t* col_ptr, const size_t* row_idx,
                       const double* values, size_t cols, const double* x,
                       double* out) {
  for (size_t c = 0; c < cols; ++c) {
    size_t begin = col_ptr[c];
    out[c] = ScalarGatherDot(values + begin, row_idx + begin,
                             col_ptr[c + 1] - begin, x);
  }
}

void ScalarGramScatter(const size_t* col_ptr, const size_t* row_idx,
                       const double* values, size_t j, const double* scatter,
                       double* out_col) {
  for (size_t i = 0; i <= j; ++i) {
    size_t begin = col_ptr[i];
    out_col[i] = ScalarGatherDot(values + begin, row_idx + begin,
                                 col_ptr[i + 1] - begin, scatter);
  }
}

void ScalarColnormsSq(const size_t* col_ptr, const double* values, size_t cols,
                      double* out) {
  for (size_t c = 0; c < cols; ++c) {
    size_t begin = col_ptr[c];
    out[c] = ScalarSumsq(values + begin, col_ptr[c + 1] - begin);
  }
}

void ScalarTrsmForward(const double* l, size_t stride, size_t dim, double* b,
                       size_t nrhs) {
  for (size_t r = 0; r < dim; ++r) {
    double* br = b + r * nrhs;
    for (size_t c = 0; c < r; ++c) {
      double lrc = l[r * stride + c];
      const double* bc = b + c * nrhs;
      for (size_t k = 0; k < nrhs; ++k) br[k] -= lrc * bc[k];
    }
    double diag = l[r * stride + r];
    for (size_t k = 0; k < nrhs; ++k) br[k] /= diag;
  }
}

void ScalarTrsmBackward(const double* l, size_t stride, size_t dim, double* b,
                        size_t nrhs) {
  for (size_t r = dim; r-- > 0;) {
    double* br = b + r * nrhs;
    for (size_t c = r + 1; c < dim; ++c) {
      double lcr = l[c * stride + r];
      const double* bc = b + c * nrhs;
      for (size_t k = 0; k < nrhs; ++k) br[k] -= lcr * bc[k];
    }
    double diag = l[r * stride + r];
    for (size_t k = 0; k < nrhs; ++k) br[k] /= diag;
  }
}

}  // namespace

const KernelDispatch& ScalarKernels() {
  static const KernelDispatch kScalar = {
      "scalar",
      ScalarDot,
      ScalarSumsq,
      ScalarSquaredDistance,
      ScalarAxpy,
      ScalarScale,
      ScalarGatherDot,
      ScalarGatherAxpy,
      ScalarScatterAdd,
      ScalarScatterSet,
      ScalarScatterClear,
      ScalarSparseGemvT,
      ScalarGramScatter,
      ScalarColnormsSq,
      ScalarTrsmForward,
      ScalarTrsmBackward,
  };
  return kScalar;
}

}  // namespace comparesets
