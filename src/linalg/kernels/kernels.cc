// Kernel dispatch selection: CPUID once, environment override, and the
// test/bench hook for switching targets in-process. No floating-point
// code lives here — the implementations are in kernels_scalar.cc and
// kernels_avx2.cc, each compiled with its own flags.

#include "linalg/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace comparesets {

// Defined in kernels_avx2.cc; nullptr when the toolchain lacks AVX2.
const KernelDispatch* Avx2KernelsCompiled();

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// The CPUID-selected default: the widest target both the binary and
/// the CPU support.
const KernelDispatch& AutoKernels() {
  const KernelDispatch* avx2 = Avx2Kernels();
  return avx2 != nullptr ? *avx2 : ScalarKernels();
}

/// Resolves the COMPARESETS_KERNEL override (if any) on first use.
const KernelDispatch& ResolveStartupDispatch() {
  const char* env = std::getenv("COMPARESETS_KERNEL");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return AutoKernels();
  }
  if (std::strcmp(env, "scalar") == 0) return ScalarKernels();
  if (std::strcmp(env, "avx2") == 0) {
    const KernelDispatch* avx2 = Avx2Kernels();
    if (avx2 != nullptr) return *avx2;
    COMPARESETS_LOG(kWarning)
        << "COMPARESETS_KERNEL=avx2 requested but AVX2 is unavailable "
        << "on this build/CPU; falling back to scalar kernels";
    return ScalarKernels();
  }
  COMPARESETS_LOG(kWarning) << "Unknown COMPARESETS_KERNEL value '" << env
                            << "' (expected scalar|avx2|auto); using auto";
  return AutoKernels();
}

std::atomic<const KernelDispatch*> g_active{nullptr};

}  // namespace

const KernelDispatch& Kernels() {
  const KernelDispatch* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    // Benign race: every thread resolves to the same pointer.
    active = &ResolveStartupDispatch();
    g_active.store(active, std::memory_order_release);
  }
  return *active;
}

const KernelDispatch* Avx2Kernels() {
  const KernelDispatch* compiled = Avx2KernelsCompiled();
  if (compiled == nullptr || !CpuHasAvx2()) return nullptr;
  return compiled;
}

bool SetKernelDispatch(const char* name) {
  const KernelDispatch* target = nullptr;
  if (name != nullptr && std::strcmp(name, "scalar") == 0) {
    target = &ScalarKernels();
  } else if (name != nullptr && std::strcmp(name, "avx2") == 0) {
    target = Avx2Kernels();
  } else if (name != nullptr && std::strcmp(name, "auto") == 0) {
    target = &AutoKernels();
  }
  if (target == nullptr) return false;
  g_active.store(target, std::memory_order_release);
  return true;
}

}  // namespace comparesets
