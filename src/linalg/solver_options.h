// Backend selection for the Integer-Regression numeric core.

#pragma once

namespace comparesets {

struct SolverWorkspace;

/// Which NOMP/NNLS implementation the Integer-Regression engine runs.
enum class SolverBackend {
  /// Sparse design matrix + precomputed Gram system + incremental
  /// Cholesky refits. The production path.
  kGramIncremental,
  /// The original dense NOMP/NNLS/QR stack, run on the densified design
  /// matrix. Kept as the reference implementation the equivalence tests
  /// (and any numeric triage) compare against.
  kDenseReference,
};

struct SolverOptions {
  SolverBackend backend = SolverBackend::kGramIncremental;
  /// Scratch buffers to reuse across solves; nullptr uses the calling
  /// thread's SolverWorkspace::ThreadLocal().
  SolverWorkspace* workspace = nullptr;
};

}  // namespace comparesets
