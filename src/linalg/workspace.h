// Reusable per-thread scratch for the Gram-path solvers.
//
// The engine's batch path solves thousands of small systems back to
// back; allocating correlation buffers, passive-set flags and Cholesky
// storage per call dominated the small-system profile. A SolverWorkspace
// owns every scratch buffer SolveNompGram / SolveNnlsGram need; buffers
// are resized (never shrunk) per call, so a warm workspace allocates
// nothing. ThreadLocal() gives each pool worker its own instance.
//
// Lifetime and threading contract (docs/execution-model.md):
//  - A workspace is scratch only: every buffer is fully overwritten by
//    the solve that uses it, so which thread (and therefore which
//    workspace) a problem lands on can never change the result — this
//    is one leg of the parallel-equals-serial determinism guarantee.
//  - ThreadLocal() instances live for the thread's lifetime and stay
//    warm across requests; they are never shared between threads, so
//    no synchronization is needed or performed.
//  - A caller-supplied workspace must not be used from two threads at
//    once; the parallel solve loops always use ThreadLocal().

#pragma once

#include <cstddef>
#include <vector>

#include "linalg/cholesky.h"

namespace comparesets {

struct SolverWorkspace {
  // Gram-build scratch.
  /// Dense row-sized scatter buffer for BuildGramSystem. Invariant: all
  /// zero between builds (each build clears exactly the rows it set),
  /// so a warm buffer never needs re-zeroing.
  std::vector<double> gram_scatter;
  std::vector<double> gram_col;  ///< One Gram column during the build.

  // NOMP scratch.
  std::vector<double> nomp_corr;     ///< Correlation Vᵀy − Gx per column.
  std::vector<double> nomp_vty_sub;  ///< (Vᵀy)_support in selection order.
  std::vector<char> nomp_active;     ///< Column already in the support?

  // NNLS scratch.
  std::vector<double> nnls_x;        ///< Current iterate.
  std::vector<double> nnls_w;        ///< Dual Vᵀ(y − Vx).
  std::vector<double> nnls_z;        ///< Passive-set sub-solution.
  std::vector<double> nnls_rhs;      ///< (Vᵀy)_P in factor order.
  std::vector<double> nnls_solve;    ///< Cholesky solve output.
  std::vector<double> nnls_cross;    ///< Gram cross-terms for appends.
  std::vector<char> nnls_in_passive; ///< Variable in the passive set?
  std::vector<size_t> nnls_factor;   ///< Passive variables in factor order.
  std::vector<size_t> nnls_passive;  ///< Passive variables ascending.
  IncrementalCholesky chol;          ///< Factor of G_PP.

  /// The calling thread's lazily created workspace — what the solvers
  /// use when the caller passes none.
  static SolverWorkspace& ThreadLocal();
};

}  // namespace comparesets
