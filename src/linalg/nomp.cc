#include "linalg/nomp.h"

#include <algorithm>
#include <cmath>

#include "linalg/nnls.h"

namespace comparesets {

Result<NompResult> SolveNomp(const Matrix& v, const Vector& target,
                             size_t ell, const ExecControl* control) {
  if (v.cols() == 0 || v.rows() == 0) {
    return Status::InvalidArgument("NOMP with empty matrix");
  }
  if (target.size() != v.rows()) {
    return Status::InvalidArgument("NOMP target size mismatch");
  }
  if (ell == 0) {
    return Status::InvalidArgument("NOMP requires ell >= 1");
  }
  ell = std::min(ell, v.cols());

  // Precompute column norms for normalized correlation scoring; an
  // all-zero column can never reduce the residual and is skipped.
  std::vector<double> col_norms(v.cols());
  for (size_t j = 0; j < v.cols(); ++j) {
    col_norms[j] = v.Column(j).NormL2();
  }

  NompResult out;
  out.x = Vector(v.cols(), 0.0);
  Vector residual = target;
  std::vector<bool> active(v.cols(), false);

  NnlsOptions refit_options;
  refit_options.control = control;

  for (size_t step = 0; step < ell; ++step) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(control, "nomp"));
    // Score every inactive column by correlation with the residual.
    Vector correlation = v.MultiplyTranspose(residual);
    double best = 0.0;
    size_t best_j = v.cols();
    for (size_t j = 0; j < v.cols(); ++j) {
      if (active[j] || col_norms[j] == 0.0) continue;
      double score = correlation[j] / col_norms[j];
      if (score > best + 1e-15) {
        best = score;
        best_j = j;
      }
    }
    if (best_j == v.cols()) break;  // Nothing helps anymore.
    active[best_j] = true;
    out.support.push_back(best_j);

    // Refit all active coefficients jointly (the "orthogonal" step),
    // with non-negativity enforced.
    Matrix sub = v.SelectColumns(out.support);
    COMPARESETS_ASSIGN_OR_RETURN(NnlsResult fit,
                                 SolveNnls(sub, target, refit_options));
    Vector x(v.cols(), 0.0);
    for (size_t t = 0; t < out.support.size(); ++t) {
      x[out.support[t]] = fit.x[t];
    }
    out.x = std::move(x);
    residual = target - v.Multiply(out.x);
  }

  // Drop support entries whose refit coefficient collapsed to zero.
  std::vector<size_t> live;
  for (size_t j : out.support) {
    if (out.x[j] > 0.0) live.push_back(j);
  }
  out.support = std::move(live);
  out.residual_norm = residual.NormL2();
  return out;
}

}  // namespace comparesets
