#include "linalg/nomp.h"

#include <algorithm>
#include <cmath>

#include "linalg/nnls.h"
#include "linalg/workspace.h"

namespace comparesets {

Result<NompResult> SolveNomp(const Matrix& v, const Vector& target,
                             size_t ell, const ExecControl* control) {
  if (v.cols() == 0 || v.rows() == 0) {
    return Status::InvalidArgument("NOMP with empty matrix");
  }
  if (target.size() != v.rows()) {
    return Status::InvalidArgument("NOMP target size mismatch");
  }
  if (ell == 0) {
    return Status::InvalidArgument("NOMP requires ell >= 1");
  }
  ell = std::min(ell, v.cols());

  // Precompute column norms for normalized correlation scoring; an
  // all-zero column can never reduce the residual and is skipped.
  std::vector<double> col_norms(v.cols());
  for (size_t j = 0; j < v.cols(); ++j) {
    col_norms[j] = v.Column(j).NormL2();
  }

  NompResult out;
  out.x = Vector(v.cols(), 0.0);
  Vector residual = target;
  std::vector<bool> active(v.cols(), false);

  NnlsOptions refit_options;
  refit_options.control = control;

  for (size_t step = 0; step < ell; ++step) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(control, "nomp"));
    // Score every inactive column by correlation with the residual.
    Vector correlation = v.MultiplyTranspose(residual);
    double best = 0.0;
    size_t best_j = v.cols();
    for (size_t j = 0; j < v.cols(); ++j) {
      if (active[j] || col_norms[j] == 0.0) continue;
      double score = correlation[j] / col_norms[j];
      if (score > best + 1e-15) {
        best = score;
        best_j = j;
      }
    }
    if (best_j == v.cols()) break;  // Nothing helps anymore.
    active[best_j] = true;
    out.support.push_back(best_j);

    // Refit all active coefficients jointly (the "orthogonal" step),
    // with non-negativity enforced.
    Matrix sub = v.SelectColumns(out.support);
    COMPARESETS_ASSIGN_OR_RETURN(NnlsResult fit,
                                 SolveNnls(sub, target, refit_options));
    Vector x(v.cols(), 0.0);
    for (size_t t = 0; t < out.support.size(); ++t) {
      x[out.support[t]] = fit.x[t];
    }
    out.x = std::move(x);
    residual = target - v.Multiply(out.x);
  }

  // Drop support entries whose refit coefficient collapsed to zero.
  std::vector<size_t> live;
  for (size_t j : out.support) {
    if (out.x[j] > 0.0) live.push_back(j);
  }
  out.support = std::move(live);
  out.residual_norm = residual.NormL2();
  return out;
}

Result<NompResult> SolveNompGram(const GramSystem& system, size_t ell,
                                 const ExecControl* control,
                                 SolverWorkspace* workspace) {
  size_t q = system.cols();
  if (q == 0) {
    return Status::InvalidArgument("NOMP with empty gram system");
  }
  if (system.vty.size() != q) {
    return Status::InvalidArgument("NOMP gram rhs size mismatch");
  }
  if (ell == 0) {
    return Status::InvalidArgument("NOMP requires ell >= 1");
  }
  ell = std::min(ell, q);
  SolverWorkspace& ws =
      workspace != nullptr ? *workspace : SolverWorkspace::ThreadLocal();

  NompResult out;
  out.x = Vector(q, 0.0);
  std::vector<char>& active = ws.nomp_active;
  std::vector<double>& corr = ws.nomp_corr;
  std::vector<double>& vty_sub = ws.nomp_vty_sub;
  active.assign(q, 0);

  NnlsOptions refit_options;
  refit_options.control = control;

  for (size_t step = 0; step < ell; ++step) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(control, "nomp"));
    // Correlation with the residual, without forming it:
    // Vᵀ(y − Vx) = Vᵀy − Gx, an O(q·k) sweep over the support rows of G.
    corr.assign(system.vty.data().begin(), system.vty.data().end());
    for (size_t s : out.support) {
      double xs = out.x[s];
      if (xs == 0.0) continue;
      for (size_t j = 0; j < q; ++j) corr[j] -= system.gram(s, j) * xs;
    }
    double best = 0.0;
    size_t best_j = q;
    for (size_t j = 0; j < q; ++j) {
      if (active[j] || system.col_norms[j] == 0.0) continue;
      double score = corr[j] / system.col_norms[j];
      if (score > best + 1e-15) {
        best = score;
        best_j = j;
      }
    }
    if (best_j == q) break;  // Nothing helps anymore.
    active[best_j] = 1;
    out.support.push_back(best_j);

    // Refit all active coefficients jointly (the "orthogonal" step) on
    // the support's Gram block — no submatrix is ever materialized.
    vty_sub.resize(out.support.size());
    for (size_t t = 0; t < out.support.size(); ++t) {
      vty_sub[t] = system.vty[out.support[t]];
    }
    COMPARESETS_ASSIGN_OR_RETURN(
        NnlsResult fit,
        SolveNnlsGramSubset(system.gram, out.support, vty_sub.data(),
                            system.target_norm2, refit_options, &ws));
    Vector x(q, 0.0);
    for (size_t t = 0; t < out.support.size(); ++t) {
      x[out.support[t]] = fit.x[t];
    }
    out.x = std::move(x);
  }

  // Drop support entries whose refit coefficient collapsed to zero.
  std::vector<size_t> live;
  for (size_t j : out.support) {
    if (out.x[j] > 0.0) live.push_back(j);
  }
  out.support = std::move(live);

  // ‖Vx − y‖² = ‖y‖² − 2 xᵀVᵀy + xᵀGx, clamped against cancellation of
  // nearly equal terms.
  double xv = 0.0;
  double xgx = 0.0;
  for (size_t i : out.support) {
    xv += out.x[i] * system.vty[i];
    for (size_t j : out.support) {
      xgx += out.x[i] * system.gram(i, j) * out.x[j];
    }
  }
  out.residual_norm =
      std::sqrt(std::max(0.0, system.target_norm2 - 2.0 * xv + xgx));
  return out;
}

}  // namespace comparesets
