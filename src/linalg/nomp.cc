#include "linalg/nomp.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels/kernels.h"
#include "linalg/nnls.h"
#include "linalg/workspace.h"

namespace comparesets {

Result<NompResult> SolveNomp(const Matrix& v, const Vector& target,
                             size_t ell, const ExecControl* control) {
  if (v.cols() == 0 || v.rows() == 0) {
    return Status::InvalidArgument("NOMP with empty matrix");
  }
  if (target.size() != v.rows()) {
    return Status::InvalidArgument("NOMP target size mismatch");
  }
  if (ell == 0) {
    return Status::InvalidArgument("NOMP requires ell >= 1");
  }
  ell = std::min(ell, v.cols());

  // Precompute column norms for normalized correlation scoring; an
  // all-zero column can never reduce the residual and is skipped.
  std::vector<double> col_norms(v.cols());
  for (size_t j = 0; j < v.cols(); ++j) {
    col_norms[j] = v.Column(j).NormL2();
  }

  NompResult out;
  out.x = Vector(v.cols(), 0.0);
  Vector residual = target;
  std::vector<bool> active(v.cols(), false);

  NnlsOptions refit_options;
  refit_options.control = control;

  for (size_t step = 0; step < ell; ++step) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(control, "nomp"));
    // Score every inactive column by correlation with the residual.
    Vector correlation = v.MultiplyTranspose(residual);
    double best = 0.0;
    size_t best_j = v.cols();
    for (size_t j = 0; j < v.cols(); ++j) {
      if (active[j] || col_norms[j] == 0.0) continue;
      double score = correlation[j] / col_norms[j];
      if (score > best + 1e-15) {
        best = score;
        best_j = j;
      }
    }
    if (best_j == v.cols()) break;  // Nothing helps anymore.
    active[best_j] = true;
    out.support.push_back(best_j);

    // Refit all active coefficients jointly (the "orthogonal" step),
    // with non-negativity enforced.
    Matrix sub = v.SelectColumns(out.support);
    COMPARESETS_ASSIGN_OR_RETURN(NnlsResult fit,
                                 SolveNnls(sub, target, refit_options));
    Vector x(v.cols(), 0.0);
    for (size_t t = 0; t < out.support.size(); ++t) {
      x[out.support[t]] = fit.x[t];
    }
    out.x = std::move(x);
    residual = target - v.Multiply(out.x);
  }

  // Drop support entries whose refit coefficient collapsed to zero.
  std::vector<size_t> live;
  for (size_t j : out.support) {
    if (out.x[j] > 0.0) live.push_back(j);
  }
  out.support = std::move(live);
  out.residual_norm = residual.NormL2();
  return out;
}

Result<NompResult> SolveNompGram(const GramSystem& system, size_t ell,
                                 const ExecControl* control,
                                 SolverWorkspace* workspace) {
  size_t q = system.cols();
  if (q == 0) {
    return Status::InvalidArgument("NOMP with empty gram system");
  }
  if (system.vty.size() != q) {
    return Status::InvalidArgument("NOMP gram rhs size mismatch");
  }
  if (ell == 0) {
    return Status::InvalidArgument("NOMP requires ell >= 1");
  }
  ell = std::min(ell, q);
  SolverWorkspace& ws =
      workspace != nullptr ? *workspace : SolverWorkspace::ThreadLocal();

  NompResult out;
  out.x = Vector(q, 0.0);
  std::vector<char>& active = ws.nomp_active;
  std::vector<double>& corr = ws.nomp_corr;
  std::vector<double>& vty_sub = ws.nomp_vty_sub;
  active.assign(q, 0);

  NnlsOptions refit_options;
  refit_options.control = control;

  for (size_t step = 0; step < ell; ++step) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(control, "nomp"));
    // Correlation with the residual, without forming it:
    // Vᵀ(y − Vx) = Vᵀy − Gx, one kernel row-axpy per support column.
    corr.assign(system.vty.data().begin(), system.vty.data().end());
    for (size_t s : out.support) {
      double xs = out.x[s];
      if (xs == 0.0) continue;
      Kernels().axpy(-xs, system.gram.RowData(s), corr.data(), q);
    }
    double best = 0.0;
    size_t best_j = q;
    for (size_t j = 0; j < q; ++j) {
      if (active[j] || system.col_norms[j] == 0.0) continue;
      double score = corr[j] / system.col_norms[j];
      if (score > best + 1e-15) {
        best = score;
        best_j = j;
      }
    }
    if (best_j == q) break;  // Nothing helps anymore.
    active[best_j] = 1;
    out.support.push_back(best_j);

    // Refit all active coefficients jointly (the "orthogonal" step) on
    // the support's Gram block — no submatrix is ever materialized.
    vty_sub.resize(out.support.size());
    for (size_t t = 0; t < out.support.size(); ++t) {
      vty_sub[t] = system.vty[out.support[t]];
    }
    COMPARESETS_ASSIGN_OR_RETURN(
        NnlsResult fit,
        SolveNnlsGramSubset(system.gram, out.support, vty_sub.data(),
                            system.target_norm2, refit_options, &ws));
    Vector x(q, 0.0);
    for (size_t t = 0; t < out.support.size(); ++t) {
      x[out.support[t]] = fit.x[t];
    }
    out.x = std::move(x);
  }

  // Drop support entries whose refit coefficient collapsed to zero.
  std::vector<size_t> live;
  for (size_t j : out.support) {
    if (out.x[j] > 0.0) live.push_back(j);
  }
  out.support = std::move(live);

  // ‖Vx − y‖² = ‖y‖² − 2 xᵀVᵀy + xᵀGx, clamped against cancellation of
  // nearly equal terms.
  double xv = 0.0;
  double xgx = 0.0;
  for (size_t i : out.support) {
    xv += out.x[i] * system.vty[i];
    for (size_t j : out.support) {
      xgx += out.x[i] * system.gram(i, j) * out.x[j];
    }
  }
  out.residual_norm =
      std::sqrt(std::max(0.0, system.target_norm2 - 2.0 * xv + xgx));
  return out;
}

Result<std::vector<NompResult>> SolveNompGramSweep(
    const GramSystem& system, size_t max_ell, const ExecControl* control,
    SolverWorkspace* workspace) {
  size_t q = system.cols();
  if (q == 0) {
    return Status::InvalidArgument("NOMP with empty gram system");
  }
  if (system.vty.size() != q) {
    return Status::InvalidArgument("NOMP gram rhs size mismatch");
  }
  if (max_ell == 0) {
    return Status::InvalidArgument("NOMP requires ell >= 1");
  }
  max_ell = std::min(max_ell, q);
  SolverWorkspace& ws =
      workspace != nullptr ? *workspace : SolverWorkspace::ThreadLocal();

  std::vector<NompResult> snapshots;
  snapshots.reserve(max_ell);

  Vector x(q, 0.0);
  std::vector<size_t> support;
  std::vector<char>& active = ws.nomp_active;
  std::vector<double>& corr = ws.nomp_corr;
  std::vector<double>& vty_sub = ws.nomp_vty_sub;
  active.assign(q, 0);

  NnlsOptions refit_options;
  refit_options.control = control;

  for (size_t step = 0; step < max_ell; ++step) {
    COMPARESETS_RETURN_NOT_OK(CheckExec(control, "nomp"));
    // Identical step body to SolveNompGram — the budget only ever
    // bounds how many times it runs, never what it computes.
    corr.assign(system.vty.data().begin(), system.vty.data().end());
    for (size_t s : support) {
      double xs = x[s];
      if (xs == 0.0) continue;
      Kernels().axpy(-xs, system.gram.RowData(s), corr.data(), q);
    }
    double best = 0.0;
    size_t best_j = q;
    for (size_t j = 0; j < q; ++j) {
      if (active[j] || system.col_norms[j] == 0.0) continue;
      double score = corr[j] / system.col_norms[j];
      if (score > best + 1e-15) {
        best = score;
        best_j = j;
      }
    }
    if (best_j == q) break;  // Stalled: every later budget stalls here too.
    active[best_j] = 1;
    support.push_back(best_j);

    vty_sub.resize(support.size());
    for (size_t t = 0; t < support.size(); ++t) {
      vty_sub[t] = system.vty[support[t]];
    }
    auto fit = SolveNnlsGramSubset(system.gram, support, vty_sub.data(),
                                   system.target_norm2, refit_options, &ws);
    if (!fit.ok()) {
      StatusCode code = fit.status().code();
      if (code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kCancelled) {
        return fit.status();
      }
      // Recoverable degeneracy at this step: every budget ≥ step+1 would
      // fail the same refit, so the completed prefix is the whole answer.
      return snapshots;
    }
    Vector next(q, 0.0);
    for (size_t t = 0; t < support.size(); ++t) {
      next[support[t]] = fit.value().x[t];
    }
    x = std::move(next);

    // Snapshot for ℓ = step + 1: prune-on-copy plus the Gram-form
    // residual, exactly as SolveNompGram finishes.
    NompResult snap;
    snap.x = x;
    for (size_t j : support) {
      if (x[j] > 0.0) snap.support.push_back(j);
    }
    double xv = 0.0;
    double xgx = 0.0;
    for (size_t i : snap.support) {
      xv += snap.x[i] * system.vty[i];
      for (size_t j : snap.support) {
        xgx += snap.x[i] * system.gram(i, j) * snap.x[j];
      }
    }
    snap.residual_norm =
        std::sqrt(std::max(0.0, system.target_norm2 - 2.0 * xv + xgx));
    snapshots.push_back(std::move(snap));
  }

  // The pursuit stalled before exhausting the budgets: SolveNompGram(ℓ)
  // for any larger ℓ runs the same steps and stalls at the same place,
  // so the remaining budgets repeat the last state.
  while (snapshots.size() < max_ell) {
    if (snapshots.empty()) {
      NompResult empty;
      empty.x = Vector(q, 0.0);
      empty.residual_norm = std::sqrt(std::max(0.0, system.target_norm2));
      snapshots.push_back(std::move(empty));
    } else {
      snapshots.push_back(snapshots.back());
    }
  }
  return snapshots;
}

}  // namespace comparesets
