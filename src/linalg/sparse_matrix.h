// Sparse column-major (CSC) matrix. Design matrices in this library are
// stacks of 0/1 aspect indicators plus a short opinion block, so most
// entries are zero; storing only the nonzeros makes the Gram build and
// the NOMP correlation kernels O(nnz) instead of O(rows·cols).
//
// Columns are append-only (the design-matrix builders emit one column
// per review group); rows are fixed at construction. A dense seam
// (FromDense / ToDense) connects to the legacy dense solver stack, which
// stays available as a reference implementation.

#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace comparesets {

/// One nonzero of a sparse column: (row, value).
struct SparseEntry {
  size_t row = 0;
  double value = 0.0;

  friend bool operator==(const SparseEntry&, const SparseEntry&) = default;
};

/// A sparse column as its nonzeros in strictly increasing row order.
using SparseColumn = std::vector<SparseEntry>;

class SparseMatrix {
 public:
  SparseMatrix() = default;
  /// An empty matrix with a fixed row count and no columns yet.
  explicit SparseMatrix(size_t rows) : rows_(rows) {}

  /// Converts a dense matrix, dropping exact zeros.
  static SparseMatrix FromDense(const Matrix& dense);
  /// Materializes the dense equivalent (the reference-solver seam).
  Matrix ToDense() const;

  /// Appends one column. Entries must be in strictly increasing row
  /// order with rows < rows(); zero values are permitted but wasteful.
  void AppendColumn(const SparseColumn& column);

  size_t rows() const { return rows_; }
  size_t cols() const { return col_ptr_.size() - 1; }
  size_t nnz() const { return values_.size(); }

  /// Element access by (row, col): O(nnz of the column) scan. Meant for
  /// tests and debugging, not kernels.
  double operator()(size_t r, size_t c) const;

  /// Copies out column c as a dense vector.
  Vector Column(size_t c) const;

  /// Number of nonzeros stored in column c.
  size_t ColumnNnz(size_t c) const { return col_ptr_[c + 1] - col_ptr_[c]; }

  /// Row indices / values of column c (ColumnNnz(c) entries each).
  const size_t* ColumnRows(size_t c) const { return &row_idx_[col_ptr_[c]]; }
  const double* ColumnValues(size_t c) const { return &values_[col_ptr_[c]]; }

  /// Raw CSC arrays (cols()+1 / nnz() / nnz() entries) — the seam the
  /// kernel-dispatch layer works through.
  const size_t* ColPtr() const { return col_ptr_.data(); }
  const size_t* RowIdx() const { return row_idx_.data(); }
  const double* Values() const { return values_.data(); }

  /// ⟨column c, x⟩ for a dense x of size rows().
  double ColumnDot(size_t c, const Vector& x) const;

  /// y = A x.
  Vector Multiply(const Vector& x) const;
  /// y = Aᵀ x.
  Vector MultiplyTranspose(const Vector& x) const;
  /// y = Aᵀ x written into a caller-provided vector (resized to cols());
  /// the workspace variant the solver hot loops use to avoid allocating.
  void MultiplyTranspose(const Vector& x, Vector* out) const;

  /// L2 norm of every column, without materializing Column(j) copies.
  std::vector<double> ColumnNorms() const;

  /// Approximate heap footprint (entries only, for cache accounting).
  size_t ApproxMemoryBytes() const {
    return col_ptr_.size() * sizeof(size_t) +
           row_idx_.size() * sizeof(size_t) + values_.size() * sizeof(double);
  }

 private:
  size_t rows_ = 0;
  /// col_ptr_[c]..col_ptr_[c+1] indexes column c's entries; one past the
  /// last column so cols() and spans need no special cases.
  std::vector<size_t> col_ptr_{0};
  std::vector<size_t> row_idx_;
  std::vector<double> values_;
};

}  // namespace comparesets
