// NOMP — Non-negative Orthogonal Matching Pursuit.
//
// Solves the sparsity-constrained non-negative regression at the heart of
// the Integer-Regression algorithm (Lappas et al., KDD'12; Algorithm 1 of
// the CompaReSetS paper):
//
//   find x >= 0 with 0 < ||x||_0 <= ell minimizing ||V x - target||_2.
//
// Greedy: at each step, add the column most correlated with the current
// residual, then refit all active coefficients with NNLS. The residual
// norm is non-increasing over steps (tested as a property).

#pragma once

#include <vector>

#include "linalg/gram.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace comparesets {

struct SolverWorkspace;

struct NompResult {
  /// Full-size coefficient vector (zeros outside the support).
  Vector x;
  /// Chosen column indices in selection order.
  std::vector<size_t> support;
  /// ||Vx - target||_2 at the solution.
  double residual_norm;
};

/// Runs NOMP with at most `ell` atoms. Stops early when no remaining
/// column has positive correlation with the residual. `control` is
/// checked at every atom step (and inside the NNLS refit); expiry or
/// cancellation returns the matching status mid-pursuit.
Result<NompResult> SolveNomp(const Matrix& v, const Vector& target,
                             size_t ell,
                             const ExecControl* control = nullptr);

/// The same pursuit run entirely on a precomputed GramSystem: the
/// correlation of every column with the residual is Vᵀy − Gx (an O(q·k)
/// update, independent of the row count), and each refit is a
/// SolveNnlsGramSubset over the current support with incremental
/// Cholesky factors. Identical supports/coefficients to SolveNomp up to
/// floating-point reassociation (enforced by the equivalence tests).
/// `workspace` (nullptr = thread-local) supplies reusable scratch.
Result<NompResult> SolveNompGram(const GramSystem& system, size_t ell,
                                 const ExecControl* control = nullptr,
                                 SolverWorkspace* workspace = nullptr);

/// Every budget ℓ = 1..max_ell of SolveNompGram in ONE pursuit. The
/// greedy state after step s never depends on the budget (the loop body
/// reads only the support and coefficients), so one pass snapshots the
/// per-ℓ results as it goes — collapsing the per-budget caller's
/// O(max_ell²/2) NNLS refits to O(max_ell) — and each snapshot is
/// bit-identical to SolveNompGram(ℓ) on the same system (pinned by the
/// equivalence tests). Pursuits that stall early replicate their final
/// state through the remaining budgets, exactly as the per-ℓ calls
/// would stall. On a recoverable refit failure at step s the sweep
/// returns the completed prefix (budgets 1..s) — the budgets a per-ℓ
/// caller would have skipped error out of the result instead.
/// Deadline expiry / cancellation surface as status.
Result<std::vector<NompResult>> SolveNompGramSweep(
    const GramSystem& system, size_t max_ell,
    const ExecControl* control = nullptr,
    SolverWorkspace* workspace = nullptr);

}  // namespace comparesets
