// Review annotator: turns raw review text into OpinionMention lists
// using an aspect lexicon and a sentiment lexicon, with sentence-level
// association and negation flipping. This is the pipeline stage the
// paper treats as given; it lets raw datasets flow into the selectors.

#pragma once

#include <string>
#include <vector>

#include "data/catalog.h"
#include "data/review.h"
#include "nlp/lexicon.h"
#include "nlp/sentiment_lexicon.h"

namespace comparesets {

struct AnnotatorOptions {
  /// A negator within this many tokens before an opinion word flips it.
  size_t negation_window = 3;
  /// Opinion strength below which a mention is recorded as neutral.
  double neutral_threshold = 0.0;
};

class ReviewAnnotator {
 public:
  ReviewAnnotator(const AspectLexicon* aspects,
                  const SentimentLexicon* sentiment,
                  AspectCatalog* catalog, AnnotatorOptions options = {})
      : aspects_(aspects),
        sentiment_(sentiment),
        catalog_(catalog),
        options_(options) {}

  /// Produces opinion mentions for `text`. Aspect names are interned
  /// into the shared catalog. Per sentence: every aspect term found is
  /// paired with the sentence's net (negation-adjusted) sentiment; a
  /// sentence with no opinion words yields neutral mentions.
  std::vector<OpinionMention> Annotate(const std::string& text) const;

 private:
  const AspectLexicon* aspects_;
  const SentimentLexicon* sentiment_;
  AspectCatalog* catalog_;
  AnnotatorOptions options_;
};

}  // namespace comparesets
