// Aspect lexicon: maps surface terms to canonical aspect names.
//
// The paper takes aspect annotations "as given" (§4.1.1, frequency-based
// extraction following Gao et al. with Microsoft Concepts). This module
// provides the equivalent machinery so raw review text can be annotated:
// a term → aspect mapping, populated either by hand, from category
// defaults, or by MineAspectLexicon (nlp/aspect_extractor.h).

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace comparesets {

class AspectLexicon {
 public:
  /// Registers `term` (lowercased, stemmed form) as a surface form of
  /// `aspect`. Re-registering a term to a different aspect is an error.
  Status AddTerm(const std::string& term, const std::string& aspect);

  /// Canonical aspect for a term, or empty string when unknown.
  const std::string& AspectOf(const std::string& term) const;

  bool Contains(const std::string& term) const {
    return term_to_aspect_.count(term) > 0;
  }

  size_t num_terms() const { return term_to_aspect_.size(); }

  /// Distinct aspect names, sorted.
  std::vector<std::string> Aspects() const;

 private:
  std::unordered_map<std::string, std::string> term_to_aspect_;
};

}  // namespace comparesets
