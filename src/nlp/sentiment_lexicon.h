// Sentiment lexicon: opinion words with signed strengths, plus negation
// handling, in the spirit of Hu & Liu's opinion-word lists.

#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace comparesets {

class SentimentLexicon {
 public:
  /// Registers a word with a signed strength (>0 positive, <0 negative).
  /// Later registrations overwrite earlier ones.
  void AddWord(const std::string& word, double strength);

  /// Signed strength of a word; 0 when not an opinion word.
  double StrengthOf(const std::string& word) const;

  bool IsOpinionWord(const std::string& word) const {
    return strengths_.count(word) > 0;
  }

  /// True for negators ("not", "never", "no", ...) that flip the polarity
  /// of opinion words within a short window.
  bool IsNegator(const std::string& word) const;

  size_t size() const { return strengths_.size(); }

  /// The built-in general-domain English lexicon (~180 words).
  static const SentimentLexicon& Default();

 private:
  std::unordered_map<std::string, double> strengths_;
};

}  // namespace comparesets
