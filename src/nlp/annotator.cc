#include "nlp/annotator.h"

#include <cmath>
#include <unordered_set>

#include "text/tokenizer.h"

namespace comparesets {

std::vector<OpinionMention> ReviewAnnotator::Annotate(
    const std::string& text) const {
  std::vector<OpinionMention> mentions;
  TokenizerOptions tok;
  tok.light_stem = true;

  // Deduplicate (aspect, polarity) pairs across the review; keep the
  // strongest mention of each.
  std::unordered_set<int64_t> seen;

  for (const std::string& sentence : SplitSentences(text)) {
    std::vector<std::string> tokens = Tokenize(sentence, tok);

    // Net sentence sentiment with negation flipping.
    double net = 0.0;
    for (size_t i = 0; i < tokens.size(); ++i) {
      double strength = sentiment_->StrengthOf(tokens[i]);
      if (strength == 0.0) continue;
      size_t window_start =
          i >= options_.negation_window ? i - options_.negation_window : 0;
      bool negated = false;
      for (size_t j = window_start; j < i; ++j) {
        if (sentiment_->IsNegator(tokens[j])) {
          negated = !negated;  // Double negation cancels.
        }
      }
      net += negated ? -strength : strength;
    }

    Polarity polarity = Polarity::kNeutral;
    if (net > options_.neutral_threshold) polarity = Polarity::kPositive;
    else if (net < -options_.neutral_threshold) polarity = Polarity::kNegative;

    for (const std::string& token : tokens) {
      const std::string& aspect_name = aspects_->AspectOf(token);
      if (aspect_name.empty()) continue;
      AspectId aspect = catalog_->Intern(aspect_name);
      int64_t key = static_cast<int64_t>(aspect) * 4 +
                    static_cast<int64_t>(polarity);
      if (!seen.insert(key).second) continue;
      OpinionMention mention;
      mention.aspect = aspect;
      mention.polarity = polarity;
      mention.strength = std::fabs(net) > 0.0 ? std::fabs(net) : 1.0;
      mentions.push_back(mention);
    }
  }
  return mentions;
}

}  // namespace comparesets
