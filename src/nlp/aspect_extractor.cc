#include "nlp/aspect_extractor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace comparesets {

double PresenceRatingCorrelation(const std::vector<bool>& presence,
                                 const std::vector<double>& ratings) {
  size_t n = presence.size();
  if (n == 0 || n != ratings.size()) return 0.0;
  double mean_p = 0.0;
  double mean_r = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_p += presence[i] ? 1.0 : 0.0;
    mean_r += ratings[i];
  }
  mean_p /= n;
  mean_r /= n;
  double cov = 0.0;
  double var_p = 0.0;
  double var_r = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dp = (presence[i] ? 1.0 : 0.0) - mean_p;
    double dr = ratings[i] - mean_r;
    cov += dp * dr;
    var_p += dp * dp;
    var_r += dr * dr;
  }
  if (var_p <= 0.0 || var_r <= 0.0) return 0.0;
  return std::fabs(cov / std::sqrt(var_p * var_r));
}

Result<AspectLexicon> MineAspectLexicon(const std::vector<RatedText>& reviews,
                                        const SentimentLexicon& sentiment,
                                        const AspectMiningOptions& options) {
  if (reviews.empty()) {
    return Status::InvalidArgument("cannot mine aspects from zero reviews");
  }

  TokenizerOptions tok;
  tok.light_stem = true;
  tok.min_token_length = 3;

  // Pass 1: per-review distinct stemmed tokens; global review frequency.
  std::vector<std::vector<std::string>> review_terms;
  review_terms.reserve(reviews.size());
  std::unordered_map<std::string, size_t> review_frequency;
  for (const RatedText& review : reviews) {
    std::unordered_set<std::string> distinct;
    for (const std::string& token : Tokenize(review.text, tok)) {
      if (IsStopword(token)) continue;
      if (sentiment.IsOpinionWord(token)) continue;  // Opinion, not aspect.
      if (sentiment.IsNegator(token)) continue;
      distinct.insert(token);
    }
    review_terms.emplace_back(distinct.begin(), distinct.end());
    for (const std::string& term : review_terms.back()) {
      ++review_frequency[term];
    }
  }

  // Rank candidates by frequency, keep the top pool.
  std::vector<std::pair<std::string, size_t>> candidates;
  candidates.reserve(review_frequency.size());
  for (const auto& [term, freq] : review_frequency) {
    if (freq >= options.min_review_frequency) candidates.emplace_back(term, freq);
  }
  std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // Deterministic tie-break.
  });
  if (candidates.size() > options.max_candidates) {
    candidates.resize(options.max_candidates);
  }

  // Pass 2: rank the pool by |correlation(presence, rating)|.
  std::vector<double> ratings;
  ratings.reserve(reviews.size());
  for (const RatedText& review : reviews) ratings.push_back(review.rating);

  std::unordered_map<std::string, size_t> candidate_index;
  for (size_t c = 0; c < candidates.size(); ++c) {
    candidate_index.emplace(candidates[c].first, c);
  }
  std::vector<std::vector<bool>> presence(
      candidates.size(), std::vector<bool>(reviews.size(), false));
  for (size_t r = 0; r < review_terms.size(); ++r) {
    for (const std::string& term : review_terms[r]) {
      auto it = candidate_index.find(term);
      if (it != candidate_index.end()) presence[it->second][r] = true;
    }
  }

  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    scored.emplace_back(PresenceRatingCorrelation(presence[c], ratings), c);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });

  AspectLexicon lexicon;
  size_t keep = std::min(options.max_aspects, scored.size());
  for (size_t s = 0; s < keep; ++s) {
    const std::string& term = candidates[scored[s].second].first;
    COMPARESETS_RETURN_NOT_OK(lexicon.AddTerm(term, term));
  }
  return lexicon;
}

}  // namespace comparesets
