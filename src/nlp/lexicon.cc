#include "nlp/lexicon.h"

#include <algorithm>
#include <set>

namespace comparesets {

Status AspectLexicon::AddTerm(const std::string& term,
                              const std::string& aspect) {
  auto [it, inserted] = term_to_aspect_.emplace(term, aspect);
  if (!inserted && it->second != aspect) {
    return Status::AlreadyExists("term '" + term + "' already maps to '" +
                                 it->second + "'");
  }
  return Status::OK();
}

const std::string& AspectLexicon::AspectOf(const std::string& term) const {
  static const std::string* kEmpty = new std::string();
  auto it = term_to_aspect_.find(term);
  return it == term_to_aspect_.end() ? *kEmpty : it->second;
}

std::vector<std::string> AspectLexicon::Aspects() const {
  std::set<std::string> unique;
  for (const auto& [term, aspect] : term_to_aspect_) unique.insert(aspect);
  return std::vector<std::string>(unique.begin(), unique.end());
}

}  // namespace comparesets
