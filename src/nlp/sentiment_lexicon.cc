#include "nlp/sentiment_lexicon.h"

namespace comparesets {

void SentimentLexicon::AddWord(const std::string& word, double strength) {
  strengths_[word] = strength;
}

double SentimentLexicon::StrengthOf(const std::string& word) const {
  auto it = strengths_.find(word);
  return it == strengths_.end() ? 0.0 : it->second;
}

bool SentimentLexicon::IsNegator(const std::string& word) const {
  static const std::unordered_set<std::string>* kNegators =
      new std::unordered_set<std::string>{
          "not", "no", "never", "hardly", "barely", "cant", "cannot",
          "dont", "doesnt", "didnt", "wont", "wasnt", "isnt", "arent",
          "werent", "without",
      };
  return kNegators->count(word) > 0;
}

const SentimentLexicon& SentimentLexicon::Default() {
  static const SentimentLexicon* kDefault = [] {
    auto* lex = new SentimentLexicon();
    // Positive opinion words (strength reflects intensity).
    const std::pair<const char*, double> kPositive[] = {
        {"good", 1.0},        {"great", 1.5},      {"excellent", 2.0},
        {"amazing", 2.0},     {"awesome", 2.0},    {"perfect", 2.0},
        {"love", 1.8},        {"loved", 1.8},      {"loves", 1.8},
        {"like", 0.8},        {"liked", 0.8},      {"nice", 1.0},
        {"fantastic", 2.0},   {"wonderful", 1.8},  {"best", 1.8},
        {"better", 1.0},      {"comfortable", 1.3}, {"comfy", 1.2},
        {"sturdy", 1.3},      {"solid", 1.2},      {"durable", 1.3},
        {"fast", 1.0},        {"quick", 1.0},      {"quickly", 1.0},
        {"easy", 1.0},        {"easily", 1.0},     {"happy", 1.3},
        {"satisfied", 1.3},   {"pleased", 1.3},    {"recommend", 1.4},
        {"recommended", 1.4}, {"beautiful", 1.5},  {"gorgeous", 1.6},
        {"cute", 1.1},        {"stylish", 1.2},    {"soft", 1.0},
        {"bright", 1.0},      {"crisp", 1.1},      {"clear", 1.0},
        {"accurate", 1.2},    {"reliable", 1.3},   {"affordable", 1.1},
        {"cheap", 0.6},       {"bargain", 1.2},    {"worth", 1.1},
        {"impressive", 1.5},  {"impressed", 1.5},  {"superb", 1.8},
        {"smooth", 1.0},      {"lightweight", 1.0}, {"light", 0.7},
        {"works", 0.9},       {"worked", 0.9},     {"well", 0.8},
        {"fun", 1.2},         {"enjoy", 1.2},      {"enjoyed", 1.2},
        {"enjoys", 1.2},      {"strong", 1.1},     {"quality", 0.8},
        {"premium", 1.3},     {"vivid", 1.2},      {"responsive", 1.2},
        {"handy", 1.0},       {"convenient", 1.1}, {"secure", 1.0},
        {"snug", 0.9},        {"true", 0.8},       {"compliments", 1.2},
        {"glad", 1.1},        {"favorite", 1.4},   {"thrilled", 1.7},
        {"delighted", 1.7},   {"super", 1.3},      {"brilliant", 1.6},
    };
    // Negative opinion words.
    const std::pair<const char*, double> kNegative[] = {
        {"bad", -1.0},          {"poor", -1.3},        {"terrible", -2.0},
        {"horrible", -2.0},     {"awful", -2.0},       {"worst", -2.0},
        {"worse", -1.2},        {"hate", -1.8},        {"hated", -1.8},
        {"disappointing", -1.5}, {"disappointed", -1.5}, {"disappointment", -1.5},
        {"broke", -1.6},        {"broken", -1.6},      {"breaks", -1.5},
        {"flimsy", -1.4},       {"fragile", -1.1},     {"defective", -1.8},
        {"useless", -1.7},      {"waste", -1.6},       {"wasted", -1.6},
        {"slow", -1.0},         {"slowly", -1.0},      {"difficult", -1.1},
        {"hard", -0.7},         {"uncomfortable", -1.4}, {"tight", -0.7},
        {"loose", -0.8},        {"small", -0.5},       {"smaller", -0.6},
        {"big", -0.4},          {"huge", -0.6},        {"heavy", -0.7},
        {"blurry", -1.3},       {"dim", -0.9},         {"dull", -1.0},
        {"noisy", -1.1},        {"cheaply", -1.2},     {"overpriced", -1.4},
        {"expensive", -0.9},    {"pricey", -0.8},      {"faulty", -1.7},
        {"failed", -1.5},       {"fails", -1.5},       {"fail", -1.4},
        {"stopped", -1.3},      {"stuck", -1.2},       {"scratched", -1.2},
        {"scratches", -1.1},    {"cracked", -1.5},     {"torn", -1.4},
        {"ripped", -1.4},       {"faded", -1.1},       {"fades", -1.0},
        {"itchy", -1.2},        {"scratchy", -1.2},    {"stiff", -0.9},
        {"wrong", -1.1},        {"missing", -1.3},     {"returned", -1.1},
        {"return", -0.8},       {"refund", -1.0},      {"junk", -1.8},
        {"garbage", -1.8},      {"trash", -1.7},       {"misleading", -1.4},
        {"annoying", -1.2},     {"frustrating", -1.4}, {"regret", -1.4},
        {"leaks", -1.3},        {"leaked", -1.3},      {"unusable", -1.8},
        {"unreliable", -1.5},   {"weak", -1.0},        {"thin", -0.6},
    };
    for (const auto& [word, strength] : kPositive) {
      lex->AddWord(word, strength);
    }
    for (const auto& [word, strength] : kNegative) {
      lex->AddWord(word, strength);
    }
    return lex;
  }();
  return *kDefault;
}

}  // namespace comparesets
