// Frequency-based aspect mining (§4.1.1 of the paper, following the
// Gao et al. recipe): collect frequent non-stopword, non-opinion terms
// from a review corpus, rank them by correlation of their presence with
// the review star rating, and keep the top slice as aspects.

#pragma once

#include <string>
#include <vector>

#include "nlp/lexicon.h"
#include "nlp/sentiment_lexicon.h"
#include "util/status.h"

namespace comparesets {

struct AspectMiningOptions {
  /// Candidate pool size: the top-N most frequent terms (paper: 2000).
  size_t max_candidates = 2000;
  /// Final aspect count after correlation ranking (paper: 500).
  size_t max_aspects = 500;
  /// Terms appearing in fewer reviews than this are dropped.
  size_t min_review_frequency = 3;
};

/// (text, rating) pairs; ratings in [1, 5] drive the correlation ranking.
struct RatedText {
  std::string text;
  double rating = 0.0;
};

/// Mines an aspect lexicon from raw rated review text. Each mined term
/// becomes its own aspect (surface form == canonical name, stemmed).
Result<AspectLexicon> MineAspectLexicon(
    const std::vector<RatedText>& reviews,
    const SentimentLexicon& sentiment = SentimentLexicon::Default(),
    const AspectMiningOptions& options = {});

/// |Pearson correlation| between a term's review-presence indicator and
/// the ratings. Exposed for testing.
double PresenceRatingCorrelation(const std::vector<bool>& presence,
                                 const std::vector<double>& ratings);

}  // namespace comparesets
