#include "opinion/opinion_model.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace comparesets {

const char* OpinionDefinitionName(OpinionDefinition definition) {
  switch (definition) {
    case OpinionDefinition::kBinary:
      return "binary";
    case OpinionDefinition::kThreePolarity:
      return "3-polarity";
    case OpinionDefinition::kUnaryScale:
      return "unary-scale";
    case OpinionDefinition::kLearnedPreference:
      return "learned-preference";
  }
  return "?";
}

double Sigmoid(double s) {
  if (s >= 0.0) {
    return 1.0 / (1.0 + std::exp(-s));
  }
  double e = std::exp(s);
  return e / (1.0 + e);
}

size_t OpinionModel::opinion_dims() const {
  switch (definition_) {
    case OpinionDefinition::kBinary:
      return 2 * num_aspects_;
    case OpinionDefinition::kThreePolarity:
      return 3 * num_aspects_;
    case OpinionDefinition::kUnaryScale:
    case OpinionDefinition::kLearnedPreference:
      return num_aspects_;
  }
  return 0;
}

size_t OpinionModel::OpinionIndex(AspectId aspect, Polarity polarity) const {
  size_t a = static_cast<size_t>(aspect);
  COMPARESETS_CHECK(a < num_aspects_) << "aspect id out of catalog range";
  switch (definition_) {
    case OpinionDefinition::kBinary:
      // Neutral mentions do not map to an opinion dimension in the
      // binary model; callers must not ask.
      COMPARESETS_CHECK(polarity != Polarity::kNeutral)
          << "neutral opinion in binary model";
      return 2 * a + (polarity == Polarity::kPositive ? 0 : 1);
    case OpinionDefinition::kThreePolarity:
      return 3 * a + (polarity == Polarity::kPositive
                          ? 0
                          : (polarity == Polarity::kNegative ? 1 : 2));
    case OpinionDefinition::kUnaryScale:
    case OpinionDefinition::kLearnedPreference:
      return a;
  }
  return 0;
}

namespace {

/// Per-aspect presence counts over a review set (each review counts an
/// aspect at most once) and their maximum M(S).
std::vector<int> AspectCounts(const ReviewSet& reviews, size_t num_aspects,
                              int* max_count) {
  std::vector<int> counts(num_aspects, 0);
  int best = 0;
  for (const Review* review : reviews) {
    for (AspectId aspect : review->MentionedAspects()) {
      COMPARESETS_CHECK(aspect >= 0 &&
                        static_cast<size_t>(aspect) < num_aspects)
          << "review mentions aspect " << aspect << " outside catalog of "
          << num_aspects;
      int c = ++counts[static_cast<size_t>(aspect)];
      if (c > best) best = c;
    }
  }
  *max_count = best;
  return counts;
}

}  // namespace

Vector OpinionModel::LearnedColumn(const Review& review) const {
  COMPARESETS_CHECK(review_vectors_ != nullptr)
      << "learned-preference model without a review vector table";
  auto it = review_vectors_->find(review.id);
  if (it == review_vectors_->end()) return Vector(num_aspects_, 0.0);
  COMPARESETS_CHECK(it->second.size() == num_aspects_)
      << "learned vector dimensionality mismatch for review " << review.id;
  return it->second;
}

Vector OpinionModel::OpinionVector(const ReviewSet& reviews) const {
  Vector out(opinion_dims(), 0.0);
  if (reviews.empty()) return out;

  if (definition_ == OpinionDefinition::kLearnedPreference) {
    // Mean of the learned per-review preference vectors (§4.2.3's
    // "multiple reviews can be aggregated (e.g., average)").
    for (const Review* review : reviews) {
      out.Axpy(1.0, LearnedColumn(*review));
    }
    out.Scale(1.0 / static_cast<double>(reviews.size()));
    return out;
  }

  if (definition_ == OpinionDefinition::kUnaryScale) {
    // Sum signed strengths per aspect, then squash mentioned aspects.
    std::vector<double> sentiment(num_aspects_, 0.0);
    std::vector<bool> mentioned(num_aspects_, false);
    for (const Review* review : reviews) {
      for (const OpinionMention& mention : review->opinions) {
        size_t a = static_cast<size_t>(mention.aspect);
        COMPARESETS_CHECK(a < num_aspects_) << "aspect id out of range";
        mentioned[a] = true;
        if (mention.polarity == Polarity::kPositive) {
          sentiment[a] += mention.strength;
        } else if (mention.polarity == Polarity::kNegative) {
          sentiment[a] -= mention.strength;
        }
      }
    }
    for (size_t a = 0; a < num_aspects_; ++a) {
      if (mentioned[a]) out[a] = Sigmoid(sentiment[a]);
    }
    return out;
  }

  // Binary / 3-polarity: per-review presence counts per opinion, then
  // divide by M(S) = max aspect presence count.
  int max_count = 0;
  AspectCounts(reviews, num_aspects_, &max_count);
  if (max_count == 0) return out;

  for (const Review* review : reviews) {
    // Each opinion counted at most once per review.
    std::unordered_set<size_t> seen;
    for (const OpinionMention& mention : review->opinions) {
      if (definition_ == OpinionDefinition::kBinary &&
          mention.polarity == Polarity::kNeutral) {
        continue;  // Neutral contributes only to the aspect vector.
      }
      size_t idx = OpinionIndex(mention.aspect, mention.polarity);
      if (seen.insert(idx).second) out[idx] += 1.0;
    }
  }
  out.Scale(1.0 / max_count);
  return out;
}

Vector OpinionModel::AspectVector(const ReviewSet& reviews) const {
  Vector out(num_aspects_, 0.0);
  if (reviews.empty()) return out;
  int max_count = 0;
  std::vector<int> counts = AspectCounts(reviews, num_aspects_, &max_count);
  if (max_count == 0) return out;
  for (size_t a = 0; a < num_aspects_; ++a) {
    out[a] = static_cast<double>(counts[a]) / max_count;
  }
  return out;
}

Vector OpinionModel::ReviewOpinionColumn(const Review& review) const {
  Vector out(opinion_dims(), 0.0);
  if (definition_ == OpinionDefinition::kLearnedPreference) {
    return LearnedColumn(review);
  }
  if (definition_ == OpinionDefinition::kUnaryScale) {
    for (const OpinionMention& mention : review.opinions) {
      size_t a = static_cast<size_t>(mention.aspect);
      COMPARESETS_CHECK(a < num_aspects_) << "aspect id out of range";
      if (mention.polarity == Polarity::kPositive) {
        out[a] += mention.strength;
      } else if (mention.polarity == Polarity::kNegative) {
        out[a] -= mention.strength;
      }
    }
    return out;
  }
  for (const OpinionMention& mention : review.opinions) {
    if (definition_ == OpinionDefinition::kBinary &&
        mention.polarity == Polarity::kNeutral) {
      continue;
    }
    out[OpinionIndex(mention.aspect, mention.polarity)] = 1.0;
  }
  return out;
}

Vector OpinionModel::ReviewAspectColumn(const Review& review) const {
  Vector out(num_aspects_, 0.0);
  for (AspectId aspect : review.MentionedAspects()) {
    COMPARESETS_CHECK(aspect >= 0 &&
                      static_cast<size_t>(aspect) < num_aspects_)
        << "aspect id out of range";
    out[static_cast<size_t>(aspect)] = 1.0;
  }
  return out;
}

ReviewSet AllReviews(const Product& product) {
  ReviewSet out;
  out.reserve(product.reviews.size());
  for (const Review& review : product.reviews) out.push_back(&review);
  return out;
}

ReviewSet SelectReviews(const Product& product,
                        const std::vector<size_t>& indices) {
  ReviewSet out;
  out.reserve(indices.size());
  for (size_t i : indices) {
    COMPARESETS_CHECK(i < product.reviews.size())
        << "review index out of range";
    out.push_back(&product.reviews[i]);
  }
  return out;
}

}  // namespace comparesets
