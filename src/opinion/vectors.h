// Precomputed per-instance vector context shared by every selector:
// target vectors τ_i = π(R_i) and Γ = φ(R_1), plus per-review design
// columns (paper §2.1.1, §4.1.4).

#pragma once

#include <vector>

#include "data/corpus.h"
#include "opinion/opinion_model.h"

namespace comparesets {

class DesignSystemCache;

/// A selected review subset, as indices into Product::reviews.
using Selection = std::vector<size_t>;

/// All vector-space data derived from one problem instance under one
/// opinion model. Build once, share across selectors and evaluation.
struct InstanceVectors {
  OpinionModel model;
  const ProblemInstance* instance = nullptr;

  /// Γ — target aspect distribution vector (φ of the target item's full
  /// review set, per §4.1.4).
  Vector gamma;

  /// τ_i — target opinion vector per item (π of the item's full set).
  std::vector<Vector> tau;

  /// Per item, per review: opinion design column (before λ/μ scaling).
  std::vector<std::vector<Vector>> opinion_columns;

  /// Per item, per review: 0/1 aspect design column.
  std::vector<std::vector<Vector>> aspect_columns;

  /// Optional memo of built design systems (sparse Ṽ + Gram block),
  /// owned by the service layer's PreparedInstance; nullptr (the default
  /// everywhere else) builds systems per call. See GetOrBuild*System in
  /// core/design_matrix.h.
  const DesignSystemCache* system_cache = nullptr;

  size_t num_items() const { return instance->num_items(); }
  size_t num_reviews(size_t item) const {
    return instance->items[item]->reviews.size();
  }

  /// π(S) for a selection on item `item`.
  Vector OpinionOf(size_t item, const Selection& selection) const;
  /// φ(S) for a selection on item `item`.
  Vector AspectOf(size_t item, const Selection& selection) const;

  /// Approximate heap footprint of the stored vectors (entries only,
  /// not allocator overhead). Used for cache accounting.
  size_t ApproxMemoryBytes() const;
};

/// Builds the full context (O(total reviews · dims)).
InstanceVectors BuildInstanceVectors(const OpinionModel& model,
                                     const ProblemInstance& instance);

}  // namespace comparesets
