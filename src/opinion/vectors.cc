#include "opinion/vectors.h"

#include "util/logging.h"

namespace comparesets {

Vector InstanceVectors::OpinionOf(size_t item, const Selection& selection) const {
  COMPARESETS_CHECK(item < num_items()) << "item index out of range";
  return model.OpinionVector(SelectReviews(*instance->items[item], selection));
}

Vector InstanceVectors::AspectOf(size_t item, const Selection& selection) const {
  COMPARESETS_CHECK(item < num_items()) << "item index out of range";
  return model.AspectVector(SelectReviews(*instance->items[item], selection));
}

size_t InstanceVectors::ApproxMemoryBytes() const {
  size_t doubles = gamma.size();
  for (const Vector& t : tau) doubles += t.size();
  for (const auto& item : opinion_columns) {
    for (const Vector& column : item) doubles += column.size();
  }
  for (const auto& item : aspect_columns) {
    for (const Vector& column : item) doubles += column.size();
  }
  return doubles * sizeof(double);
}

InstanceVectors BuildInstanceVectors(const OpinionModel& model,
                                     const ProblemInstance& instance) {
  InstanceVectors out{model, &instance, {}, {}, {}, {}};
  size_t n = instance.num_items();
  out.tau.reserve(n);
  out.opinion_columns.resize(n);
  out.aspect_columns.resize(n);

  for (size_t i = 0; i < n; ++i) {
    const Product& product = *instance.items[i];
    ReviewSet all = AllReviews(product);
    out.tau.push_back(model.OpinionVector(all));
    if (i == 0) out.gamma = model.AspectVector(all);

    out.opinion_columns[i].reserve(product.reviews.size());
    out.aspect_columns[i].reserve(product.reviews.size());
    for (const Review& review : product.reviews) {
      out.opinion_columns[i].push_back(model.ReviewOpinionColumn(review));
      out.aspect_columns[i].push_back(model.ReviewAspectColumn(review));
    }
  }
  return out;
}

}  // namespace comparesets
