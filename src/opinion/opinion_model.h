// Opinion models: how reviews are turned into opinion distribution
// vectors π(S) and aspect distribution vectors φ(S) (paper §2.1 and
// §4.2.3).
//
// Three opinion definitions are supported:
//   * binary (default): π(S) ∈ R^{2z}, dimensions (aspect, +) and
//     (aspect, −);
//   * 3-polarity:       π(S) ∈ R^{3z}, adding (aspect, neutral);
//   * unary-scale:      π(S) ∈ R^{z}, per-aspect sigmoid of the summed
//     signed sentiment strength.
//
// Normalization (matches Working Example 1): counts are per-review
// presence counts, divided by M(S) = max_a (#reviews in S mentioning a).
// For R1 = {battery:6, lens:4, quality:4} this yields
// τ1 = (2/6, 4/6, 2/6, 2/6, 2/6, 2/6, 0, …) and Γ = (6/6, 4/6, 4/6, 0, 0).
// The unary-scale π is not count-normalized (the sigmoid already maps to
// [0, 1]); φ is normalized in all three models.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/review.h"
#include "linalg/vector.h"

namespace comparesets {

/// Precomputed per-review opinion vectors keyed by review id, produced
/// by an external preference model (e.g. recsys/efm.h). Used by the
/// kLearnedPreference opinion definition (paper §4.2.3's "learned
/// aspect-level preference vectors from another model").
using ReviewVectorTable = std::unordered_map<std::string, Vector>;

enum class OpinionDefinition {
  kBinary,
  kThreePolarity,
  kUnaryScale,
  kLearnedPreference,
};

const char* OpinionDefinitionName(OpinionDefinition definition);

/// A view of a review subset S ⊆ R_i (pointers into product storage).
using ReviewSet = std::vector<const Review*>;

class OpinionModel {
 public:
  OpinionModel(OpinionDefinition definition, size_t num_aspects)
      : definition_(definition), num_aspects_(num_aspects) {}

  static OpinionModel Binary(size_t num_aspects) {
    return OpinionModel(OpinionDefinition::kBinary, num_aspects);
  }
  static OpinionModel ThreePolarity(size_t num_aspects) {
    return OpinionModel(OpinionDefinition::kThreePolarity, num_aspects);
  }
  static OpinionModel UnaryScale(size_t num_aspects) {
    return OpinionModel(OpinionDefinition::kUnaryScale, num_aspects);
  }
  /// Learned-preference model: π(S) is the element-wise mean of the
  /// table's per-review vectors (z dims, [0, 1] entries; reviews absent
  /// from the table contribute zeros). φ(S) is unchanged.
  static OpinionModel LearnedPreference(
      size_t num_aspects,
      std::shared_ptr<const ReviewVectorTable> review_vectors) {
    OpinionModel model(OpinionDefinition::kLearnedPreference, num_aspects);
    model.review_vectors_ = std::move(review_vectors);
    return model;
  }

  OpinionDefinition definition() const { return definition_; }
  size_t num_aspects() const { return num_aspects_; }

  /// Dimensionality of π: 2z (binary), 3z (3-polarity), or z (unary).
  size_t opinion_dims() const;

  /// π(S): opinion distribution vector of a review set.
  Vector OpinionVector(const ReviewSet& reviews) const;

  /// φ(S): aspect distribution vector (opinion-agnostic) of a review set.
  Vector AspectVector(const ReviewSet& reviews) const;

  /// Per-review design-matrix column blocks (before λ/μ scaling):
  /// the opinion block b(r) such that summing b over S and normalizing
  /// approximates π(S) (exact for binary / 3-polarity; the unary block
  /// carries signed strengths whose sum feeds the sigmoid).
  Vector ReviewOpinionColumn(const Review& review) const;

  /// The aspect block a(r): 0/1 presence indicators per aspect.
  Vector ReviewAspectColumn(const Review& review) const;

 private:
  /// Dimension index of opinion (aspect, polarity) under this model.
  size_t OpinionIndex(AspectId aspect, Polarity polarity) const;

  /// Table lookup for the learned-preference model; zero vector when the
  /// review id is unknown.
  Vector LearnedColumn(const Review& review) const;

  OpinionDefinition definition_;
  size_t num_aspects_;
  std::shared_ptr<const ReviewVectorTable> review_vectors_;
};

/// Numerically stable logistic sigmoid 1 / (1 + e^{-s}).
double Sigmoid(double s);

/// Materializes pointer views of subsets.
ReviewSet AllReviews(const Product& product);
ReviewSet SelectReviews(const Product& product,
                        const std::vector<size_t>& indices);

}  // namespace comparesets
