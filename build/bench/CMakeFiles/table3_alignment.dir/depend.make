# Empty dependencies file for table3_alignment.
# This may be replaced when dependencies are built.
