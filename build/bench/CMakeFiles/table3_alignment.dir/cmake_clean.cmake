file(REMOVE_RECURSE
  "CMakeFiles/table3_alignment.dir/table3_alignment.cc.o"
  "CMakeFiles/table3_alignment.dir/table3_alignment.cc.o.d"
  "table3_alignment"
  "table3_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
