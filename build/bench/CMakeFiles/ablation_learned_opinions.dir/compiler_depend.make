# Empty compiler generated dependencies file for ablation_learned_opinions.
# This may be replaced when dependencies are built.
