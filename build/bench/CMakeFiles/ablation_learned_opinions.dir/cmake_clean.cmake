file(REMOVE_RECURSE
  "CMakeFiles/ablation_learned_opinions.dir/ablation_learned_opinions.cc.o"
  "CMakeFiles/ablation_learned_opinions.dir/ablation_learned_opinions.cc.o.d"
  "ablation_learned_opinions"
  "ablation_learned_opinions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_learned_opinions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
