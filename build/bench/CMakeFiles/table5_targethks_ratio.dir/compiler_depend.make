# Empty compiler generated dependencies file for table5_targethks_ratio.
# This may be replaced when dependencies are built.
