file(REMOVE_RECURSE
  "CMakeFiles/table5_targethks_ratio.dir/table5_targethks_ratio.cc.o"
  "CMakeFiles/table5_targethks_ratio.dir/table5_targethks_ratio.cc.o.d"
  "table5_targethks_ratio"
  "table5_targethks_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_targethks_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
