# Empty compiler generated dependencies file for table6_core_list.
# This may be replaced when dependencies are built.
