file(REMOVE_RECURSE
  "CMakeFiles/table6_core_list.dir/table6_core_list.cc.o"
  "CMakeFiles/table6_core_list.dir/table6_core_list.cc.o.d"
  "table6_core_list"
  "table6_core_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_core_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
