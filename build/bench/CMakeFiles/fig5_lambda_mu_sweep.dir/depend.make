# Empty dependencies file for fig5_lambda_mu_sweep.
# This may be replaced when dependencies are built.
