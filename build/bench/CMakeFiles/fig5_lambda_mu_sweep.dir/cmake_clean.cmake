file(REMOVE_RECURSE
  "CMakeFiles/fig5_lambda_mu_sweep.dir/fig5_lambda_mu_sweep.cc.o"
  "CMakeFiles/fig5_lambda_mu_sweep.dir/fig5_lambda_mu_sweep.cc.o.d"
  "fig5_lambda_mu_sweep"
  "fig5_lambda_mu_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_lambda_mu_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
