# Empty compiler generated dependencies file for table4_opinion_definitions.
# This may be replaced when dependencies are built.
