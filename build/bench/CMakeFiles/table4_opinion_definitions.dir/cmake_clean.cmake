file(REMOVE_RECURSE
  "CMakeFiles/table4_opinion_definitions.dir/table4_opinion_definitions.cc.o"
  "CMakeFiles/table4_opinion_definitions.dir/table4_opinion_definitions.cc.o.d"
  "table4_opinion_definitions"
  "table4_opinion_definitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_opinion_definitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
