# Empty dependencies file for fig6_gap_by_review_count.
# This may be replaced when dependencies are built.
