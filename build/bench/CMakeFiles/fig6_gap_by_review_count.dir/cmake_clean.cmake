file(REMOVE_RECURSE
  "CMakeFiles/fig6_gap_by_review_count.dir/fig6_gap_by_review_count.cc.o"
  "CMakeFiles/fig6_gap_by_review_count.dir/fig6_gap_by_review_count.cc.o.d"
  "fig6_gap_by_review_count"
  "fig6_gap_by_review_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gap_by_review_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
