# Empty dependencies file for case_studies.
# This may be replaced when dependencies are built.
