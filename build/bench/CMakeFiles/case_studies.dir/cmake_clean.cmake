file(REMOVE_RECURSE
  "CMakeFiles/case_studies.dir/case_studies.cc.o"
  "CMakeFiles/case_studies.dir/case_studies.cc.o.d"
  "case_studies"
  "case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
