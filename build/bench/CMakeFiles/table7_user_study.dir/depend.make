# Empty dependencies file for table7_user_study.
# This may be replaced when dependencies are built.
