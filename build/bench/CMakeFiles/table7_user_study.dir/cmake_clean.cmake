file(REMOVE_RECURSE
  "CMakeFiles/table7_user_study.dir/table7_user_study.cc.o"
  "CMakeFiles/table7_user_study.dir/table7_user_study.cc.o.d"
  "table7_user_study"
  "table7_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
