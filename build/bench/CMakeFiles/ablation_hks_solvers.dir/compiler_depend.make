# Empty compiler generated dependencies file for ablation_hks_solvers.
# This may be replaced when dependencies are built.
