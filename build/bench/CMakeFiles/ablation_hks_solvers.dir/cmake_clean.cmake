file(REMOVE_RECURSE
  "CMakeFiles/ablation_hks_solvers.dir/ablation_hks_solvers.cc.o"
  "CMakeFiles/ablation_hks_solvers.dir/ablation_hks_solvers.cc.o.d"
  "ablation_hks_solvers"
  "ablation_hks_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hks_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
