# Empty dependencies file for fig11_information_loss.
# This may be replaced when dependencies are built.
