file(REMOVE_RECURSE
  "CMakeFiles/fig11_information_loss.dir/fig11_information_loss.cc.o"
  "CMakeFiles/fig11_information_loss.dir/fig11_information_loss.cc.o.d"
  "fig11_information_loss"
  "fig11_information_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_information_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
