# Empty compiler generated dependencies file for ablation_sync_rounds.
# This may be replaced when dependencies are built.
