file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_rounds.dir/ablation_sync_rounds.cc.o"
  "CMakeFiles/ablation_sync_rounds.dir/ablation_sync_rounds.cc.o.d"
  "ablation_sync_rounds"
  "ablation_sync_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
