# Empty compiler generated dependencies file for fig7_runtime_scaling.
# This may be replaced when dependencies are built.
