file(REMOVE_RECURSE
  "CMakeFiles/table2_datasets.dir/table2_datasets.cc.o"
  "CMakeFiles/table2_datasets.dir/table2_datasets.cc.o.d"
  "table2_datasets"
  "table2_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
