# Empty compiler generated dependencies file for stats_ttest_test.
# This may be replaced when dependencies are built.
