file(REMOVE_RECURSE
  "CMakeFiles/stats_ttest_test.dir/stats_ttest_test.cc.o"
  "CMakeFiles/stats_ttest_test.dir/stats_ttest_test.cc.o.d"
  "stats_ttest_test"
  "stats_ttest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_ttest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
