# Empty dependencies file for core_selectors_test.
# This may be replaced when dependencies are built.
