file(REMOVE_RECURSE
  "CMakeFiles/core_selectors_test.dir/core_selectors_test.cc.o"
  "CMakeFiles/core_selectors_test.dir/core_selectors_test.cc.o.d"
  "core_selectors_test"
  "core_selectors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_selectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
