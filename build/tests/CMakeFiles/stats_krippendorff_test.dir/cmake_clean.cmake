file(REMOVE_RECURSE
  "CMakeFiles/stats_krippendorff_test.dir/stats_krippendorff_test.cc.o"
  "CMakeFiles/stats_krippendorff_test.dir/stats_krippendorff_test.cc.o.d"
  "stats_krippendorff_test"
  "stats_krippendorff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_krippendorff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
