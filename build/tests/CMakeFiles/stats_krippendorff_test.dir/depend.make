# Empty dependencies file for stats_krippendorff_test.
# This may be replaced when dependencies are built.
