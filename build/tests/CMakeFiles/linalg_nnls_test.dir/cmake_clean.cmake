file(REMOVE_RECURSE
  "CMakeFiles/linalg_nnls_test.dir/linalg_nnls_test.cc.o"
  "CMakeFiles/linalg_nnls_test.dir/linalg_nnls_test.cc.o.d"
  "linalg_nnls_test"
  "linalg_nnls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_nnls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
