# Empty dependencies file for linalg_nnls_test.
# This may be replaced when dependencies are built.
