file(REMOVE_RECURSE
  "CMakeFiles/opinion_model_test.dir/opinion_model_test.cc.o"
  "CMakeFiles/opinion_model_test.dir/opinion_model_test.cc.o.d"
  "opinion_model_test"
  "opinion_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opinion_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
