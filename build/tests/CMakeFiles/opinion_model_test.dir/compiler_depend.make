# Empty compiler generated dependencies file for opinion_model_test.
# This may be replaced when dependencies are built.
