# Empty dependencies file for text_ngram_lcs_test.
# This may be replaced when dependencies are built.
