file(REMOVE_RECURSE
  "CMakeFiles/text_ngram_lcs_test.dir/text_ngram_lcs_test.cc.o"
  "CMakeFiles/text_ngram_lcs_test.dir/text_ngram_lcs_test.cc.o.d"
  "text_ngram_lcs_test"
  "text_ngram_lcs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_ngram_lcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
