# Empty dependencies file for nlp_annotator_test.
# This may be replaced when dependencies are built.
