file(REMOVE_RECURSE
  "CMakeFiles/nlp_annotator_test.dir/nlp_annotator_test.cc.o"
  "CMakeFiles/nlp_annotator_test.dir/nlp_annotator_test.cc.o.d"
  "nlp_annotator_test"
  "nlp_annotator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_annotator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
