# Empty dependencies file for core_design_matrix_test.
# This may be replaced when dependencies are built.
