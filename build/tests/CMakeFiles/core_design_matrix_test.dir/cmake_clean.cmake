file(REMOVE_RECURSE
  "CMakeFiles/core_design_matrix_test.dir/core_design_matrix_test.cc.o"
  "CMakeFiles/core_design_matrix_test.dir/core_design_matrix_test.cc.o.d"
  "core_design_matrix_test"
  "core_design_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_design_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
