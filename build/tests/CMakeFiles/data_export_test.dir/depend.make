# Empty dependencies file for data_export_test.
# This may be replaced when dependencies are built.
