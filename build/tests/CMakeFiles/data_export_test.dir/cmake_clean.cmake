file(REMOVE_RECURSE
  "CMakeFiles/data_export_test.dir/data_export_test.cc.o"
  "CMakeFiles/data_export_test.dir/data_export_test.cc.o.d"
  "data_export_test"
  "data_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
