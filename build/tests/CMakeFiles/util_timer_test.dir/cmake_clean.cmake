file(REMOVE_RECURSE
  "CMakeFiles/util_timer_test.dir/util_timer_test.cc.o"
  "CMakeFiles/util_timer_test.dir/util_timer_test.cc.o.d"
  "util_timer_test"
  "util_timer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
