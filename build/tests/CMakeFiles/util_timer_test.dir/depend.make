# Empty dependencies file for util_timer_test.
# This may be replaced when dependencies are built.
