file(REMOVE_RECURSE
  "CMakeFiles/graph_targethks_test.dir/graph_targethks_test.cc.o"
  "CMakeFiles/graph_targethks_test.dir/graph_targethks_test.cc.o.d"
  "graph_targethks_test"
  "graph_targethks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_targethks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
