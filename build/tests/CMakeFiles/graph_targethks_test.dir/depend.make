# Empty dependencies file for graph_targethks_test.
# This may be replaced when dependencies are built.
