# Empty compiler generated dependencies file for nlp_lexicon_test.
# This may be replaced when dependencies are built.
