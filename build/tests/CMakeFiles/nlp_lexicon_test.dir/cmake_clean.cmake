file(REMOVE_RECURSE
  "CMakeFiles/nlp_lexicon_test.dir/nlp_lexicon_test.cc.o"
  "CMakeFiles/nlp_lexicon_test.dir/nlp_lexicon_test.cc.o.d"
  "nlp_lexicon_test"
  "nlp_lexicon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_lexicon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
