# Empty compiler generated dependencies file for data_corpus_test.
# This may be replaced when dependencies are built.
