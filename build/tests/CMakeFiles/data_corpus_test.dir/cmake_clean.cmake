file(REMOVE_RECURSE
  "CMakeFiles/data_corpus_test.dir/data_corpus_test.cc.o"
  "CMakeFiles/data_corpus_test.dir/data_corpus_test.cc.o.d"
  "data_corpus_test"
  "data_corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
