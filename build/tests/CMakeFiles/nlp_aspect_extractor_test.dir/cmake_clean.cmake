file(REMOVE_RECURSE
  "CMakeFiles/nlp_aspect_extractor_test.dir/nlp_aspect_extractor_test.cc.o"
  "CMakeFiles/nlp_aspect_extractor_test.dir/nlp_aspect_extractor_test.cc.o.d"
  "nlp_aspect_extractor_test"
  "nlp_aspect_extractor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_aspect_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
