# Empty compiler generated dependencies file for nlp_aspect_extractor_test.
# This may be replaced when dependencies are built.
