file(REMOVE_RECURSE
  "CMakeFiles/util_jsonl_test.dir/util_jsonl_test.cc.o"
  "CMakeFiles/util_jsonl_test.dir/util_jsonl_test.cc.o.d"
  "util_jsonl_test"
  "util_jsonl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_jsonl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
