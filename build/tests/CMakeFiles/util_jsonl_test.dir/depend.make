# Empty dependencies file for util_jsonl_test.
# This may be replaced when dependencies are built.
