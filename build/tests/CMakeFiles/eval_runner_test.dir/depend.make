# Empty dependencies file for eval_runner_test.
# This may be replaced when dependencies are built.
