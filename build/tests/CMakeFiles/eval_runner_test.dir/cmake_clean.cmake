file(REMOVE_RECURSE
  "CMakeFiles/eval_runner_test.dir/eval_runner_test.cc.o"
  "CMakeFiles/eval_runner_test.dir/eval_runner_test.cc.o.d"
  "eval_runner_test"
  "eval_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
