file(REMOVE_RECURSE
  "CMakeFiles/text_rouge_test.dir/text_rouge_test.cc.o"
  "CMakeFiles/text_rouge_test.dir/text_rouge_test.cc.o.d"
  "text_rouge_test"
  "text_rouge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_rouge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
