file(REMOVE_RECURSE
  "CMakeFiles/data_loader_test.dir/data_loader_test.cc.o"
  "CMakeFiles/data_loader_test.dir/data_loader_test.cc.o.d"
  "data_loader_test"
  "data_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
