# Empty dependencies file for data_loader_test.
# This may be replaced when dependencies are built.
