file(REMOVE_RECURSE
  "CMakeFiles/graph_hks_test.dir/graph_hks_test.cc.o"
  "CMakeFiles/graph_hks_test.dir/graph_hks_test.cc.o.d"
  "graph_hks_test"
  "graph_hks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_hks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
