# Empty dependencies file for graph_hks_test.
# This may be replaced when dependencies are built.
