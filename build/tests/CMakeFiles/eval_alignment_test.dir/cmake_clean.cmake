file(REMOVE_RECURSE
  "CMakeFiles/eval_alignment_test.dir/eval_alignment_test.cc.o"
  "CMakeFiles/eval_alignment_test.dir/eval_alignment_test.cc.o.d"
  "eval_alignment_test"
  "eval_alignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_alignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
