# Empty dependencies file for eval_alignment_test.
# This may be replaced when dependencies are built.
