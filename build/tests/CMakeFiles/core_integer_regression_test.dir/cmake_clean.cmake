file(REMOVE_RECURSE
  "CMakeFiles/core_integer_regression_test.dir/core_integer_regression_test.cc.o"
  "CMakeFiles/core_integer_regression_test.dir/core_integer_regression_test.cc.o.d"
  "core_integer_regression_test"
  "core_integer_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_integer_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
