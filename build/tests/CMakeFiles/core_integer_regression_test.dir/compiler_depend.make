# Empty compiler generated dependencies file for core_integer_regression_test.
# This may be replaced when dependencies are built.
