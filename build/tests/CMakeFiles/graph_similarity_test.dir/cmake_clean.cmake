file(REMOVE_RECURSE
  "CMakeFiles/graph_similarity_test.dir/graph_similarity_test.cc.o"
  "CMakeFiles/graph_similarity_test.dir/graph_similarity_test.cc.o.d"
  "graph_similarity_test"
  "graph_similarity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
