# Empty dependencies file for graph_similarity_test.
# This may be replaced when dependencies are built.
