file(REMOVE_RECURSE
  "CMakeFiles/recsys_efm_test.dir/recsys_efm_test.cc.o"
  "CMakeFiles/recsys_efm_test.dir/recsys_efm_test.cc.o.d"
  "recsys_efm_test"
  "recsys_efm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsys_efm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
