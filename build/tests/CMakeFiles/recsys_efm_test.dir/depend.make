# Empty dependencies file for recsys_efm_test.
# This may be replaced when dependencies are built.
