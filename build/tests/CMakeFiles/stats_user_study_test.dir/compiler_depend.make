# Empty compiler generated dependencies file for stats_user_study_test.
# This may be replaced when dependencies are built.
