file(REMOVE_RECURSE
  "CMakeFiles/stats_user_study_test.dir/stats_user_study_test.cc.o"
  "CMakeFiles/stats_user_study_test.dir/stats_user_study_test.cc.o.d"
  "stats_user_study_test"
  "stats_user_study_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_user_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
