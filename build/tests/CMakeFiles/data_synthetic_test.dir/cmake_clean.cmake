file(REMOVE_RECURSE
  "CMakeFiles/data_synthetic_test.dir/data_synthetic_test.cc.o"
  "CMakeFiles/data_synthetic_test.dir/data_synthetic_test.cc.o.d"
  "data_synthetic_test"
  "data_synthetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
