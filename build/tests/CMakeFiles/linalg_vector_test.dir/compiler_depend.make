# Empty compiler generated dependencies file for linalg_vector_test.
# This may be replaced when dependencies are built.
