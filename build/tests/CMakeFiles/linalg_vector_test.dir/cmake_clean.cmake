file(REMOVE_RECURSE
  "CMakeFiles/linalg_vector_test.dir/linalg_vector_test.cc.o"
  "CMakeFiles/linalg_vector_test.dir/linalg_vector_test.cc.o.d"
  "linalg_vector_test"
  "linalg_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
