# Empty compiler generated dependencies file for eval_objective_test.
# This may be replaced when dependencies are built.
