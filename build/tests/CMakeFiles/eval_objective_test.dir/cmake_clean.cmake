file(REMOVE_RECURSE
  "CMakeFiles/eval_objective_test.dir/eval_objective_test.cc.o"
  "CMakeFiles/eval_objective_test.dir/eval_objective_test.cc.o.d"
  "eval_objective_test"
  "eval_objective_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_objective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
