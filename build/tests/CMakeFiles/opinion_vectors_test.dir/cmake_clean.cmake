file(REMOVE_RECURSE
  "CMakeFiles/opinion_vectors_test.dir/opinion_vectors_test.cc.o"
  "CMakeFiles/opinion_vectors_test.dir/opinion_vectors_test.cc.o.d"
  "opinion_vectors_test"
  "opinion_vectors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opinion_vectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
