# Empty compiler generated dependencies file for opinion_vectors_test.
# This may be replaced when dependencies are built.
