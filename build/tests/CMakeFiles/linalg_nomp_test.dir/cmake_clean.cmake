file(REMOVE_RECURSE
  "CMakeFiles/linalg_nomp_test.dir/linalg_nomp_test.cc.o"
  "CMakeFiles/linalg_nomp_test.dir/linalg_nomp_test.cc.o.d"
  "linalg_nomp_test"
  "linalg_nomp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_nomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
