# Empty dependencies file for linalg_nomp_test.
# This may be replaced when dependencies are built.
