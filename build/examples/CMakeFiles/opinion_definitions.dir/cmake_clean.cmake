file(REMOVE_RECURSE
  "CMakeFiles/opinion_definitions.dir/opinion_definitions.cpp.o"
  "CMakeFiles/opinion_definitions.dir/opinion_definitions.cpp.o.d"
  "opinion_definitions"
  "opinion_definitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opinion_definitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
