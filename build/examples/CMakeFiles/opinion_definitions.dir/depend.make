# Empty dependencies file for opinion_definitions.
# This may be replaced when dependencies are built.
