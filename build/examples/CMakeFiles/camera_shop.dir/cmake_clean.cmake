file(REMOVE_RECURSE
  "CMakeFiles/camera_shop.dir/camera_shop.cpp.o"
  "CMakeFiles/camera_shop.dir/camera_shop.cpp.o.d"
  "camera_shop"
  "camera_shop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_shop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
