# Empty compiler generated dependencies file for camera_shop.
# This may be replaced when dependencies are built.
