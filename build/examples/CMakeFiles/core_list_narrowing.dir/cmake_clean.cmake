file(REMOVE_RECURSE
  "CMakeFiles/core_list_narrowing.dir/core_list_narrowing.cpp.o"
  "CMakeFiles/core_list_narrowing.dir/core_list_narrowing.cpp.o.d"
  "core_list_narrowing"
  "core_list_narrowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_list_narrowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
