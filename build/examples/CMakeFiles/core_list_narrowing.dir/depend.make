# Empty dependencies file for core_list_narrowing.
# This may be replaced when dependencies are built.
