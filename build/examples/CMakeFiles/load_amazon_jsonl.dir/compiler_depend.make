# Empty compiler generated dependencies file for load_amazon_jsonl.
# This may be replaced when dependencies are built.
