file(REMOVE_RECURSE
  "CMakeFiles/load_amazon_jsonl.dir/load_amazon_jsonl.cpp.o"
  "CMakeFiles/load_amazon_jsonl.dir/load_amazon_jsonl.cpp.o.d"
  "load_amazon_jsonl"
  "load_amazon_jsonl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_amazon_jsonl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
