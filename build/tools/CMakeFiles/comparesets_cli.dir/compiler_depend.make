# Empty compiler generated dependencies file for comparesets_cli.
# This may be replaced when dependencies are built.
