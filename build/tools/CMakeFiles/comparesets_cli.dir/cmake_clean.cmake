file(REMOVE_RECURSE
  "CMakeFiles/comparesets_cli.dir/comparesets_cli.cc.o"
  "CMakeFiles/comparesets_cli.dir/comparesets_cli.cc.o.d"
  "comparesets"
  "comparesets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparesets_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
