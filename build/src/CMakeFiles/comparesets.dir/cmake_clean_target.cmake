file(REMOVE_RECURSE
  "libcomparesets.a"
)
