
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compare_sets.cc" "src/CMakeFiles/comparesets.dir/core/compare_sets.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/core/compare_sets.cc.o.d"
  "/root/repo/src/core/compare_sets_plus.cc" "src/CMakeFiles/comparesets.dir/core/compare_sets_plus.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/core/compare_sets_plus.cc.o.d"
  "/root/repo/src/core/crs.cc" "src/CMakeFiles/comparesets.dir/core/crs.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/core/crs.cc.o.d"
  "/root/repo/src/core/design_matrix.cc" "src/CMakeFiles/comparesets.dir/core/design_matrix.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/core/design_matrix.cc.o.d"
  "/root/repo/src/core/greedy_selector.cc" "src/CMakeFiles/comparesets.dir/core/greedy_selector.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/core/greedy_selector.cc.o.d"
  "/root/repo/src/core/integer_regression.cc" "src/CMakeFiles/comparesets.dir/core/integer_regression.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/core/integer_regression.cc.o.d"
  "/root/repo/src/core/random_selector.cc" "src/CMakeFiles/comparesets.dir/core/random_selector.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/core/random_selector.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/CMakeFiles/comparesets.dir/core/selector.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/core/selector.cc.o.d"
  "/root/repo/src/data/catalog.cc" "src/CMakeFiles/comparesets.dir/data/catalog.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/data/catalog.cc.o.d"
  "/root/repo/src/data/corpus.cc" "src/CMakeFiles/comparesets.dir/data/corpus.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/data/corpus.cc.o.d"
  "/root/repo/src/data/export.cc" "src/CMakeFiles/comparesets.dir/data/export.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/data/export.cc.o.d"
  "/root/repo/src/data/loader.cc" "src/CMakeFiles/comparesets.dir/data/loader.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/data/loader.cc.o.d"
  "/root/repo/src/data/review.cc" "src/CMakeFiles/comparesets.dir/data/review.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/data/review.cc.o.d"
  "/root/repo/src/data/statistics.cc" "src/CMakeFiles/comparesets.dir/data/statistics.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/data/statistics.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/comparesets.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/data/synthetic.cc.o.d"
  "/root/repo/src/eval/alignment.cc" "src/CMakeFiles/comparesets.dir/eval/alignment.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/eval/alignment.cc.o.d"
  "/root/repo/src/eval/information_loss.cc" "src/CMakeFiles/comparesets.dir/eval/information_loss.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/eval/information_loss.cc.o.d"
  "/root/repo/src/eval/objective.cc" "src/CMakeFiles/comparesets.dir/eval/objective.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/eval/objective.cc.o.d"
  "/root/repo/src/eval/runner.cc" "src/CMakeFiles/comparesets.dir/eval/runner.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/eval/runner.cc.o.d"
  "/root/repo/src/graph/hks.cc" "src/CMakeFiles/comparesets.dir/graph/hks.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/graph/hks.cc.o.d"
  "/root/repo/src/graph/similarity_graph.cc" "src/CMakeFiles/comparesets.dir/graph/similarity_graph.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/graph/similarity_graph.cc.o.d"
  "/root/repo/src/graph/targethks_baselines.cc" "src/CMakeFiles/comparesets.dir/graph/targethks_baselines.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/graph/targethks_baselines.cc.o.d"
  "/root/repo/src/graph/targethks_exact.cc" "src/CMakeFiles/comparesets.dir/graph/targethks_exact.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/graph/targethks_exact.cc.o.d"
  "/root/repo/src/graph/targethks_greedy.cc" "src/CMakeFiles/comparesets.dir/graph/targethks_greedy.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/graph/targethks_greedy.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/comparesets.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/nnls.cc" "src/CMakeFiles/comparesets.dir/linalg/nnls.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/linalg/nnls.cc.o.d"
  "/root/repo/src/linalg/nomp.cc" "src/CMakeFiles/comparesets.dir/linalg/nomp.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/linalg/nomp.cc.o.d"
  "/root/repo/src/linalg/qr.cc" "src/CMakeFiles/comparesets.dir/linalg/qr.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/linalg/qr.cc.o.d"
  "/root/repo/src/linalg/vector.cc" "src/CMakeFiles/comparesets.dir/linalg/vector.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/linalg/vector.cc.o.d"
  "/root/repo/src/nlp/annotator.cc" "src/CMakeFiles/comparesets.dir/nlp/annotator.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/nlp/annotator.cc.o.d"
  "/root/repo/src/nlp/aspect_extractor.cc" "src/CMakeFiles/comparesets.dir/nlp/aspect_extractor.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/nlp/aspect_extractor.cc.o.d"
  "/root/repo/src/nlp/lexicon.cc" "src/CMakeFiles/comparesets.dir/nlp/lexicon.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/nlp/lexicon.cc.o.d"
  "/root/repo/src/nlp/sentiment_lexicon.cc" "src/CMakeFiles/comparesets.dir/nlp/sentiment_lexicon.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/nlp/sentiment_lexicon.cc.o.d"
  "/root/repo/src/opinion/opinion_model.cc" "src/CMakeFiles/comparesets.dir/opinion/opinion_model.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/opinion/opinion_model.cc.o.d"
  "/root/repo/src/opinion/vectors.cc" "src/CMakeFiles/comparesets.dir/opinion/vectors.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/opinion/vectors.cc.o.d"
  "/root/repo/src/recsys/efm.cc" "src/CMakeFiles/comparesets.dir/recsys/efm.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/recsys/efm.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/comparesets.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/krippendorff.cc" "src/CMakeFiles/comparesets.dir/stats/krippendorff.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/stats/krippendorff.cc.o.d"
  "/root/repo/src/stats/ttest.cc" "src/CMakeFiles/comparesets.dir/stats/ttest.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/stats/ttest.cc.o.d"
  "/root/repo/src/stats/user_study.cc" "src/CMakeFiles/comparesets.dir/stats/user_study.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/stats/user_study.cc.o.d"
  "/root/repo/src/text/lcs.cc" "src/CMakeFiles/comparesets.dir/text/lcs.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/text/lcs.cc.o.d"
  "/root/repo/src/text/ngram.cc" "src/CMakeFiles/comparesets.dir/text/ngram.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/text/ngram.cc.o.d"
  "/root/repo/src/text/rouge.cc" "src/CMakeFiles/comparesets.dir/text/rouge.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/text/rouge.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/CMakeFiles/comparesets.dir/text/stopwords.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/text/stopwords.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/comparesets.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/comparesets.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/util/csv.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/comparesets.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/util/flags.cc.o.d"
  "/root/repo/src/util/jsonl.cc" "src/CMakeFiles/comparesets.dir/util/jsonl.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/util/jsonl.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/comparesets.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/comparesets.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/comparesets.dir/util/status.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/comparesets.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/comparesets.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/comparesets.dir/util/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
