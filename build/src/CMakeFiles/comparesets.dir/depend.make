# Empty dependencies file for comparesets.
# This may be replaced when dependencies are built.
