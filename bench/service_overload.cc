// Serving-layer benchmark: admission control under overload. One
// SelectionEngine with a small in-flight limit is hit with a batch far
// wider than the limit; the per-request traces give the queue-wait
// distribution (p50/p99) and the rejection rate as the waiting room
// shrinks. Three scenarios:
//
//   unthrottled   max_in_flight = 0 — no admission layer; queue waits
//                 are all zero (the baseline the others compare to).
//   queued        max_in_flight small, queue wide enough for everyone —
//                 nobody is refused, queue waits absorb the burst.
//   overloaded    same in-flight limit, tiny queue — the surplus is
//                 refused with RESOURCE_EXHAUSTED instead of waiting.
//   degraded      same in-flight limit and tiny queue, but the engine
//                 floor is `anytime`: the surplus is answered inline
//                 with the greedy incumbent (tier anytime) instead of
//                 being refused. Compare its degraded_rate against the
//                 overloaded scenario's rejection_rate — same load, no
//                 turned-away callers.
//
//   service_overload [--products N] [--instances N] [--seed S]
//                    [--threads T] [--max_in_flight M] [--outdir DIR]
//
// Results (queue-wait percentiles from the new RequestTrace fields) are
// printed and exported to <outdir>/service_overload.json.

#include <algorithm>
#include <fstream>

#include "bench_common.h"
#include "util/jsonl.h"
#include "util/timer.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

struct ScenarioResult {
  std::string name;
  size_t max_in_flight = 0;
  size_t max_queue = 0;
  size_t requests = 0;
  size_t succeeded = 0;
  size_t rejected = 0;
  /// OK responses answered below kExact (the degraded-instead-of-
  /// rejected ones); included in `succeeded`.
  size_t degraded = 0;
  double wall_ms = 0.0;
  double queue_p50_ms = 0.0;
  double queue_p99_ms = 0.0;
  double queue_max_ms = 0.0;
  double solve_p50_ms = 0.0;

  double rejection_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(rejected) /
                               static_cast<double>(requests);
  }
  double degraded_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(degraded) /
                               static_cast<double>(requests);
  }
};

double PercentileMs(std::vector<double> seconds, double p) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(seconds.size()));
  rank = std::min(rank, seconds.size() - 1);
  return 1000.0 * seconds[rank];
}

ScenarioResult RunScenario(const std::string& name, size_t max_in_flight,
                           size_t max_queue, size_t threads,
                           QualityTier floor,
                           const std::shared_ptr<const IndexedCorpus>& corpus,
                           const std::vector<SelectRequest>& requests) {
  EngineOptions options;
  options.threads = threads;
  options.min_quality_tier = floor;
  options.cache_capacity = corpus->num_instances();
  // Memo off: every request must really solve, or the burst would
  // collapse into one solve + memo hits and nothing would queue.
  options.result_capacity = 0;
  options.measure_alignment = false;
  options.max_in_flight = max_in_flight;
  options.max_queue = max_queue;
  options.trace_capacity = requests.size();
  SelectionEngine engine(corpus, options);

  Timer timer;
  std::vector<Result<SelectResponse>> responses = engine.SelectBatch(requests);

  ScenarioResult out;
  out.name = name;
  out.max_in_flight = max_in_flight;
  out.max_queue = max_queue;
  out.requests = requests.size();
  out.wall_ms = 1000.0 * timer.ElapsedSeconds();

  std::vector<double> queue_seconds;
  std::vector<double> solve_seconds;
  for (const auto& response : responses) {
    if (response.ok()) {
      ++out.succeeded;
      if (response.value().tier != QualityTier::kExact) ++out.degraded;
      queue_seconds.push_back(response.value().trace.queue_seconds);
      solve_seconds.push_back(response.value().trace.solve_seconds);
    } else if (response.status().code() == StatusCode::kResourceExhausted) {
      ++out.rejected;
    } else {
      response.status().CheckOK();  // Anything else is a bench bug.
    }
  }
  out.queue_p50_ms = PercentileMs(queue_seconds, 0.50);
  out.queue_p99_ms = PercentileMs(queue_seconds, 0.99);
  out.queue_max_ms = PercentileMs(queue_seconds, 1.0);
  out.solve_p50_ms = PercentileMs(solve_seconds, 0.50);

  std::printf(
      "  %-12s in_flight=%-3zu queue=%-3zu  ok %3zu  rejected %3zu "
      "(%4.1f%%)  degraded %3zu (%4.1f%%)  wall %7.1f ms  "
      "queue p50 %7.2f ms  p99 %7.2f ms\n",
      name.c_str(), max_in_flight, max_queue, out.succeeded, out.rejected,
      100.0 * out.rejection_rate(), out.degraded, 100.0 * out.degraded_rate(),
      out.wall_ms, out.queue_p50_ms, out.queue_p99_ms);
  return out;
}

/// The priority dividend: lone interactive Selects issued while a wide
/// background batch saturates the same engine. With `demote` the batch
/// runs at kBatch (work-stealing scheduler + split admission keep
/// interactive ahead); without it the engine is configured back to the
/// FIFO-equivalent behaviour (batch competes head-on). Returns the
/// lone-Select latencies in seconds.
std::vector<double> RunLoneSelectsUnderBatchLoad(
    bool demote, size_t threads, size_t max_in_flight,
    const std::shared_ptr<const IndexedCorpus>& corpus,
    const std::vector<SelectRequest>& batch_requests, size_t lone_selects) {
  EngineOptions options;
  options.threads = threads;
  options.cache_capacity = corpus->num_instances();
  options.result_capacity = 0;
  options.measure_alignment = false;
  options.max_in_flight = max_in_flight;
  options.max_queue = batch_requests.size() + lone_selects;
  options.batch_priority = demote ? RequestPriority::kBatch
                                  : RequestPriority::kInteractive;
  SelectionEngine engine(corpus, options);

  // Background load: the whole instance sweep, twice, on its own thread.
  std::thread background([&] {
    for (int round = 0; round < 2; ++round) {
      for (const auto& response : engine.SelectBatch(batch_requests)) {
        if (!response.ok()) response.status().CheckOK();
      }
    }
  });

  // Foreground: closed-loop lone Selects against the saturated engine.
  std::vector<double> latencies;
  latencies.reserve(lone_selects);
  for (size_t i = 0; i < lone_selects; ++i) {
    SelectRequest request = batch_requests[i % batch_requests.size()];
    request.priority = RequestPriority::kInteractive;
    Timer latency;
    auto response = engine.Select(request);
    if (!response.ok()) response.status().CheckOK();
    latencies.push_back(latency.ElapsedSeconds());
  }
  background.join();
  return latencies;
}

JsonValue ToJson(const ScenarioResult& r) {
  JsonValue::Object object;
  object["scenario"] = r.name;
  object["max_in_flight"] = static_cast<int64_t>(r.max_in_flight);
  object["max_queue"] = static_cast<int64_t>(r.max_queue);
  object["requests"] = static_cast<int64_t>(r.requests);
  object["succeeded"] = static_cast<int64_t>(r.succeeded);
  object["rejected"] = static_cast<int64_t>(r.rejected);
  object["degraded"] = static_cast<int64_t>(r.degraded);
  object["rejection_rate"] = r.rejection_rate();
  object["degraded_rate"] = r.degraded_rate();
  object["wall_ms"] = r.wall_ms;
  object["queue_p50_ms"] = r.queue_p50_ms;
  object["queue_p99_ms"] = r.queue_p99_ms;
  object["queue_max_ms"] = r.queue_max_ms;
  object["solve_p50_ms"] = r.solve_p50_ms;
  return JsonValue(std::move(object));
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser flags;
  BenchArgs args = ParseBenchArgs(
      argc, argv,
      [](FlagParser* f) {
        f->AddInt("threads", 8, "engine worker threads (burst width)");
        f->AddInt("max_in_flight", 2, "admission limit for throttled runs");
        f->AddString("algorithm", "CompaReSetS", "selector to serve");
      },
      &flags);
  if (args.help) return 0;

  PrintTitle("Serving layer: admission queue under an overload burst");

  std::shared_ptr<const IndexedCorpus> corpus =
      BuildEngineCorpus(args, "Cellphone");
  SelectorOptions options;
  options.seed = args.seed;
  std::vector<SelectRequest> requests =
      InstanceRequests(*corpus, args, flags.GetString("algorithm"), options);
  size_t threads = static_cast<size_t>(flags.GetInt("threads"));
  size_t limit = static_cast<size_t>(flags.GetInt("max_in_flight"));

  std::printf("\n%zu products, burst of %zu queries over %zu workers, "
              "selector %s\n\n",
              corpus->corpus().num_products(), requests.size(), threads,
              flags.GetString("algorithm").c_str());

  std::vector<ScenarioResult> results;
  results.push_back(RunScenario("unthrottled", 0, 0, threads,
                                QualityTier::kExact, corpus, requests));
  results.push_back(RunScenario("queued", limit, requests.size(), threads,
                                QualityTier::kExact, corpus, requests));
  results.push_back(RunScenario("overloaded", limit, limit, threads,
                                QualityTier::kExact, corpus, requests));
  results.push_back(RunScenario("degraded", limit, limit, threads,
                                QualityTier::kAnytime, corpus, requests));

  const ScenarioResult& queued = results[1];
  const ScenarioResult& overloaded = results[2];
  const ScenarioResult& degraded = results[3];
  std::printf(
      "\nWith in_flight=%zu, the full-width queue absorbs the burst "
      "(p99 queue wait %.1f ms, zero rejects); shrinking the queue to "
      "%zu slots refuses %zu of %zu requests (rejection_rate %.2f). "
      "The anytime floor answers every one of those inline instead: "
      "rejection_rate %.2f, degraded_rate %.2f.\n",
      limit, queued.queue_p99_ms, overloaded.max_queue, overloaded.rejected,
      overloaded.requests, overloaded.rejection_rate(),
      degraded.rejection_rate(), degraded.degraded_rate());

  // Priority scheduling head-to-head: identical mixed load, the only
  // difference is whether background batches are demoted to kBatch.
  size_t lone = std::min<size_t>(requests.size(), 24);
  std::vector<double> fifo_lat = RunLoneSelectsUnderBatchLoad(
      /*demote=*/false, threads, limit, corpus, requests, lone);
  std::vector<double> prio_lat = RunLoneSelectsUnderBatchLoad(
      /*demote=*/true, threads, limit, corpus, requests, lone);
  double fifo_p50 = PercentileMs(fifo_lat, 0.50);
  double fifo_p99 = PercentileMs(fifo_lat, 0.99);
  double prio_p50 = PercentileMs(prio_lat, 0.50);
  double prio_p99 = PercentileMs(prio_lat, 0.99);
  std::printf(
      "\nLone-Select latency under concurrent batch load (%zu selects "
      "against a %zux2-request background batch):\n"
      "  %-22s p50 %8.2f ms  p99 %8.2f ms\n"
      "  %-22s p50 %8.2f ms  p99 %8.2f ms\n",
      lone, requests.size(), "fifo (no demotion)", fifo_p50, fifo_p99,
      "priority (kBatch)", prio_p50, prio_p99);
  if (prio_p99 <= fifo_p99) {
    std::printf("  priority wins: interactive p99 %.2fx of the FIFO "
                "baseline\n",
                fifo_p99 > 0.0 ? prio_p99 / fifo_p99 : 1.0);
  } else {
    std::printf("  priority does not win here — expected on boxes with "
                "too few cores for real concurrency; re-run with >= 4 "
                "hardware threads\n");
  }

  JsonValue::Array scenarios;
  for (const ScenarioResult& r : results) scenarios.push_back(ToJson(r));
  JsonValue::Object doc;
  doc["bench"] = "service_overload";
  doc["products"] = static_cast<int64_t>(args.products);
  doc["burst"] = static_cast<int64_t>(requests.size());
  doc["threads"] = static_cast<int64_t>(threads);
  doc["selector"] = flags.GetString("algorithm");
  StampMachine(&doc);
  doc["scenarios"] = JsonValue(std::move(scenarios));
  {
    JsonValue::Object priority;
    priority["lone_selects"] = static_cast<int64_t>(lone);
    priority["fifo_p50_ms"] = fifo_p50;
    priority["fifo_p99_ms"] = fifo_p99;
    priority["priority_p50_ms"] = prio_p50;
    priority["priority_p99_ms"] = prio_p99;
    doc["lone_select_under_batch"] = JsonValue(std::move(priority));
  }

  ::mkdir(args.outdir.c_str(), 0755);
  std::string path = args.outdir + "/service_overload.json";
  std::ofstream out(path);
  if (out) {
    out << JsonValue(std::move(doc)).Dump() << "\n";
    std::printf("[json written to %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }
  return 0;
}
