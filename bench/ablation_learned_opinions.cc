// Ablation — learned aspect-preference opinion vectors (§4.2.3's future
// direction, implemented via the EFM-lite model in src/recsys/): Table
// 4-style ROUGE-L comparison of the binary opinion definition against
// the learned-preference definition, plus the EFM fit diagnostics.

#include "bench_common.h"
#include "recsys/efm.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Ablation: learned aspect-preference opinions (EFM-lite) vs binary "
      "(Cellphone, m=3, ROUGE-L x100)");

  // Build the corpus once; derive both opinion models from it.
  SyntheticConfig synth =
      DefaultConfig("Cellphone", args.products).ValueOrDie();
  synth.seed = args.seed;
  Corpus corpus = GenerateCorpus(synth).ValueOrDie();

  ExplicitFactorModel efm = ExplicitFactorModel::Train(corpus).ValueOrDie();
  std::printf("EFM fit: quality RMSE %.4f, attention RMSE %.4f (%zu users, "
              "%zu items, %zu aspects)\n\n",
              efm.quality_rmse(), efm.attention_rmse(), efm.num_users(),
              efm.num_items(), efm.num_aspects());
  auto table = BuildReviewPreferenceTable(corpus, efm).ValueOrDie();

  std::vector<ProblemInstance> instances = corpus.BuildInstances();
  if (instances.size() > args.instances) instances.resize(args.instances);

  struct ModelEntry {
    const char* name;
    OpinionModel model;
  };
  std::vector<ModelEntry> models = {
      {"binary", OpinionModel::Binary(corpus.num_aspects())},
      {"learned-preference",
       OpinionModel::LearnedPreference(corpus.num_aspects(), table)},
  };

  std::printf("%-20s %22s %22s\n", "Algorithm", "binary R-L",
              "learned-pref R-L");
  PrintRule(70);
  std::vector<CsvRow> csv = {{"algorithm", "binary", "learned_preference"}};

  for (const char* name : {"Random", "Crs", "CompaReSetS", "CompaReSetS+"}) {
    auto selector = MakeSelector(name).ValueOrDie();
    CsvRow row = {name};
    std::printf("%-20s ", name);
    for (const ModelEntry& entry : models) {
      SelectorOptions options;
      options.m = 3;
      options.seed = args.seed;
      RougeTriple mean;
      size_t counted = 0;
      for (const ProblemInstance& instance : instances) {
        InstanceVectors vectors =
            BuildInstanceVectors(entry.model, instance);
        auto result = selector->Select(vectors, options).ValueOrDie();
        AlignmentScores scores =
            MeasureAlignment(instance, result.selections);
        if (scores.target_pairs == 0) continue;
        mean += scores.target_vs_comparative;
        ++counted;
      }
      if (counted > 0) mean /= static_cast<double>(counted);
      std::printf("%22s ", Pct(mean.rougeL.f1).c_str());
      row.push_back(Pct(mean.rougeL.f1));
    }
    std::printf("\n");
    csv.push_back(row);
  }

  ExportCsv(args, "ablation_learned_opinions.csv", csv);
  return 0;
}
