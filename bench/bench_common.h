// Shared infrastructure for the table/figure benchmark binaries: flag
// parsing, workload construction, table formatting, and CSV export.
//
// Every bench accepts:
//   --products N    synthetic corpus size per category (default 240)
//   --instances N   evaluated problem instances per category (default 60)
//   --seed S        base RNG seed (default 42)
//   --outdir DIR    where CSVs are written (default "results")
//
// Paper-scale runs (10k+ products) are a flag change away; defaults are
// sized so the full bench suite completes in minutes on a laptop.

#pragma once

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/runner.h"
#include "service/engine.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/jsonl.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace comparesets {
namespace bench {

/// The three paper datasets, in Table 2 order.
inline const std::vector<std::string>& Categories() {
  static const std::vector<std::string>* kCategories =
      new std::vector<std::string>{"Cellphone", "Toy", "Clothing"};
  return *kCategories;
}

struct BenchArgs {
  size_t products = 240;
  size_t instances = 40;
  uint64_t seed = 42;
  std::string outdir = "results";
  bool help = false;
};

/// Parses common flags; callers may register extra flags via `extend`.
inline BenchArgs ParseBenchArgs(
    int argc, char** argv,
    const std::function<void(FlagParser*)>& extend = nullptr,
    FlagParser* out_parser = nullptr) {
  static FlagParser local_parser;
  FlagParser& flags = out_parser != nullptr ? *out_parser : local_parser;
  flags.AddInt("products", 240, "synthetic products per category");
  flags.AddInt("instances", 40, "problem instances evaluated per category");
  flags.AddInt("seed", 42, "base RNG seed");
  flags.AddString("outdir", "results", "directory for CSV exports");
  if (extend) extend(&flags);
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    std::exit(2);
  }
  BenchArgs args;
  args.products = static_cast<size_t>(flags.GetInt("products"));
  args.instances = static_cast<size_t>(flags.GetInt("instances"));
  args.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  args.outdir = flags.GetString("outdir");
  args.help = flags.help_requested();
  return args;
}

/// Builds the workload for one category under the common args.
inline Workload BuildWorkload(const BenchArgs& args,
                              const std::string& category,
                              OpinionDefinition opinion =
                                  OpinionDefinition::kBinary,
                              size_t max_comparative_items = 0) {
  RunnerConfig config;
  config.category = category;
  config.num_products = args.products;
  config.max_instances = args.instances;
  config.max_comparative_items = max_comparative_items;
  config.opinion = opinion;
  config.seed = args.seed;
  auto workload = Workload::BuildSynthetic(config);
  workload.status().CheckOK();
  return std::move(workload).ValueOrDie();
}

/// Builds the immutable catalog snapshot a SelectionEngine serves from,
/// for one synthetic category under the common args.
inline std::shared_ptr<const IndexedCorpus> BuildEngineCorpus(
    const BenchArgs& args, const std::string& category,
    size_t max_comparative_items = 0) {
  auto config = DefaultConfig(category, args.products);
  config.status().CheckOK();
  config.value().seed = args.seed;
  auto corpus = GenerateCorpus(config.value());
  corpus.status().CheckOK();
  InstanceOptions instance_options;
  instance_options.max_comparative_items = max_comparative_items;
  auto indexed =
      IndexedCorpus::Build(std::move(corpus).value(), instance_options);
  indexed.status().CheckOK();
  return indexed.value();
}

/// One engine request per enumerated instance target (capped at
/// args.instances — the same slice Workload evaluates), all with the
/// given selector and options.
inline std::vector<SelectRequest> InstanceRequests(
    const IndexedCorpus& corpus, const BenchArgs& args,
    const std::string& selector, const SelectorOptions& options) {
  size_t n = corpus.num_instances();
  if (args.instances > 0) n = std::min(n, args.instances);
  std::vector<SelectRequest> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SelectRequest request;
    request.target_id = corpus.instances()[i].target().id;
    request.selector = selector;
    request.options = options;
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Writes a CSV into args.outdir (best effort; logs on failure).
inline void ExportCsv(const BenchArgs& args, const std::string& filename,
                      const std::vector<CsvRow>& rows) {
  ::mkdir(args.outdir.c_str(), 0755);  // Existing dir is fine.
  std::string path = args.outdir + "/" + filename;
  Status status = WriteCsvFile(path, rows);
  if (!status.ok()) {
    LOG_WARNING("could not export " << path << ": " << status);
  } else {
    std::printf("[csv written to %s]\n", path.c_str());
  }
}

/// Hardware thread count of the machine the bench ran on (≥ 1).
inline int64_t HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int64_t>(n);
}

/// Stamps the machine context into a bench JSON document. Timing numbers
/// are meaningless without the thread count they were measured under, so
/// every JSON-emitting bench calls this on its top-level doc.
inline void StampMachine(JsonValue::Object* doc) {
  (*doc)["hw_concurrency"] = HardwareConcurrency();
}

/// Formats a 0-1 ROUGE F1 the way the paper prints it (x100, 2 dp).
inline std::string Pct(double f1) { return FormatDouble(100.0 * f1, 2); }

/// Significance star per Table 3's footnote.
inline const char* Star(bool significant) { return significant ? "*" : ""; }

inline void PrintRule(int width = 96) {
  std::string rule(static_cast<size_t>(width), '-');
  std::printf("%s\n", rule.c_str());
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n");
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace bench
}  // namespace comparesets
