// Figure 7 — Average runtime per problem instance as the number of
// comparative items grows (Cellphone, m ∈ {3, 5, 10}). The paper's
// observations to reproduce: Crs and CompaReSetS are flat and fast;
// CompaReSetS+ grows linearly in the number of items.
//
// Served through SelectionEngine: one engine pair per item cap (serial
// vs intra-request parallel), so every (m, algorithm) cell after the
// first answers from warm cached vectors and the timing isolates the
// solve itself. Requests go through lone `Select` calls — the path that
// lends the whole pool to one request — so the parallel column measures
// exactly the single-request speedup the execution model promises
// (docs/execution-model.md; docs/benchmarks.md for re-baselining).
//
//   --threads N   pool size for the parallel column (0 = hardware).

#include "bench_common.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser parser;
  BenchArgs args = ParseBenchArgs(
      argc, argv,
      [](FlagParser* flags) {
        flags->AddInt("threads", 0,
                      "pool threads for the parallel column (0 = hardware)");
      },
      &parser);
  if (args.help) return 0;
  size_t threads = static_cast<size_t>(parser.GetInt("threads"));

  PrintTitle(
      "Figure 7: Average runtime (ms per instance) vs #comparative items "
      "(Cellphone), serial vs intra-request parallel");

  const size_t kItemCaps[] = {5, 10, 15, 20, 25};
  const std::vector<std::string> kAlgorithms = {
      "Crs", "CompaReSetS", "CompaReSetS+"};

  std::vector<CsvRow> csv = {{"algorithm", "m", "comparative_items",
                              "serial_ms_per_instance",
                              "parallel_ms_per_instance", "speedup"}};

  BenchArgs capped = args;
  capped.instances = std::min<size_t>(args.instances, 20);

  // One warm engine pair per item cap, shared across every
  // (m, algorithm) cell of that column. The pair differs ONLY in
  // max_intra_request_threads, so the delta is the fan-out itself.
  std::vector<std::shared_ptr<const IndexedCorpus>> corpora;
  std::vector<std::unique_ptr<SelectionEngine>> serial_engines;
  std::vector<std::unique_ptr<SelectionEngine>> parallel_engines;
  for (size_t cap : kItemCaps) {
    corpora.push_back(BuildEngineCorpus(capped, "Cellphone", cap));
    EngineOptions engine_options;
    engine_options.threads = threads;
    engine_options.cache_capacity = corpora.back()->num_instances();
    engine_options.measure_alignment = false;
    engine_options.result_capacity = 0;  // Every request must solve.
    engine_options.max_intra_request_threads = 1;
    serial_engines.push_back(
        std::make_unique<SelectionEngine>(corpora.back(), engine_options));
    engine_options.max_intra_request_threads = 0;  // Whole pool.
    parallel_engines.push_back(
        std::make_unique<SelectionEngine>(corpora.back(), engine_options));
  }

  // Mean per-request solve seconds over lone Selects, sequentially —
  // single-request latency, not batch throughput.
  auto mean_solve_ms = [](SelectionEngine& engine,
                          const std::vector<SelectRequest>& requests) {
    double total_seconds = 0.0;
    for (const SelectRequest& request : requests) {
      auto response = engine.Select(request);
      response.status().CheckOK();
      total_seconds += response.value().solve_seconds;
    }
    return 1000.0 * total_seconds / static_cast<double>(requests.size());
  };

  for (size_t m : {3u, 5u, 10u}) {
    std::printf("\n  m = %zu   (serial ms -> parallel ms [speedup])\n", m);
    std::printf("  %-18s", "Algorithm");
    for (size_t cap : kItemCaps) {
      std::printf("  n=%-18zu", cap);
    }
    std::printf("\n");

    for (const std::string& name : kAlgorithms) {
      std::printf("  %-18s", name.c_str());
      for (size_t c = 0; c < std::size(kItemCaps); ++c) {
        SelectorOptions options;
        options.m = m;
        options.seed = args.seed;
        std::vector<SelectRequest> requests =
            InstanceRequests(*corpora[c], capped, name, options);

        double serial_ms = mean_solve_ms(*serial_engines[c], requests);
        double parallel_ms = mean_solve_ms(*parallel_engines[c], requests);
        double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 1.0;

        std::printf("  %5s->%-5s [%4s]",
                    FormatDouble(serial_ms, 1).c_str(),
                    FormatDouble(parallel_ms, 1).c_str(),
                    FormatDouble(speedup, 2).c_str());
        csv.push_back({name, std::to_string(m), std::to_string(kItemCaps[c]),
                       FormatDouble(serial_ms, 3), FormatDouble(parallel_ms, 3),
                       FormatDouble(speedup, 3)});
      }
      std::printf("\n");
    }
  }

  ExportCsv(args, "fig7_runtime_scaling.csv", csv);
  return 0;
}
