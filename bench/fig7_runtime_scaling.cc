// Figure 7 — Average runtime per problem instance as the number of
// comparative items grows (Cellphone, m ∈ {3, 5, 10}). The paper's
// observations to reproduce: Crs and CompaReSetS are flat and fast;
// CompaReSetS+ grows linearly in the number of items.
//
// Served through SelectionEngine: one engine per item cap, so every
// (m, algorithm) cell after the first answers from warm cached vectors
// and the timing isolates the solve itself.

#include "bench_common.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Figure 7: Average runtime (ms per instance) vs #comparative items "
      "(Cellphone)");

  const size_t kItemCaps[] = {5, 10, 15, 20, 25};
  const std::vector<std::string> kAlgorithms = {
      "Crs", "CompaReSetS", "CompaReSetS+"};

  std::vector<CsvRow> csv = {
      {"algorithm", "m", "comparative_items", "ms_per_instance"}};

  BenchArgs capped = args;
  capped.instances = std::min<size_t>(args.instances, 20);

  // One warm engine per item cap, shared across every (m, algorithm)
  // cell of that column.
  std::vector<std::shared_ptr<const IndexedCorpus>> corpora;
  std::vector<std::unique_ptr<SelectionEngine>> engines;
  for (size_t cap : kItemCaps) {
    corpora.push_back(BuildEngineCorpus(capped, "Cellphone", cap));
    EngineOptions engine_options;
    engine_options.threads = 1;  // Serial: this figure measures latency.
    engine_options.cache_capacity = corpora.back()->num_instances();
    engine_options.measure_alignment = false;
    engines.push_back(
        std::make_unique<SelectionEngine>(corpora.back(), engine_options));
  }

  for (size_t m : {3u, 5u, 10u}) {
    std::printf("\n  m = %zu\n", m);
    std::printf("  %-18s", "Algorithm");
    for (size_t cap : kItemCaps) {
      std::printf("  n=%-8zu", cap);
    }
    std::printf("\n");

    for (const std::string& name : kAlgorithms) {
      std::printf("  %-18s", name.c_str());
      for (size_t c = 0; c < std::size(kItemCaps); ++c) {
        SelectorOptions options;
        options.m = m;
        options.seed = args.seed;
        std::vector<SelectRequest> requests =
            InstanceRequests(*corpora[c], capped, name, options);
        std::vector<Result<SelectResponse>> responses =
            engines[c]->SelectBatch(requests);

        // Like SelectorRun::total_seconds, this sums per-instance solve
        // time — the serial-cost measure the paper plots — NOT batch
        // wall-clock (which cache warmth and threading would distort).
        double total_seconds = 0.0;
        for (const auto& response : responses) {
          response.status().CheckOK();
          total_seconds += response.value().solve_seconds;
        }
        double ms = 1000.0 * total_seconds /
                    static_cast<double>(requests.size());
        std::printf("  %-10s", FormatDouble(ms, 2).c_str());
        csv.push_back({name, std::to_string(m),
                       std::to_string(kItemCaps[c]), FormatDouble(ms, 3)});
      }
      std::printf("\n");
    }
  }

  ExportCsv(args, "fig7_runtime_scaling.csv", csv);
  return 0;
}
