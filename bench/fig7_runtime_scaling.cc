// Figure 7 — Average runtime per problem instance as the number of
// comparative items grows (Cellphone, m ∈ {3, 5, 10}). The paper's
// observations to reproduce: Crs and CompaReSetS are flat and fast;
// CompaReSetS+ grows linearly in the number of items.

#include "bench_common.h"
#include "util/timer.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Figure 7: Average runtime (ms per instance) vs #comparative items "
      "(Cellphone)");

  const size_t kItemCaps[] = {5, 10, 15, 20, 25};
  const std::vector<std::string> kAlgorithms = {
      "Crs", "CompaReSetS", "CompaReSetS+"};

  std::vector<CsvRow> csv = {
      {"algorithm", "m", "comparative_items", "ms_per_instance"}};

  for (size_t m : {3u, 5u, 10u}) {
    std::printf("\n  m = %zu\n", m);
    std::printf("  %-18s", "Algorithm");
    for (size_t cap : kItemCaps) {
      std::printf("  n=%-8zu", cap);
    }
    std::printf("\n");

    for (const std::string& name : kAlgorithms) {
      std::printf("  %-18s", name.c_str());
      for (size_t cap : kItemCaps) {
        BenchArgs capped = args;
        capped.instances = std::min<size_t>(args.instances, 20);
        Workload workload =
            BuildWorkload(capped, "Cellphone", OpinionDefinition::kBinary,
                          cap);
        auto selector = MakeSelector(name).ValueOrDie();
        SelectorOptions options;
        options.m = m;
        options.seed = args.seed;
        Timer timer;
        SelectorRun run =
            RunSelector(*selector, workload, options).ValueOrDie();
        double ms = 1000.0 * run.total_seconds /
                    static_cast<double>(workload.num_instances());
        std::printf("  %-10s", FormatDouble(ms, 2).c_str());
        csv.push_back({name, std::to_string(m), std::to_string(cap),
                       FormatDouble(ms, 3)});
      }
      std::printf("\n");
    }
  }

  ExportCsv(args, "fig7_runtime_scaling.csv", csv);
  return 0;
}
