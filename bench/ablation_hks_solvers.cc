// Ablation — TargetHkS / HkS solver portfolio on random graphs of
// growing size: solution quality relative to the exact optimum and
// runtime, for branch-and-bound, greedy (Algorithm 2), Top-k similarity,
// Asahiro peel, and unconstrained HkS via the all-targets reduction.

#include "bench_common.h"
#include "graph/hks.h"
#include "graph/targethks_baselines.h"
#include "graph/targethks_greedy.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

SimilarityGraph RandomGraph(size_t n, Rng* rng) {
  SimilarityGraph graph(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      graph.set_weight(i, j, rng->UniformDouble(0.0, 10.0));
    }
  }
  return graph;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Ablation: core-list solver portfolio on random graphs (k = 5, 40 "
      "graphs per size; quality = weight / exact weight)");

  std::printf("%-6s %18s %18s %18s %18s\n", "n", "greedy quality",
              "top-k quality", "peel quality", "exact ms/graph");
  PrintRule(84);
  std::vector<CsvRow> csv = {{"n", "greedy_quality", "topk_quality",
                              "peel_quality", "exact_ms"}};

  Rng rng(args.seed);
  constexpr size_t kK = 5;
  constexpr int kGraphsPerSize = 40;

  for (size_t n : {8u, 12u, 16u, 24u, 32u, 48u}) {
    double greedy_quality = 0.0;
    double topk_quality = 0.0;
    double peel_quality = 0.0;
    double exact_ms = 0.0;
    for (int g = 0; g < kGraphsPerSize; ++g) {
      SimilarityGraph graph = RandomGraph(n, &rng);
      Timer timer;
      ExactSolverOptions options;
      options.time_limit_seconds = 10.0;
      CoreList exact = SolveTargetHksExact(graph, kK, options).ValueOrDie();
      exact_ms += timer.ElapsedSeconds() * 1000.0;
      double denom = std::max(exact.weight, 1e-12);
      greedy_quality +=
          SolveTargetHksGreedy(graph, kK).ValueOrDie().weight / denom;
      topk_quality +=
          SolveTopKSimilarity(graph, kK).ValueOrDie().weight / denom;
      peel_quality +=
          SolveTargetHksPeel(graph, kK).ValueOrDie().weight / denom;
    }
    double count = kGraphsPerSize;
    std::printf("%-6zu %18s %18s %18s %18s\n", n,
                FormatDouble(greedy_quality / count, 4).c_str(),
                FormatDouble(topk_quality / count, 4).c_str(),
                FormatDouble(peel_quality / count, 4).c_str(),
                FormatDouble(exact_ms / count, 3).c_str());
    csv.push_back({std::to_string(n), FormatDouble(greedy_quality / count, 4),
                   FormatDouble(topk_quality / count, 4),
                   FormatDouble(peel_quality / count, 4),
                   FormatDouble(exact_ms / count, 3)});
  }

  // Time-capped regime on unstructured stress graphs (the Table 5
  // situation the paper hit with Gurobi at 60 s): at k = 10 and large n
  // the bound loosens, the cap bites, and the greedy heuristic can beat
  // the time-capped exact solver.
  std::printf("\nTime-capped regime (k = 10, 1 ms cap, 20 graphs/size):\n");
  std::printf("%-6s %14s %24s\n", "n", "proven (%)", "greedy vs capped-exact");
  PrintRule(50);
  std::vector<CsvRow> capped_csv = {
      {"n", "proven_pct", "greedy_vs_capped_ratio"}};
  for (size_t n : {48u, 96u, 160u}) {
    size_t proven = 0;
    double omega_exact = 0.0;
    double omega_greedy = 0.0;
    for (int g = 0; g < 20; ++g) {
      SimilarityGraph graph = RandomGraph(n, &rng);
      ExactSolverOptions capped;
      capped.time_limit_seconds = 0.001;
      CoreList exact = SolveTargetHksExact(graph, 10, capped).ValueOrDie();
      if (exact.proven_optimal) ++proven;
      omega_exact += exact.weight;
      omega_greedy += SolveTargetHksGreedy(graph, 10).ValueOrDie().weight;
    }
    double ratio = 100.0 * (omega_greedy - omega_exact) / omega_exact;
    std::printf("%-6zu %14s %23s%%\n", n,
                FormatDouble(100.0 * proven / 20.0, 1).c_str(),
                FormatDouble(ratio, 4).c_str());
    capped_csv.push_back({std::to_string(n),
                          FormatDouble(100.0 * proven / 20.0, 1),
                          FormatDouble(ratio, 5)});
  }
  ExportCsv(args, "ablation_hks_capped.csv", capped_csv);

  // Unconstrained HkS sanity block: the all-targets reduction always
  // finds a solution at least as heavy as any single-target solve.
  std::printf("\nUnconstrained HkS via all-targets reduction (n = 16):\n");
  SimilarityGraph graph = RandomGraph(16, &rng);
  CoreList hks = SolveHksExact(graph, kK).ValueOrDie();
  CoreList constrained = SolveTargetHksExact(graph, kK).ValueOrDie();
  std::printf("  HkS weight %.4f >= TargetHkS(target 0) weight %.4f\n",
              hks.weight, constrained.weight);

  ExportCsv(args, "ablation_hks_solvers.csv", csv);
  return 0;
}
