// Ablation — coordinate-descent depth of Algorithm 1. The paper runs a
// single sweep over items; this ablation measures what additional sweeps
// buy: Eq. 5 objective (guaranteed monotone) and among-items ROUGE-L,
// versus runtime.

#include "bench_common.h"
#include "util/timer.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Ablation: extra synchronization sweeps of Algorithm 1 "
      "(CompaReSetS+, Cellphone, m=3)");

  BenchArgs small = args;
  small.instances = std::min<size_t>(args.instances, 30);
  Workload workload = BuildWorkload(small, "Cellphone");

  std::printf("%-8s %16s %18s %16s\n", "sweeps", "mean Eq.5 obj",
              "among R-L (x100)", "ms/instance");
  PrintRule(64);
  std::vector<CsvRow> csv = {
      {"sweeps", "objective", "among_rougeL", "ms_per_instance"}};

  for (int extra : {0, 1, 2, 4}) {
    auto selector = MakeSelector("CompaReSetS+").ValueOrDie();
    SelectorOptions options;
    options.m = 3;
    options.extra_sync_rounds = extra;
    options.seed = args.seed;
    SelectorRun run = RunSelector(*selector, workload, options).ValueOrDie();
    double mean_objective = 0.0;
    for (const SelectionResult& result : run.results) {
      mean_objective += result.objective;
    }
    mean_objective /= static_cast<double>(run.results.size());
    double ms = 1000.0 * run.total_seconds / run.results.size();
    std::printf("%-8d %16s %18s %16s\n", 1 + extra,
                FormatDouble(mean_objective, 4).c_str(),
                Pct(run.MeanAmong().rougeL.f1).c_str(),
                FormatDouble(ms, 2).c_str());
    csv.push_back({std::to_string(1 + extra),
                   FormatDouble(mean_objective, 6),
                   Pct(run.MeanAmong().rougeL.f1), FormatDouble(ms, 3)});
  }

  ExportCsv(args, "ablation_sync_rounds.csv", csv);
  return 0;
}
