// Sharded-serving benchmark: batch throughput of a ShardRouter at shard
// counts {1, 2, 4} against the same mixed workload, with a cross-count
// response-identity check (any divergence from the 1-shard baseline is
// a correctness bug, and the bench exits non-zero).
//
// Two passes are timed per shard count: cold (every request solves) and
// warm (the exact repeat is answered from each shard's result memo).
// On a single-core machine the scatter/gather adds no parallel speedup
// — the interesting numbers there are the routing overhead (1-shard
// router vs plain engine is the same code path) and the warm-path
// stability across shard counts.
//
//   service_shard_scaling [--products N] [--instances N] [--seed S]
//                         [--router_threads T] [--algorithm NAME]
//                         [--outdir DIR]

#include <fstream>
#include <thread>

#include "bench_common.h"
#include "service/router.h"
#include "util/jsonl.h"
#include "util/timer.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

struct ShardRunResult {
  size_t num_shards = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  size_t warm_memo_hits = 0;
  size_t replicated_products = 0;  ///< Sum of shard products − catalog size.
};

JsonValue ToJson(const ShardRunResult& r) {
  JsonValue::Object object;
  object["num_shards"] = static_cast<int64_t>(r.num_shards);
  object["cold_ms"] = r.cold_ms;
  object["warm_ms"] = r.warm_ms;
  object["warm_memo_hits"] = static_cast<int64_t>(r.warm_memo_hits);
  object["replicated_products"] = static_cast<int64_t>(r.replicated_products);
  return JsonValue(std::move(object));
}

/// Bitwise payload comparison against the baseline responses.
bool SameResponses(const std::vector<Result<SelectResponse>>& got,
                   const std::vector<Result<SelectResponse>>& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].ok() != want[i].ok()) return false;
    if (!got[i].ok()) continue;
    const SelectResponse& g = got[i].value();
    const SelectResponse& w = want[i].value();
    if (g.item_ids != w.item_ids || g.selections != w.selections ||
        g.objective != w.objective) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser flags;
  BenchArgs args = ParseBenchArgs(
      argc, argv,
      [](FlagParser* f) {
        f->AddInt("router_threads", 0,
                  "router fan-out lanes (0 = hardware concurrency)");
        f->AddString("algorithm", "CompaReSetS", "selector to serve");
      },
      &flags);
  if (args.help) return 0;

  PrintTitle("Serving layer: scatter/gather batch throughput by shard count");

  std::shared_ptr<const IndexedCorpus> corpus =
      BuildEngineCorpus(args, "Cellphone");
  SelectorOptions options;
  options.seed = args.seed;
  std::vector<SelectRequest> requests =
      InstanceRequests(*corpus, args, flags.GetString("algorithm"), options);
  size_t router_threads = static_cast<size_t>(flags.GetInt("router_threads"));
  size_t hardware = std::thread::hardware_concurrency();

  std::printf("\n%zu products, %zu instances, %zu queries/pass, selector %s, "
              "%zu hardware threads\n\n",
              corpus->corpus().num_products(), corpus->num_instances(),
              requests.size(), flags.GetString("algorithm").c_str(), hardware);

  std::vector<ShardRunResult> results;
  std::vector<Result<SelectResponse>> baseline;
  bool identical = true;
  for (size_t num_shards : {1u, 2u, 4u}) {
    RouterOptions router_options;
    router_options.engine.measure_alignment = false;
    router_options.engine.cache_capacity = corpus->num_instances();
    router_options.engine.result_capacity = requests.size();
    router_options.router_threads = router_threads;
    auto router = ShardRouter::Create(corpus, num_shards, router_options);
    router.status().CheckOK();

    ShardRunResult run;
    run.num_shards = num_shards;
    for (const ShardStatus& status : router.value()->ShardStatuses()) {
      run.replicated_products += status.num_products;
    }
    run.replicated_products -= corpus->corpus().num_products();

    Timer cold_timer;
    std::vector<Result<SelectResponse>> cold =
        router.value()->SelectBatch(requests);
    run.cold_ms = 1000.0 * cold_timer.ElapsedSeconds();

    Timer warm_timer;
    std::vector<Result<SelectResponse>> warm =
        router.value()->SelectBatch(requests);
    run.warm_ms = 1000.0 * warm_timer.ElapsedSeconds();
    for (const auto& response : warm) {
      response.status().CheckOK();
      if (response.value().result_cache_hit) ++run.warm_memo_hits;
    }

    if (num_shards == 1) {
      baseline = std::move(cold);
    } else if (!SameResponses(cold, baseline)) {
      std::fprintf(stderr,
                   "FATAL: %zu-shard responses diverge from the 1-shard "
                   "baseline\n",
                   num_shards);
      identical = false;
    }

    std::printf("  %zu shard%s: cold %8.2f ms  warm %8.2f ms  "
                "(%zu/%zu memo hits, %zu replicated products)\n",
                num_shards, num_shards == 1 ? " " : "s", run.cold_ms,
                run.warm_ms, run.warm_memo_hits, requests.size(),
                run.replicated_products);
    results.push_back(run);
  }

  const ShardRunResult& one = results.front();
  std::printf("\nRelative cold throughput (1 shard = 1.00x):");
  for (const ShardRunResult& r : results) {
    std::printf("  %zu:%.2fx", r.num_shards, one.cold_ms / r.cold_ms);
  }
  std::printf("\n%s\n",
              hardware <= 1
                  ? "Note: single hardware thread — shard fan-out cannot "
                    "speed up the gather here; expect ~1.00x with the "
                    "routing overhead visible as a small regression."
                  : "Shard fan-out overlaps on the router pool; scaling is "
                    "bounded by hardware threads and per-shard skew.");

  JsonValue::Array runs;
  for (const ShardRunResult& r : results) runs.push_back(ToJson(r));
  JsonValue::Object doc;
  doc["bench"] = "service_shard_scaling";
  doc["products"] = static_cast<int64_t>(args.products);
  doc["queries_per_pass"] = static_cast<int64_t>(requests.size());
  doc["selector"] = flags.GetString("algorithm");
  doc["hardware_concurrency"] = static_cast<int64_t>(hardware);
  StampMachine(&doc);
  doc["responses_identical_across_shard_counts"] = identical;
  doc["note"] = hardware <= 1
                    ? "measured on a single-core machine; shard counts "
                      "cannot overlap, so speedups are ~1x by construction"
                    : "speedups bounded by hardware threads and shard skew";
  doc["runs"] = JsonValue(std::move(runs));

  ::mkdir(args.outdir.c_str(), 0755);
  std::string path = args.outdir + "/service_shard_scaling.json";
  std::ofstream out(path);
  if (out) {
    out << JsonValue(std::move(doc)).Dump() << "\n";
    std::printf("[json written to %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }
  return identical ? 0 : 1;
}
