// Figure 11 — Information loss of CompaReSetS+ selections on Cellphone
// as the review budget m grows:
//   (a) squared distance Δ(τ_i, π(S_i)) (lower = less loss),
//   (b) cosine similarity cos(τ_i, π(S_i)) (higher = less loss),
// each for the target item alone and averaged over all items. The trend
// to reproduce: loss shrinks as m grows, and the all-items curve loses
// more than the target-only curve (comparative selections are skewed
// toward the target's aspects).

#include "bench_common.h"
#include "eval/information_loss.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Figure 11: Information loss of CompaReSetS+ on Cellphone vs m");

  Workload workload = BuildWorkload(args, "Cellphone");

  std::printf("%-6s %18s %18s %18s %18s\n", "m", "delta (target)",
              "delta (all items)", "cosine (target)", "cosine (all)");
  PrintRule(84);
  std::vector<CsvRow> csv = {{"m", "delta_target", "delta_all",
                              "cosine_target", "cosine_all"}};

  for (size_t m : {1u, 3u, 5u, 10u, 15u, 20u}) {
    auto selector = MakeSelector("CompaReSetS+").ValueOrDie();
    SelectorOptions options;
    options.m = m;
    options.seed = args.seed;

    double delta_target = 0.0;
    double delta_all = 0.0;
    double cosine_target = 0.0;
    double cosine_all = 0.0;
    for (size_t i = 0; i < workload.num_instances(); ++i) {
      auto result =
          selector->Select(workload.vectors()[i], options).ValueOrDie();
      InformationLoss loss =
          MeasureInformationLoss(workload.vectors()[i], result.selections);
      delta_target += loss.delta_target;
      delta_all += loss.delta_all_items;
      cosine_target += loss.cosine_target;
      cosine_all += loss.cosine_all_items;
    }
    double n = static_cast<double>(workload.num_instances());
    std::printf("%-6zu %18s %18s %18s %18s\n", m,
                FormatDouble(delta_target / n, 4).c_str(),
                FormatDouble(delta_all / n, 4).c_str(),
                FormatDouble(cosine_target / n, 4).c_str(),
                FormatDouble(cosine_all / n, 4).c_str());
    csv.push_back({std::to_string(m), FormatDouble(delta_target / n, 4),
                   FormatDouble(delta_all / n, 4),
                   FormatDouble(cosine_target / n, 4),
                   FormatDouble(cosine_all / n, 4)});
  }

  ExportCsv(args, "fig11_information_loss.csv", csv);
  return 0;
}
