// Figures 8-10 — case studies: for each category, one instance is
// narrowed to its top-3 most similar items (exact TargetHkS over
// CompaReSetS+ selections) and printed in the paper's "Compare to
// similar items" layout: the target product and two comparison
// products, three selected reviews each, with the shared aspects the
// synchronized selection surfaced.

#include <set>

#include "bench_common.h"
#include "graph/targethks_exact.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

/// Aspects covered by every item's selection — what makes the case
/// comparable (the paper's narrative device in Figs. 8-10).
std::vector<std::string> CommonAspects(const Corpus& corpus,
                                       const ProblemInstance& instance,
                                       const std::vector<Selection>& selections,
                                       const std::vector<size_t>& items) {
  std::vector<std::set<AspectId>> per_item;
  for (size_t v : items) {
    std::set<AspectId> aspects;
    for (size_t r : selections[v]) {
      for (AspectId aspect :
           instance.items[v]->reviews[r].MentionedAspects()) {
        aspects.insert(aspect);
      }
    }
    per_item.push_back(std::move(aspects));
  }
  std::vector<std::string> common;
  for (AspectId aspect : per_item[0]) {
    bool everywhere = true;
    for (size_t t = 1; t < per_item.size(); ++t) {
      if (!per_item[t].count(aspect)) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) common.push_back(corpus.catalog().Name(aspect));
  }
  return common;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Figures 8-10: case studies — top-3 core items with their "
      "CompaReSetS+ review selections (m = 3, k = 3)");

  for (const std::string& category : Categories()) {
    BenchArgs one = args;
    one.instances = 8;
    Workload workload = BuildWorkload(one, category);

    auto selector = MakeSelector("CompaReSetS+").ValueOrDie();
    SelectorOptions options;
    options.m = 3;
    options.seed = args.seed;

    // Pick the instance with the longest comparative list, like the
    // paper's examples ("selected from a list of N products").
    size_t pick = 0;
    for (size_t i = 1; i < workload.num_instances(); ++i) {
      if (workload.instances()[i].num_items() >
          workload.instances()[pick].num_items()) {
        pick = i;
      }
    }
    const ProblemInstance& instance = workload.instances()[pick];
    const InstanceVectors& vectors = workload.vectors()[pick];
    SelectionResult result =
        selector->Select(vectors, options).ValueOrDie();

    SimilarityGraph graph = BuildSimilarityGraph(
        vectors, result.selections, options.lambda, options.mu);
    size_t k = std::min<size_t>(3, graph.num_vertices());
    ExactSolverOptions exact_options;
    exact_options.time_limit_seconds = 5.0;
    CoreList core =
        SolveTargetHksExact(graph, k, exact_options).ValueOrDie();

    std::printf("\n===== %s: top-%zu of %zu also-bought products =====\n",
                category.c_str(), k, instance.num_items() - 1);
    std::vector<std::string> common = CommonAspects(
        workload.corpus(), instance, result.selections, core.vertices);
    std::printf("Aspects covered by every selection:");
    for (const std::string& aspect : common) {
      std::printf(" %s", aspect.c_str());
    }
    std::printf("\n");

    for (size_t v : core.vertices) {
      const Product& product = *instance.items[v];
      std::printf("\n%s %s\n",
                  v == 0 ? "This item:" : "Compare:  ",
                  product.title.c_str());
      for (size_t r : result.selections[v]) {
        const Review& review = product.reviews[r];
        std::printf("  (%.0f*) %s\n", review.rating, review.text.c_str());
      }
    }
  }
  std::printf("\n");
  return 0;
}
