// Serving-layer benchmark: open-loop service workload replay. Unlike
// service_overload's single closed burst, this bench drives a
// SelectionEngine the way production traffic arrives — on a CLOCK, not
// on completion:
//
//   * Arrivals follow a Poisson-burst process: exponential inter-burst
//     gaps at the offered rate, each burst carrying a geometric number
//     of back-to-back arrivals (bursty, like real query logs).
//   * Target popularity is Zipfian (s = 1.0) over the instance targets,
//     so a handful of hot products dominate — the cache-friendly,
//     contention-heavy shape real catalogs have.
//   * Traffic is mixed: ~70% lone interactive Selects, ~30% background
//     batches of 4–8 requests submitted at kBatch priority.
//
// The schedule (arrival times, targets, kinds) is precomputed from the
// seed, so every offered-load step replays the identical trace. Because
// the loop never waits for responses, queueing delay shows up in the
// measured latency exactly as a caller would feel it: the sweep locates
// the saturation knee where p99 departs from the service time.
//
//   service_workload [--products N] [--instances N] [--seed S]
//                    [--threads T] [--max_in_flight M] [--duration_s D]
//                    [--rates R1,R2,..] [--slo_ms MS] [--outdir DIR]
//
// Per offered load, per class: p50/p95/p99 latency, degraded and shed
// counts. JSON to <outdir>/service_workload.json (StampMachine'd — on
// a 1-core container the knee sits at a far lower rate than on real
// serving hardware; see EXPERIMENTS.md).

#include <algorithm>
#include <cmath>
#include <fstream>
#include <mutex>
#include <thread>

#include "bench_common.h"
#include "service/slo_controller.h"
#include "util/jsonl.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace comparesets;
using namespace comparesets::bench;

namespace {

struct Arrival {
  double at_seconds = 0.0;
  bool batch = false;
  /// Instance indices: one for a lone Select, 4–8 for a batch.
  std::vector<size_t> targets;
};

/// Zipfian sampler over [0, n): P(i) ∝ 1/(i+1)^s, via inverse CDF.
class Zipf {
 public:
  Zipf(size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  size_t Sample(Rng* rng) const {
    double u = rng->UniformDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Precomputes one open-loop trace: Poisson bursts at `rate` arrivals
/// per second for `duration` seconds, Zipfian targets, 30% batch kind.
std::vector<Arrival> BuildSchedule(double rate, double duration,
                                   size_t num_instances, uint64_t seed) {
  Rng rng(seed, /*stream=*/99);
  Zipf zipf(num_instances, 1.0);
  std::vector<Arrival> schedule;
  double now = 0.0;
  while (true) {
    // Exponential inter-burst gap sized so the long-run arrival rate
    // (bursts × mean burst size) matches the offered rate.
    const double mean_burst = 2.0;
    double gap = -std::log(1.0 - rng.UniformDouble()) * mean_burst / rate;
    now += gap;
    if (now >= duration) break;
    // Geometric burst size, mean 2 (p = 1/2): 1 + failures before success.
    size_t burst = 1;
    while (rng.Bernoulli(0.5) && burst < 8) ++burst;
    for (size_t b = 0; b < burst; ++b) {
      Arrival arrival;
      arrival.at_seconds = now;
      arrival.batch = rng.Bernoulli(0.3);
      size_t width = arrival.batch ? static_cast<size_t>(rng.UniformInt(4, 8))
                                   : 1;
      for (size_t i = 0; i < width; ++i) {
        arrival.targets.push_back(zipf.Sample(&rng));
      }
      schedule.push_back(std::move(arrival));
    }
  }
  return schedule;
}

struct ClassStats {
  std::vector<double> latencies_s;
  size_t sent = 0;
  size_t ok = 0;
  size_t degraded = 0;
  size_t shed = 0;  ///< kResourceExhausted refusals.
};

struct LoadResult {
  double offered_rate = 0.0;
  double achieved_rate = 0.0;
  double wall_s = 0.0;
  uint64_t slo_sheds = 0;
  ClassStats interactive;
  ClassStats batch;
};

double PercentileMs(std::vector<double> seconds, double p) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(seconds.size()));
  rank = std::min(rank, seconds.size() - 1);
  return 1000.0 * seconds[rank];
}

LoadResult ReplayLoad(const std::vector<Arrival>& schedule, double rate,
                      const std::shared_ptr<const IndexedCorpus>& corpus,
                      size_t threads, size_t max_in_flight, double slo_ms) {
  EngineOptions options;
  options.threads = threads;
  options.min_quality_tier = QualityTier::kExact;
  options.cache_capacity = corpus->num_instances();
  options.result_capacity = 0;  // Every arrival must really solve.
  options.measure_alignment = false;
  options.max_in_flight = max_in_flight;
  options.max_queue = 64;
  options.max_batch_queue = 16;  // Batch waits less, sheds first.
  options.trace_capacity = 0;
  SelectionEngine engine(corpus, options);

  std::unique_ptr<SloController> slo;
  if (slo_ms > 0.0) {
    SloControllerOptions slo_options;
    slo_options.slo_seconds = slo_ms / 1000.0;
    slo_options.interval_ms = 20;
    slo = std::make_unique<SloController>(slo_options, engine.pipeline(),
                                          std::vector<SelectionEngine*>{
                                              &engine});
    slo->Start();
  }

  LoadResult result;
  result.offered_rate = rate;
  std::mutex stats_mutex;
  std::vector<std::thread> in_flight;
  in_flight.reserve(schedule.size());

  const auto& instances = corpus->instances();
  Timer wall;
  for (const Arrival& arrival : schedule) {
    // Open loop: wait for the scheduled arrival time, never for any
    // earlier response.
    double lead = arrival.at_seconds - wall.ElapsedSeconds();
    if (lead > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(lead));
    }
    in_flight.emplace_back([&, arrival] {
      std::vector<SelectRequest> requests;
      requests.reserve(arrival.targets.size());
      for (size_t target : arrival.targets) {
        SelectRequest request;
        request.target_id = instances[target].target().id;
        request.selector = "CompaReSetS";
        request.priority = arrival.batch ? RequestPriority::kBatch
                                         : RequestPriority::kInteractive;
        requests.push_back(std::move(request));
      }
      Timer latency;
      std::vector<Result<SelectResponse>> responses;
      if (arrival.batch) {
        responses = engine.SelectBatch(requests);
      } else {
        responses.push_back(engine.Select(requests[0]));
      }
      double elapsed = latency.ElapsedSeconds();
      std::lock_guard<std::mutex> lock(stats_mutex);
      ClassStats& stats = arrival.batch ? result.batch : result.interactive;
      // One caller-visible latency per arrival (a batch caller waits
      // for its whole batch).
      stats.latencies_s.push_back(elapsed);
      for (const auto& response : responses) {
        ++stats.sent;
        if (response.ok()) {
          ++stats.ok;
          if (response.value().tier != QualityTier::kExact) ++stats.degraded;
        } else if (response.status().code() ==
                   StatusCode::kResourceExhausted) {
          ++stats.shed;
        }
      }
    });
  }
  for (std::thread& t : in_flight) t.join();
  result.wall_s = wall.ElapsedSeconds();
  if (slo != nullptr) {
    slo->Stop();
    result.slo_sheds = slo->sheds();
  }
  size_t total_sent = result.interactive.sent + result.batch.sent;
  result.achieved_rate =
      result.wall_s > 0.0 ? static_cast<double>(total_sent) / result.wall_s
                          : 0.0;
  return result;
}

void PrintClass(const char* name, const ClassStats& stats) {
  std::printf(
      "    %-11s sent %4zu  ok %4zu  degraded %3zu  shed %3zu  "
      "p50 %8.2f ms  p95 %8.2f ms  p99 %8.2f ms\n",
      name, stats.sent, stats.ok, stats.degraded, stats.shed,
      PercentileMs(stats.latencies_s, 0.50),
      PercentileMs(stats.latencies_s, 0.95),
      PercentileMs(stats.latencies_s, 0.99));
}

JsonValue ToJson(const LoadResult& r);

JsonValue ClassJson(const ClassStats& stats) {
  JsonValue::Object object;
  object["sent"] = static_cast<int64_t>(stats.sent);
  object["ok"] = static_cast<int64_t>(stats.ok);
  object["degraded"] = static_cast<int64_t>(stats.degraded);
  object["shed"] = static_cast<int64_t>(stats.shed);
  object["p50_ms"] = PercentileMs(stats.latencies_s, 0.50);
  object["p95_ms"] = PercentileMs(stats.latencies_s, 0.95);
  object["p99_ms"] = PercentileMs(stats.latencies_s, 0.99);
  return JsonValue(std::move(object));
}

JsonValue ToJson(const LoadResult& r) {
  JsonValue::Object object;
  object["offered_rate"] = r.offered_rate;
  object["achieved_rate"] = r.achieved_rate;
  object["wall_s"] = r.wall_s;
  object["slo_sheds"] = static_cast<int64_t>(r.slo_sheds);
  object["interactive"] = ClassJson(r.interactive);
  object["batch"] = ClassJson(r.batch);
  return JsonValue(std::move(object));
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  FlagParser flags;
  BenchArgs args = ParseBenchArgs(
      argc, argv,
      [](FlagParser* f) {
        f->AddInt("threads", 4, "engine worker threads");
        f->AddInt("max_in_flight", 2, "admission limit on solves");
        f->AddDouble("duration_s", 2.0, "replay length per offered load");
        f->AddString("rates", "5,10,20,40",
                     "offered loads to sweep (arrivals/second, comma-"
                     "separated)");
        f->AddDouble("slo_ms", 0.0,
                     "run the SLO shedding loop at this p99 target "
                     "(0 = off)");
      },
      &flags);
  if (args.help) return 0;

  PrintTitle("Serving layer: open-loop workload replay (latency vs load)");

  std::shared_ptr<const IndexedCorpus> corpus =
      BuildEngineCorpus(args, "Cellphone");
  size_t threads = static_cast<size_t>(flags.GetInt("threads"));
  size_t max_in_flight = static_cast<size_t>(flags.GetInt("max_in_flight"));
  double duration = flags.GetDouble("duration_s");
  double slo_ms = flags.GetDouble("slo_ms");
  size_t num_instances = std::min(corpus->num_instances(), args.instances);

  std::printf(
      "\n%zu products, %zu targets (Zipf s=1.0), %zu workers, "
      "in_flight=%zu, %.1fs per load, slo=%.0fms\n\n",
      corpus->corpus().num_products(), num_instances, threads, max_in_flight,
      duration, slo_ms);

  std::vector<LoadResult> results;
  for (const std::string& rate_text : Split(flags.GetString("rates"), ',')) {
    double rate = std::atof(rate_text.c_str());
    if (rate <= 0.0) continue;
    std::vector<Arrival> schedule =
        BuildSchedule(rate, duration, num_instances, args.seed);
    LoadResult result = ReplayLoad(schedule, rate, corpus, threads,
                                   max_in_flight, slo_ms);
    std::printf("  offered %6.1f/s  achieved %6.1f/s  wall %5.2f s  "
                "slo_sheds %llu\n",
                result.offered_rate, result.achieved_rate, result.wall_s,
                static_cast<unsigned long long>(result.slo_sheds));
    PrintClass("interactive", result.interactive);
    PrintClass("batch", result.batch);
    results.push_back(std::move(result));
  }

  JsonValue::Array loads;
  for (const LoadResult& r : results) loads.push_back(ToJson(r));
  JsonValue::Object doc;
  doc["bench"] = "service_workload";
  doc["products"] = static_cast<int64_t>(args.products);
  doc["targets"] = static_cast<int64_t>(num_instances);
  doc["threads"] = static_cast<int64_t>(threads);
  doc["max_in_flight"] = static_cast<int64_t>(max_in_flight);
  doc["duration_s"] = duration;
  doc["slo_ms"] = slo_ms;
  StampMachine(&doc);
  doc["loads"] = JsonValue(std::move(loads));

  ::mkdir(args.outdir.c_str(), 0755);
  std::string path = args.outdir + "/service_workload.json";
  std::ofstream out(path);
  if (out) {
    out << JsonValue(std::move(doc)).Dump() << "\n";
    std::printf("\n[json written to %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }
  return 0;
}
