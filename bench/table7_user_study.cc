// Table 7 — User study (simulated; see DESIGN.md §2). Nine examples
// (3 per category), each a target + the top-2 most similar items chosen
// by the exact TargetHkS on CompaReSetS+ selections. For each algorithm
// (Random / Crs / CompaReSetS+), 15 simulated annotators (5 per example)
// answer the paper's three Likert questions; Krippendorff's α (ordinal)
// measures agreement.

#include <map>

#include "bench_common.h"
#include "graph/targethks_exact.h"
#include "stats/user_study.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle(
      "Table 7: User study (simulated annotators; 9 examples, 5 raters "
      "each; Likert 1-5; Krippendorff's alpha, ordinal)");

  const std::vector<std::string> kAlgorithms = {"Random", "Crs",
                                                "CompaReSetS+"};
  std::map<std::string, std::vector<ExampleProxies>> proxies;

  for (const std::string& category : Categories()) {
    BenchArgs small = args;
    small.instances = 3;  // 3 examples per category, as in the paper.
    Workload workload = BuildWorkload(small, category);

    // Core list from CompaReSetS+ selections (the paper presents, for
    // parity, the same 3 products for every algorithm's review sets).
    auto plus = MakeSelector("CompaReSetS+").ValueOrDie();
    SelectorOptions options;
    options.m = 3;
    options.seed = args.seed;
    SelectorRun plus_run =
        RunSelector(*plus, workload, options).ValueOrDie();

    std::vector<std::vector<size_t>> core_lists;
    for (size_t i = 0; i < workload.num_instances(); ++i) {
      SimilarityGraph graph = BuildSimilarityGraph(
          workload.vectors()[i], plus_run.results[i].selections,
          options.lambda, options.mu);
      size_t k = std::min<size_t>(3, graph.num_vertices());
      ExactSolverOptions exact_options;
      exact_options.time_limit_seconds = 5.0;
      core_lists.push_back(
          SolveTargetHksExact(graph, k, exact_options).ValueOrDie().vertices);
    }

    for (const std::string& name : kAlgorithms) {
      SelectorRun run = name == "CompaReSetS+"
                            ? plus_run
                            : RunSelector(*MakeSelector(name).ValueOrDie(),
                                          workload, options)
                                  .ValueOrDie();
      for (size_t i = 0; i < workload.num_instances(); ++i) {
        proxies[name].push_back(ComputeExampleProxies(
            workload.vectors()[i], run.results[i].selections,
            core_lists[i]));
      }
    }
  }

  std::printf("%-16s %8s %8s %8s %22s\n", "Algorithm", "Q1", "Q2", "Q3",
              "Krippendorff's alpha");
  PrintRule(70);
  std::vector<CsvRow> csv = {{"algorithm", "q1", "q2", "q3", "alpha"}};
  UserStudyConfig study_config;
  study_config.seed = args.seed + 2025;
  for (const std::string& name : kAlgorithms) {
    UserStudyResult result =
        SimulateUserStudy(proxies[name], study_config).ValueOrDie();
    std::printf("%-16s %8s %8s %8s %22s\n", name.c_str(),
                FormatDouble(result.q1_mean, 2).c_str(),
                FormatDouble(result.q2_mean, 2).c_str(),
                FormatDouble(result.q3_mean, 2).c_str(),
                FormatDouble(result.alpha, 3).c_str());
    csv.push_back({name, FormatDouble(result.q1_mean, 2),
                   FormatDouble(result.q2_mean, 2),
                   FormatDouble(result.q3_mean, 2),
                   FormatDouble(result.alpha, 3)});
  }

  ExportCsv(args, "table7_user_study.csv", csv);
  return 0;
}
