// Figure 5 — Hyperparameter sweeps (ROUGE-L x100, target vs
// comparative, m = 3):
//   (a) CompaReSetS with λ ∈ {0.01, 0.1, 1, 10, 100};
//   (b) CompaReSetS+ with λ = 1 and μ ∈ {0.01, 0.1, 1, 10, 100}.
// The paper finds λ = 1 and μ = 0.1 best, consistently across datasets.

#include "bench_common.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  const double kSweep[] = {0.01, 0.1, 1.0, 10.0, 100.0};

  PrintTitle("Figure 5: ROUGE-L (x100) under varying lambda / mu (m=3)");
  std::vector<CsvRow> csv = {
      {"dataset", "series", "parameter", "rougeL_target", "rougeL_among"}};

  for (const std::string& category : Categories()) {
    Workload workload = BuildWorkload(args, category);
    std::printf("\nDataset: %s\n", category.c_str());

    std::printf("  (a) CompaReSetS, varying lambda\n");
    std::printf("      %-10s %14s %14s\n", "lambda", "R-L (target)",
                "R-L (among)");
    for (double lambda : kSweep) {
      auto selector = MakeSelector("CompaReSetS").ValueOrDie();
      SelectorOptions options;
      options.m = 3;
      options.lambda = lambda;
      options.seed = args.seed;
      SelectorRun run =
          RunSelector(*selector, workload, options).ValueOrDie();
      std::string target = Pct(run.MeanTarget().rougeL.f1);
      std::string among = Pct(run.MeanAmong().rougeL.f1);
      std::printf("      %-10s %14s %14s\n",
                  FormatDouble(lambda, 2).c_str(), target.c_str(),
                  among.c_str());
      csv.push_back({category, "lambda", FormatDouble(lambda, 2), target,
                     among});
    }

    std::printf("  (b) CompaReSetS+, lambda=1, varying mu\n");
    std::printf("      %-10s %14s %14s\n", "mu", "R-L (target)",
                "R-L (among)");
    for (double mu : kSweep) {
      auto selector = MakeSelector("CompaReSetS+").ValueOrDie();
      SelectorOptions options;
      options.m = 3;
      options.lambda = 1.0;
      options.mu = mu;
      options.seed = args.seed;
      SelectorRun run =
          RunSelector(*selector, workload, options).ValueOrDie();
      std::string target = Pct(run.MeanTarget().rougeL.f1);
      std::string among = Pct(run.MeanAmong().rougeL.f1);
      std::printf("      %-10s %14s %14s\n", FormatDouble(mu, 2).c_str(),
                  target.c_str(), among.c_str());
      csv.push_back({category, "mu", FormatDouble(mu, 2), target, among});
    }
  }

  ExportCsv(args, "fig5_lambda_mu_sweep.csv", csv);
  return 0;
}
