// Table 2 — Data statistics. Prints the per-category statistics of the
// synthetic corpora (which stand in for the Amazon datasets; see
// DESIGN.md §2) in the paper's row layout.

#include "bench_common.h"
#include "data/statistics.h"
#include "data/synthetic.h"

using namespace comparesets;
using namespace comparesets::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (args.help) return 0;

  PrintTitle("Table 2: Data statistics (synthetic stand-ins, " +
             std::to_string(args.products) + " products per category)");

  std::vector<DatasetStatistics> stats;
  for (const std::string& category : Categories()) {
    SyntheticConfig config =
        DefaultConfig(category, args.products).ValueOrDie();
    config.seed = args.seed + stats.size();
    Corpus corpus = GenerateCorpus(config).ValueOrDie();
    stats.push_back(ComputeStatistics(corpus));
  }

  std::printf("%-28s", "");
  for (const DatasetStatistics& s : stats) {
    std::printf("%14s", s.name.c_str());
  }
  std::printf("\n");
  PrintRule(70);

  auto row_int = [&](const char* label, auto getter) {
    std::printf("%-28s", label);
    for (const DatasetStatistics& s : stats) {
      std::printf("%14s",
                  FormatWithCommas(static_cast<int64_t>(getter(s))).c_str());
    }
    std::printf("\n");
  };
  auto row_double = [&](const char* label, auto getter) {
    std::printf("%-28s", label);
    for (const DatasetStatistics& s : stats) {
      std::printf("%14s", FormatDouble(getter(s), 2).c_str());
    }
    std::printf("\n");
  };

  row_int("#Product", [](const auto& s) { return s.num_products; });
  row_int("#Reviewer", [](const auto& s) { return s.num_reviewers; });
  row_int("#Review", [](const auto& s) { return s.num_reviews; });
  row_int("#Target Product",
          [](const auto& s) { return s.num_target_products; });
  row_double("Avg. #Comparison Product",
             [](const auto& s) { return s.avg_comparison_products; });
  row_double("Avg. #Review per Product",
             [](const auto& s) { return s.avg_reviews_per_product; });

  std::vector<CsvRow> csv = {{"dataset", "products", "reviewers", "reviews",
                              "target_products", "avg_comparison_products",
                              "avg_reviews_per_product"}};
  for (const DatasetStatistics& s : stats) {
    csv.push_back({s.name, std::to_string(s.num_products),
                   std::to_string(s.num_reviewers),
                   std::to_string(s.num_reviews),
                   std::to_string(s.num_target_products),
                   FormatDouble(s.avg_comparison_products, 2),
                   FormatDouble(s.avg_reviews_per_product, 2)});
  }
  ExportCsv(args, "table2_datasets.csv", csv);
  return 0;
}
